"""Shim so `python setup.py develop` works on minimal offline environments
(the sandbox lacks the `wheel` package that PEP 660 editable installs need).
Regular `pip install -e .` uses pyproject.toml when wheel is available."""
from setuptools import setup

setup()

"""Scheduling a hand-built pipeline on a physical platform description.

The other examples start from abstract cost matrices.  This one uses the
physical layer (Definitions 1-2): tasks are declared in *instructions*,
edges in *bytes*, and a :class:`Platform` of CPUs with clock frequencies
and link bandwidth lowers them to the time-domain :class:`TaskGraph`
that the schedulers consume -- the workflow of a small video-analytics
job on a three-node edge cluster.

Run:  python examples/custom_platform.py
"""

from repro import HDLTS, Platform, Workflow, compile_workflow, render_gantt
from repro.baselines import HEFT
from repro.metrics import evaluate
from repro.schedule import validate_schedule


def build_pipeline() -> Workflow:
    """decode -> [detect x4] -> track -> annotate -> encode."""
    wf = Workflow()
    decode = wf.add_task(8e9, name="decode")
    detects = [wf.add_task(20e9, name=f"detect{i}") for i in range(4)]
    track = wf.add_task(6e9, name="track")
    annotate = wf.add_task(3e9, name="annotate")
    encode = wf.add_task(10e9, name="encode")

    frame_bytes = 50e6
    for detect in detects:
        wf.add_edge(decode, detect, frame_bytes)
        wf.add_edge(detect, track, 5e6)  # detections are small
    wf.add_edge(track, annotate, 2e6)
    wf.add_edge(decode, annotate, frame_bytes)  # original frames
    wf.add_edge(annotate, encode, frame_bytes)
    return wf


def main() -> None:
    # a beefy workstation, a desktop, and an embedded box; 1 Gb/s links
    platform = Platform(
        frequencies=[3.5e9, 2.4e9, 1.2e9],
        bandwidth=125e6,  # bytes per second
    )
    workflow = build_pipeline()
    graph = compile_workflow(workflow, platform)
    print(f"pipeline: {graph.n_tasks} tasks on {platform.n_procs} CPUs")
    print("per-CPU execution times (s):")
    for task in graph.tasks():
        row = "  ".join(f"{graph.cost(task, p):6.2f}" for p in graph.procs())
        print(f"  {graph.name(task):10s} {row}")
    print()

    for scheduler in (HDLTS(), HEFT()):
        result = scheduler.run(graph)
        validate_schedule(graph, result.schedule)
        report = evaluate(graph, result.schedule)
        print(f"{scheduler.name}: makespan={report.makespan:.2f}s "
              f"SLR={report.slr:.3f} speedup={report.speedup:.3f}")
        print(render_gantt(result.schedule))
        print()


if __name__ == "__main__":
    main()

"""Quickstart: schedule the paper's Fig. 1 workflow with HDLTS.

Builds the 10-task / 3-CPU example graph, runs HDLTS with trace
recording, reproduces the paper's Table I, and compares every baseline's
makespan with the published numbers.

Run:  python examples/quickstart.py
"""

from repro import HDLTS, format_trace, paper_example_graph, render_gantt
from repro.baselines import CPOP, HEFT, PEFT, PETS, SDBATS
from repro.metrics import evaluate
from repro.schedule import validate_schedule


def main() -> None:
    graph = paper_example_graph()
    print(f"workflow: {graph.n_tasks} tasks, {graph.n_edges} edges, "
          f"{graph.n_procs} CPUs\n")

    # --- HDLTS with a full step trace (the paper's Table I) -----------
    result = HDLTS(record_trace=True).run(graph)
    validate_schedule(graph, result.schedule)
    print("HDLTS step trace (Table I):")
    print(format_trace(result.trace))
    print()
    print("HDLTS Gantt chart (T1' marks the duplicated entry task):")
    print(render_gantt(result.schedule))
    print()

    # --- metrics -------------------------------------------------------
    report = evaluate(graph, result.schedule)
    print(f"HDLTS makespan={report.makespan:g}  SLR={report.slr:.3f}  "
          f"speedup={report.speedup:.3f}  efficiency={report.efficiency:.3f}")
    print()

    # --- the whole comparison set on the same instance ------------------
    print(f"{'algorithm':10s} {'makespan':>8s}")
    for scheduler in (HDLTS(), HEFT(), CPOP(), PETS(), PEFT(), SDBATS()):
        run = scheduler.run(graph)
        validate_schedule(graph, run.schedule)
        print(f"{scheduler.name:10s} {run.makespan:8.1f}")
    print("\n(paper: HDLTS 73, HEFT 80, PETS 77, PEFT 86, SDBATS 74)")


if __name__ == "__main__":
    main()

"""Capacity planning: how many CPUs does a workload actually need?

The paper's efficiency metric (Eq. 12) exists to answer a procurement
question: adding CPUs speeds a workflow up only until dependencies
serialize it.  This example sweeps platform sizes for a Montage and an
FFT workload, finds the knee of the makespan curve (the smallest
platform within 10% of the best achievable makespan), and shows the
contention check a practitioner should run before trusting the answer.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import HDLTS
from repro.metrics import evaluate
from repro.schedule import ContentionSimulator, ScheduleSimulator
from repro.workflows.fft import fft_topology
from repro.workflows.montage import montage_topology
from repro.workflows.topology import realize_topology

_SIZES = (1, 2, 3, 4, 6, 8, 12, 16)


def sweep(topology, label: str) -> None:
    print(f"{label}:")
    print(f"{'CPUs':>5s} {'makespan':>10s} {'speedup':>8s} "
          f"{'efficiency':>10s} {'contended':>10s}")
    results = []
    for n_procs in _SIZES:
        makespans = []
        contended = []
        for rep in range(10):
            graph = realize_topology(
                topology, n_procs,
                rng=np.random.default_rng([rep, n_procs]), ccr=1.0,
            ).normalized()
            result = HDLTS().run(graph)
            report = evaluate(graph, result.schedule)
            makespans.append(report.makespan)
            contended.append(
                ContentionSimulator(graph).run(result.schedule).makespan
            )
        mean = float(np.mean(makespans))
        results.append((n_procs, mean))
        # recompute speedup/efficiency from the last rep for display
        print(f"{n_procs:5d} {mean:10.1f} {report.speedup:8.2f} "
              f"{report.efficiency:10.2f} {float(np.mean(contended)):10.1f}")
    best = min(m for _, m in results)
    knee = next(p for p, m in results if m <= 1.10 * best)
    print(f"  -> smallest platform within 10% of best: {knee} CPUs\n")


def main() -> None:
    print("Platform sizing with HDLTS (means of 10 cost drawings, CCR=1);")
    print("'contended' replays the schedule with single-NIC serialization --")
    print("if it diverges badly, the contention-free numbers are optimistic.\n")
    sweep(montage_topology(50), "Montage(50)")
    sweep(fft_topology(16), "FFT(16)")


if __name__ == "__main__":
    main()

"""Montage sky-mosaic workflow on a 5-CPU heterogeneous cluster.

Mirrors the paper's Section V-C.2: the fixed Pegasus Montage structure
(mProjectPP -> mDiffFit -> mConcatFit -> mBgModel -> mBackground ->
mImgtbl -> mAdd -> mShrink -> mJPEG) at 50 nodes, scheduled on 5 CPUs
across the CCR range, plus a per-stage look at where the makespan goes.

Run:  python examples/montage_mosaic.py
"""

from collections import defaultdict

import numpy as np

from repro import HDLTS
from repro.baselines import paper_schedulers
from repro.metrics import evaluate
from repro.schedule import validate_schedule
from repro.workflows import montage_workflow
from repro.workflows.montage import montage_shape


def main() -> None:
    a, d = montage_shape(50)
    print(f"Montage(50): {a} mProjectPP, {d} mDiffFit, fixed 6-task tail\n")

    # --- schedule one instance and break the time down by job type ------
    graph = montage_workflow(50, n_procs=5,
                             rng=np.random.default_rng(42), ccr=3.0)
    normalized = graph.normalized()
    result = HDLTS().run(normalized)
    validate_schedule(normalized, result.schedule)
    report = evaluate(normalized, result.schedule)
    print(f"HDLTS @ CCR=3: makespan={report.makespan:.1f} "
          f"SLR={report.slr:.3f} efficiency={report.efficiency:.3f}")

    by_stage = defaultdict(float)
    for assignment in result.schedule.assignments():
        stage = normalized.name(assignment.task).split(".")[0]
        by_stage[stage] += assignment.duration
    print("\ncompute time by Montage stage:")
    for stage, total in sorted(by_stage.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:12s} {total:8.1f}")
    print()

    # --- CCR sweep on both published sizes ------------------------------
    schedulers = paper_schedulers()
    for size in (50, 100):
        print(f"mean SLR vs CCR, Montage({size}), 5 CPUs (20 drawings):")
        print("CCR   " + "".join(f"{s.name:>9s}" for s in schedulers))
        for ccr in (1.0, 3.0, 5.0):
            sums = {s.name: 0.0 for s in schedulers}
            reps = 20
            for rep in range(reps):
                g = montage_workflow(
                    size, n_procs=5,
                    rng=np.random.default_rng([size, rep, int(ccr)]),
                    ccr=ccr,
                ).normalized()
                for s in schedulers:
                    sums[s.name] += evaluate(g, s.run(g).schedule).slr
            row = "".join(f"{sums[s.name] / reps:9.3f}" for s in schedulers)
            print(f"{ccr:3.1f}  {row}")
        print()


if __name__ == "__main__":
    main()

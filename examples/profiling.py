"""Profiling walkthrough: event bus, metrics registry, phase timers.

Shows the three faces of `repro.obs` on real workloads:

1. subscribe to the event bus and watch every HDLTS mapping decision;
2. run an instrumented session and read the per-scheduler counters
   (EFT evaluations, duplication accept/reject) and phase timings;
3. stream a run to a JSONL file -- the machinery behind
   ``repro schedule --events`` and ``repro profile``.

Run:  python examples/profiling.py
"""

import json
import os
import tempfile

from repro import HDLTS, obs, paper_example_graph
from repro.baselines import HEFT
from repro.generator import GeneratorConfig, generate_random_graph
from repro.obs import format_metrics

import numpy as np


def watch_decisions() -> None:
    """1. Every mapping decision of Table I, live off the event bus."""
    graph = paper_example_graph()

    def on_decision(event: obs.Event) -> None:
        p = event.payload
        print(f"  step {p['step']:2d}: T{p['selected'] + 1} -> "
              f"P{p['chosen_proc'] + 1}  [{p['start']:g}, {p['finish']:g}]")

    unsubscribe = obs.subscribe(on_decision, topics=("scheduler.decision",))
    try:
        result = HDLTS().run(graph)
    finally:
        unsubscribe()
    print(f"  makespan {result.makespan:g}\n")


def profile_schedulers() -> None:
    """2. Counters and phase timers for HDLTS vs HEFT on a random DAG."""
    graph = generate_random_graph(
        GeneratorConfig(v=200, ccr=1.0, n_procs=8), np.random.default_rng(0)
    ).normalized()

    for scheduler in (HDLTS(), HEFT()):
        with obs.session(metrics=True) as sess:
            scheduler.run(graph)
        counters = sess.snapshot["counters"]
        timers = sess.snapshot["timers"]
        name = scheduler.name
        wall_ms = timers[name]["total"] * 1e3
        print(f"  {name:6s} wall={wall_ms:7.2f}ms  "
              f"decisions={counters[f'{name}/decisions']:4d}  "
              f"EFT evals={counters[f'{name}/eft_evaluations']:6d}")
        for key, timer in sorted(timers.items()):
            if key.startswith(f"{name}/"):
                share = timer["total"] / timers[name]["total"]
                print(f"      {key.split('/', 1)[1]:18s} "
                      f"{timer['total'] * 1e3:7.2f}ms  {share:5.1%}")
    print()


def stream_to_jsonl() -> None:
    """3. One JSON line per event, ready for jq / pandas."""
    graph = paper_example_graph()
    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        with obs.session(events_path=path, metrics=True) as sess:
            HDLTS().run(graph)
        events = [json.loads(line) for line in open(path)]
        kinds = sorted({e["event"] for e in events})
        print(f"  {sess.n_events} events written: {', '.join(kinds)}")
        print("\n  full metric dump:")
        for line in format_metrics(sess.snapshot).splitlines():
            print(f"  {line}")
    finally:
        os.unlink(path)


def main() -> None:
    print("1. live mapping decisions off the event bus:")
    watch_decisions()
    print("2. instrumented profile, HDLTS vs HEFT (200 tasks, 8 CPUs):")
    profile_schedulers()
    print("3. JSONL event stream + metric snapshot:")
    stream_to_jsonl()


if __name__ == "__main__":
    main()

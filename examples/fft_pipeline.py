"""FFT signal-processing pipeline on a heterogeneous edge cluster.

The paper's intro motivates HCEs built from diverse low-power devices
(PCs, tablets, phones).  This example schedules FFT workflows -- the
recursive + butterfly task graphs of Fig. 5 -- across such a platform
and shows where HDLTS's penalty-value prioritization pays off:
communication-heavy transforms (high CCR).

Run:  python examples/fft_pipeline.py
"""

import numpy as np

from repro import HDLTS
from repro.baselines import paper_schedulers
from repro.metrics import evaluate
from repro.schedule import render_gantt, validate_schedule
from repro.workflows import fft_workflow
from repro.workflows.fft import fft_task_count


def main() -> None:
    rng = np.random.default_rng(2017)

    # --- one instance in detail ----------------------------------------
    points = 8
    graph = fft_workflow(points, n_procs=3, rng=rng, ccr=2.0).normalized()
    print(f"FFT({points}): {fft_task_count(points)} tasks "
          f"(+1 pseudo exit), CCR=2, 3 CPUs")
    result = HDLTS().run(graph)
    validate_schedule(graph, result.schedule)
    report = evaluate(graph, result.schedule)
    print(f"HDLTS: makespan={report.makespan:.1f} SLR={report.slr:.3f} "
          f"efficiency={report.efficiency:.3f}")
    print(render_gantt(result.schedule))
    print()

    # --- CCR sensitivity: mean SLR over 20 drawings per point -----------
    print("mean SLR vs CCR for FFT(16) on 4 CPUs (20 random cost drawings):")
    schedulers = paper_schedulers()
    print("CCR   " + "".join(f"{s.name:>9s}" for s in schedulers))
    for ccr in (1.0, 2.0, 3.0, 4.0, 5.0):
        sums = {s.name: 0.0 for s in schedulers}
        reps = 20
        for rep in range(reps):
            g = fft_workflow(
                16, n_procs=4, rng=np.random.default_rng([rep, int(ccr)]),
                ccr=ccr,
            ).normalized()
            for s in schedulers:
                sums[s.name] += evaluate(g, s.run(g).schedule).slr
        row = "".join(f"{sums[s.name] / reps:9.3f}" for s in schedulers)
        print(f"{ccr:3.1f}  {row}")
    print("\nlower is better; HDLTS's margin grows with communication cost")


if __name__ == "__main__":
    main()

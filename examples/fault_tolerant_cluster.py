"""Online HDLTS on an unreliable cluster (the paper's future-work mode).

The paper argues HDLTS suits uncertain environments because every
mapping decision reads live platform state: "if any of the CPU in the
underlying HCE is malfunctioning, the HDLTS will still be able to
efficiently assign the tasks to the remaining available CPUs."

This example demonstrates exactly that with the dynamic extension:

1. execution times deviate from their estimates (gaussian noise), and
2. one CPU fail-stops mid-run -- the online scheduler loses the task
   that was running there, detects the failure, and finishes the
   workflow on the surviving CPUs.

Run:  python examples/fault_tolerant_cluster.py
"""

import numpy as np

from repro import HDLTS
from repro.dynamic import FailStop, OnlineHDLTS, gaussian_noise, replay_static
from repro.generator import GeneratorConfig, generate_random_graph
from repro.metrics.stats import RunningStats


def main() -> None:
    config = GeneratorConfig(v=120, n_procs=4, ccr=2.0)

    # --- 1. noise only: online decisions vs a frozen static schedule ----
    print("execution-time noise (sigma = relative std of realized/estimated):")
    print(f"{'sigma':>6s} {'static':>10s} {'online':>10s} {'advantage':>10s}")
    for sigma in (0.0, 0.2, 0.4, 0.6):
        static_stats, online_stats = RunningStats(), RunningStats()
        for rep in range(25):
            rng = np.random.default_rng([rep, int(sigma * 10)])
            graph = generate_random_graph(config, rng).normalized()
            noise = gaussian_noise(graph, sigma, rng)
            plan = HDLTS().run(graph).schedule
            static_stats.add(replay_static(graph, plan, noise).makespan)
            online_stats.add(OnlineHDLTS().execute(graph, noise).makespan)
        gain = static_stats.mean / online_stats.mean - 1.0
        print(f"{sigma:6.1f} {static_stats.mean:10.1f} "
              f"{online_stats.mean:10.1f} {gain:+9.1%}")
    print()

    # --- 2. a CPU dies mid-run ------------------------------------------
    rng = np.random.default_rng(99)
    graph = generate_random_graph(config, rng).normalized()
    noise = gaussian_noise(graph, 0.2, rng)
    healthy = OnlineHDLTS().execute(graph, noise)
    print(f"healthy cluster: makespan {healthy.makespan:.1f}")
    failure_time = healthy.makespan * 0.3
    crashed = OnlineHDLTS().execute(
        graph, noise, failures=[FailStop(proc=0, at_time=failure_time)]
    )
    print(f"CPU 0 fail-stops at t={failure_time:.0f}: "
          f"makespan {crashed.makespan:.1f}, "
          f"{crashed.n_lost} dispatch(es) lost, "
          f"dead CPUs {crashed.dead_procs}")
    slowdown = crashed.makespan / healthy.makespan - 1.0
    print(f"the workflow still completes, {slowdown:+.1%} slower "
          f"on the {graph.n_procs - 1} survivors")


if __name__ == "__main__":
    main()

"""Diagnose a schedule and export everything for external tooling.

Shows the post-scheduling workflow a practitioner would run: import a
Pegasus DAX workflow, lower it onto a platform, schedule it, ask *why*
the makespan is what it is (bottleneck chain, paid communication, load
imbalance), check the energy picture with DVFS slack reclamation, and
export the graph/schedule as JSON + Graphviz DOT.

Run:  python examples/analyze_and_export.py
"""

import json
import pathlib
import tempfile

from repro import HDLTS
from repro.analysis import diagnose
from repro.energy import EnergyModel, reclaim_slack
from repro.io import (
    graph_to_dot,
    parse_dax,
    save_graph,
    save_schedule,
)
from repro.model.platform import Platform, compile_workflow

_DAX = """<?xml version="1.0"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="demo">
  <job id="J1" name="stage_in"  runtime="4">
    <uses file="raw" link="output" size="800"/>
  </job>
  <job id="J2" name="calibrate" runtime="12">
    <uses file="raw" link="input"  size="800"/>
    <uses file="cal" link="output" size="300"/>
  </job>
  <job id="J3" name="detect"    runtime="20">
    <uses file="raw"  link="input"  size="800"/>
    <uses file="hits" link="output" size="50"/>
  </job>
  <job id="J4" name="report"    runtime="6">
    <uses file="cal"  link="input" size="300"/>
    <uses file="hits" link="input" size="50"/>
  </job>
  <child ref="J2"><parent ref="J1"/></child>
  <child ref="J3"><parent ref="J1"/></child>
  <child ref="J4"><parent ref="J2"/><parent ref="J3"/></child>
</adag>
"""


def main() -> None:
    # --- import + lower ------------------------------------------------
    workflow = parse_dax(_DAX)
    platform = Platform([2.0, 1.0, 1.0], bandwidth=100.0)
    graph = compile_workflow(workflow, platform)
    print(f"imported DAX: {graph.n_tasks} jobs, {graph.n_edges} data deps")

    # --- schedule + diagnose -------------------------------------------
    result = HDLTS().run(graph)
    report = diagnose(graph, result.schedule)
    print("\nschedule diagnostics:")
    print(report.format(graph))

    # --- energy with DVFS slack reclamation -----------------------------
    model = EnergyModel(graph.n_procs, busy_power=10.0, idle_power=1.0)
    baseline = model.energy(result.schedule)
    stretched, scales = reclaim_slack(graph, result.schedule)
    saved = model.energy_with_frequencies(stretched, scales)
    print(f"\nenergy: {baseline.total:.1f} -> {saved.total:.1f} "
          f"(saving {1 - saved.total / baseline.total:.1%}) at the same "
          f"makespan via slack reclamation on "
          f"{sum(1 for s in scales.values() if s > 1.001)} slowed task(s)")

    # --- export ----------------------------------------------------------
    out = pathlib.Path(tempfile.mkdtemp(prefix="repro_export_"))
    save_graph(graph, out / "workflow.json")
    save_schedule(result.schedule, out / "schedule.json")
    (out / "workflow.dot").write_text(graph_to_dot(graph, result.schedule))
    print(f"\nexported to {out}:")
    for path in sorted(out.iterdir()):
        print(f"  {path.name:15s} {path.stat().st_size:6d} bytes")
    records = json.loads((out / "schedule.json").read_text())["records"]
    print(f"\nschedule.json holds {len(records)} placement records; "
          f"render workflow.dot with: dot -Tsvg workflow.dot")


if __name__ == "__main__":
    main()

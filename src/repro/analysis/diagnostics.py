"""Post-hoc schedule diagnostics.

``bottleneck_chain`` reconstructs the *realized* critical chain: starting
from the task that finishes last, each step asks what pinned the task's
start time -- the arrival of a parent's data (``"data"``), the CPU being
busy with the previous slot (``"cpu"``), or nothing (``"start"``, the
chain's origin).  The chain is what an engineer would inspect to decide
whether to buy faster links (data-bound) or more/faster CPUs (cpu-bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.schedule.validation import FEASIBILITY_EPS as _EPS

__all__ = [
    "ScheduleDiagnostics",
    "diagnose",
    "communication_volume",
    "load_imbalance",
    "bottleneck_chain",
]


def communication_volume(graph: TaskGraph, schedule: Schedule) -> Tuple[float, float]:
    """(paid, total) communication cost over all edges.

    An edge is *paid* when the child's CPU holds no copy of the parent
    (so the data really crossed the network); ``total`` is the cost if
    every edge had crossed.  ``1 - paid/total`` is the locality the
    scheduler achieved.
    """
    paid = 0.0
    total = 0.0
    for edge in graph.edges():
        total += edge.cost
        child_proc = schedule.proc_of(edge.dst)
        local = any(c.proc == child_proc for c in schedule.copies(edge.src))
        if not local:
            paid += edge.cost
    return paid, total


def load_imbalance(schedule: Schedule) -> float:
    """Max busy time over mean busy time (1.0 = perfectly balanced)."""
    busy = [t.busy_time() for t in schedule.timelines]
    mean = sum(busy) / len(busy)
    if mean <= 0:
        return 1.0
    return max(busy) / mean


def bottleneck_chain(
    graph: TaskGraph, schedule: Schedule
) -> List[Tuple[int, str]]:
    """The realized critical chain, latest task first.

    Returns ``[(task, reason), ...]`` where ``reason`` explains what
    pinned the task's start: ``"data"`` (a parent's arrival), ``"cpu"``
    (the CPU was busy until exactly the start) or ``"start"`` (nothing
    -- the chain begins here, usually at time 0).
    """
    if not schedule.is_complete():
        raise ValueError("schedule is incomplete")
    current = max(graph.tasks(), key=lambda t: schedule.finish_of(t))
    chain: List[Tuple[int, str]] = []
    visited = set()
    while True:
        if current in visited:  # pragma: no cover - cycle guard
            break
        visited.add(current)
        assignment = schedule.assignment(current)
        # data-bound? a parent whose arrival equals the start
        binding_parent = None
        for parent in graph.predecessors(current):
            arrival = schedule.arrival_time(parent, current, assignment.proc)
            if abs(arrival - assignment.start) <= _EPS:
                binding_parent = parent
                break
        if binding_parent is not None:
            chain.append((current, "data"))
            current = binding_parent
            continue
        # cpu-bound? the slot right before on this CPU ends at our start
        predecessor_slot = None
        for slot in schedule.timelines[assignment.proc].slots():
            if abs(slot.end - assignment.start) <= _EPS and slot.task != current:
                predecessor_slot = slot
                break
        if predecessor_slot is not None and not predecessor_slot.duplicate:
            chain.append((current, "cpu"))
            current = predecessor_slot.task
            continue
        chain.append((current, "start"))
        break
    return chain


@dataclass(frozen=True)
class ScheduleDiagnostics:
    """Everything :func:`diagnose` computes, ready for printing."""

    makespan: float
    busy_time: Tuple[float, ...]
    idle_fraction: float
    load_imbalance: float
    comm_paid: float
    comm_total: float
    n_duplicates: int
    chain: Tuple[Tuple[int, str], ...]

    @property
    def comm_locality(self) -> float:
        """Fraction of communication cost avoided by co-placement."""
        if self.comm_total <= 0:
            return 1.0
        return 1.0 - self.comm_paid / self.comm_total

    def format(self, graph: TaskGraph) -> str:
        """Render the report as an aligned text block."""
        busy = ", ".join(f"P{i + 1}={b:.1f}" for i, b in enumerate(self.busy_time))
        chain = " <- ".join(
            f"{graph.name(t)}({why})" for t, why in self.chain
        )
        return "\n".join(
            [
                f"makespan          {self.makespan:.2f}",
                f"busy time         {busy}",
                f"idle fraction     {self.idle_fraction:.1%}",
                f"load imbalance    {self.load_imbalance:.3f} (1.0 = perfect)",
                f"comm paid/total   {self.comm_paid:.1f} / {self.comm_total:.1f} "
                f"(locality {self.comm_locality:.1%})",
                f"entry duplicates  {self.n_duplicates}",
                f"bottleneck chain  {chain}",
            ]
        )


def diagnose(graph: TaskGraph, schedule: Schedule) -> ScheduleDiagnostics:
    """Compute the full diagnostic report for a finished schedule."""
    makespan = schedule.makespan
    busy = tuple(t.busy_time() for t in schedule.timelines)
    capacity = makespan * len(schedule.timelines)
    idle = 1.0 - (sum(busy) / capacity) if capacity > 0 else 0.0
    paid, total = communication_volume(graph, schedule)
    return ScheduleDiagnostics(
        makespan=makespan,
        busy_time=busy,
        idle_fraction=idle,
        load_imbalance=load_imbalance(schedule),
        comm_paid=paid,
        comm_total=total,
        n_duplicates=len(schedule.duplicates()),
        chain=tuple(bottleneck_chain(graph, schedule)),
    )

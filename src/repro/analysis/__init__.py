"""Schedule diagnostics beyond the paper's three metrics.

Complements :mod:`repro.metrics` with the quantities a practitioner asks
after a scheduling run: where did the time go (busy / idle / imbalance),
how much data crossed CPUs, and which chain of tasks actually determined
the makespan.
"""

from repro.analysis.diagnostics import (
    ScheduleDiagnostics,
    diagnose,
    communication_volume,
    load_imbalance,
    bottleneck_chain,
)

__all__ = [
    "ScheduleDiagnostics",
    "diagnose",
    "communication_volume",
    "load_imbalance",
    "bottleneck_chain",
]

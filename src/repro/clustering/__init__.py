"""Cluster-based scheduling (the paper's Section II-C family).

Clustering heuristics first group tasks into clusters on an *unbounded*
virtual platform (zeroing the communication inside each cluster), then
merge clusters down to the physical CPU count and order the tasks.  The
paper dismisses the family as impractical; implementing it lets the
benches put a number on that claim.

* :func:`linear_clustering` -- the classic Kim-Browne linear clustering
  (repeatedly peel the longest remaining path into a cluster);
* :class:`ClusterScheduler` -- linear clustering + work-balanced merge
  onto the CPUs + eager topological ordering.
"""

from repro.clustering.linear import linear_clustering, ClusterScheduler

__all__ = ["linear_clustering", "ClusterScheduler"]

"""Linear clustering (Kim & Browne) and a cluster-based scheduler.

Linear clustering peels critical paths: using mean computation costs and
full communication costs, find the longest entry-to-exit path through
still-unclustered tasks, make it one cluster (its internal communication
becomes free), and repeat until every task is clustered.  Each cluster
is a chain, hence "linear".

:class:`ClusterScheduler` then

1. merges clusters down to the CPU count, smallest-work first (the
   iterative merging the paper describes),
2. maps merged clusters to CPUs greedily -- heaviest cluster first, each
   onto the CPU minimizing its load after adding that cluster's cost on
   that CPU (heterogeneity-aware), and
3. orders all tasks in one global topological pass with eager start
   times on their cluster's CPU.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.base import Scheduler
from repro.model.attributes import mean_execution_times
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["linear_clustering", "ClusterScheduler"]


def linear_clustering(graph: TaskGraph) -> List[List[int]]:
    """Partition tasks into linear clusters by repeated CP peeling."""
    mean_w = mean_execution_times(graph)
    unclustered = set(graph.tasks())
    clusters: List[List[int]] = []
    topo = graph.topological_order()

    while unclustered:
        # longest path through unclustered tasks (mean cost + comm)
        dist: Dict[int, float] = {}
        parent: Dict[int, int] = {}
        best_end, best_len = -1, -np.inf
        for task in topo:
            if task not in unclustered:
                continue
            incoming = -np.inf
            for pred in graph.predecessors(task):
                if pred in dist:
                    candidate = dist[pred] + graph.comm_cost(pred, task)
                    if candidate > incoming:
                        incoming = candidate
                        parent[task] = pred
            dist[task] = mean_w[task] + max(incoming, 0.0)
            if dist[task] > best_len:
                best_len = dist[task]
                best_end = task
        path = [best_end]
        while path[-1] in parent:
            path.append(parent[path[-1]])
        path.reverse()
        clusters.append(path)
        unclustered.difference_update(path)
    return clusters


class ClusterScheduler(Scheduler):
    """Linear clustering + merge-to-CPUs + eager topological ordering."""

    name = "LC"

    def _merge(
        self, graph: TaskGraph, clusters: List[List[int]]
    ) -> List[List[int]]:
        """Merge smallest-work clusters until at most ``n_procs`` remain."""
        mean_w = mean_execution_times(graph)

        def work(cluster: Sequence[int]) -> float:
            return float(sum(mean_w[t] for t in cluster))

        merged = [list(c) for c in clusters]
        while len(merged) > graph.n_procs:
            merged.sort(key=work)
            a = merged.pop(0)
            merged[0] = a + merged[0]
        return merged

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Cluster ``graph``, map clusters to CPUs, order eagerly."""
        clusters = self._merge(graph, linear_clustering(graph))
        w = graph.cost_matrix()

        # heaviest first onto the CPU minimizing resulting load
        order = sorted(
            clusters, key=lambda c: -float(sum(w[t].mean() for t in c))
        )
        load = np.zeros(graph.n_procs)
        proc_of_cluster: Dict[int, int] = {}
        cluster_of: Dict[int, int] = {}
        for ci, cluster in enumerate(order):
            cost_on = np.array(
                [sum(w[t, p] for t in cluster) for p in graph.procs()]
            )
            proc = int(np.argmin(load + cost_on))
            load[proc] += cost_on[proc]
            proc_of_cluster[ci] = proc
            for task in cluster:
                cluster_of[task] = ci

        schedule = Schedule(graph)
        for task in graph.topological_order():
            proc = proc_of_cluster[cluster_of[task]]
            ready = schedule.ready_time(task, proc)
            start = schedule.timelines[proc].earliest_start(
                ready, graph.cost(task, proc), insertion=True
            )
            schedule.place(task, proc, start)
        return schedule

"""The seeded fuzz campaign behind ``repro fuzz``.

Each instance draws one random layered DAG (concrete per-instance seed
``[campaign_seed, instance]``, so any instance replays alone) and runs
every configured scheduler through every engine/graph-representation
combination it supports:

* the full invariant registry on every build;
* bit-identity of the schedule across {compiled, object-graph} x
  {fast, reference engine} -- the PR 2/PR 3 differential contract;
* on tiny instances (<= ``exact_max_tasks`` tasks), no-duplication
  schedules are compared against the branch-and-bound optimum: a
  heuristic "beating" the optimum means somebody's makespan is a lie;
* every ``metamorphic_every``-th instance additionally runs the
  metamorphic battery on a scheduler subset.

Any failure is shrunk to a minimal reproducer (:mod:`repro.qa.shrink`)
and appended to the golden corpus (:mod:`repro.qa.corpus`) so the normal
test suite replays it forever.  ``inject`` deliberately corrupts every
schedule after building -- the mutation-style smoke test proving the
oracles can actually see.

``stream`` mode fuzzes the continuous job-stream arena instead: each
instance draws a small random workload (interleaved DAG jobs, Poisson or
deterministic arrivals, optionally noisy durations), runs every stream
policy through the stream invariant registry, and re-asserts the
single-job rate->0 differential against the offline executors.  Caught
failures are pinned as fully materialized ``stream`` corpus entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.baselines.registry import SCHEDULER_FACTORIES, make_scheduler
from repro.generator import GeneratorConfig, generate_random_graph
from repro.io.json_io import graph_to_dict
from repro.model.compiled import use_compiled
from repro.model.task_graph import TaskGraph
from repro.qa.corpus import CorpusEntry, append_entries
from repro.qa.invariants import invariants_for, run_invariants
from repro.qa.metamorphic import run_metamorphic, schedule_signature
from repro.qa.shrink import shrink_graph
from repro.schedule.schedule import Schedule
from repro.schedule.validation import FEASIBILITY_EPS

__all__ = ["FuzzConfig", "FuzzViolation", "FuzzReport", "run_campaign"]

#: schedulers that get the (more expensive) metamorphic battery
DEFAULT_METAMORPHIC = ("HDLTS", "HEFT", "PEFT", "SDBATS", "CPOP")

INJECT_MODES = ("wrong-duration", "early-start")


@dataclass
class FuzzConfig:
    """Everything one campaign run depends on (and nothing else)."""

    instances: int = 100
    seed: int = 0
    #: registry names; ``None`` = every registered scheduler
    schedulers: Optional[Sequence[str]] = None
    #: invariant subset; ``None`` = the full registry
    invariants: Optional[Sequence[str]] = None
    #: tiny instances get an exact branch-and-bound oracle
    exact: bool = True
    exact_max_tasks: int = 9
    exact_max_states: int = 200_000
    #: every k-th instance runs the metamorphic battery
    metamorphic_every: int = 4
    metamorphic_schedulers: Sequence[str] = DEFAULT_METAMORPHIC
    #: GA is ~3 orders of magnitude slower than the list schedulers;
    #: it only fuzzes instances up to this many tasks (skips are counted
    #: in the report, never silent)
    ga_max_tasks: int = 12
    #: where shrunk reproducers are appended (``None`` = don't write)
    corpus_path: Optional[str] = None
    #: also pin every instance's default-combo makespans here
    golden_path: Optional[str] = None
    #: corrupt every schedule post-build ("wrong-duration"/"early-start")
    #: to prove the oracles catch it
    inject: Optional[str] = None
    shrink: bool = True
    max_shrink_attempts: int = 300
    #: fuzz job-stream workloads through the arena instead of single
    #: schedules (``invariants`` then names stream invariants;
    #: incompatible with ``inject``/``golden_path``)
    stream: bool = False
    #: stream policies; ``None`` = the arena's default policy set
    stream_policies: Optional[Sequence[str]] = None

    def scheduler_names(self) -> List[str]:
        """The registry names this campaign covers."""
        if self.schedulers is None:
            return list(SCHEDULER_FACTORIES)
        return [str(n) for n in self.schedulers]


@dataclass
class FuzzViolation:
    """One caught failure, already shrunk if shrinking succeeded."""

    instance: int
    scheduler: str
    stage: str  # "build" | "invariant" | "differential" | "exact" | "metamorphic"
    compiled: Optional[bool]
    engine: Optional[str]
    problems: List[str]
    graph_tasks: int
    shrunk_tasks: Optional[int] = None
    corpus_id: Optional[str] = None

    def format(self) -> str:
        """One human-readable block: header plus the first problems."""
        combo = []
        if self.compiled is not None:
            combo.append("compiled" if self.compiled else "object-graph")
        if self.engine is not None:
            combo.append(f"engine={self.engine}")
        where = f" [{', '.join(combo)}]" if combo else ""
        shrunk = (
            f" (shrunk {self.graph_tasks}->{self.shrunk_tasks} tasks)"
            if self.shrunk_tasks is not None
            else ""
        )
        head = (
            f"instance {self.instance}: {self.scheduler}{where} "
            f"{self.stage} violation{shrunk}"
        )
        return "\n".join([head] + ["  " + p for p in self.problems[:6]])


@dataclass
class FuzzReport:
    """Campaign totals; ``ok`` gates the CLI exit code."""

    config: FuzzConfig
    instances: int = 0
    builds: int = 0
    exact_checks: int = 0
    metamorphic_runs: int = 0
    violations: List[FuzzViolation] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        """The campaign summary printed by ``repro fuzz``."""
        lines = [
            f"fuzz: {self.instances} instances, {self.builds} builds, "
            f"{self.exact_checks} exact checks, "
            f"{self.metamorphic_runs} metamorphic runs -> "
            f"{len(self.violations)} violations"
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        for violation in self.violations:
            lines.append(violation.format())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# instance generation
# ----------------------------------------------------------------------
def _draw_graph(
    rng: np.random.Generator, instance: int, config: FuzzConfig
) -> TaskGraph:
    """One random instance; every third one is tiny enough for B&B."""
    tiny = config.exact and instance % 3 == 0
    if tiny:
        v = int(rng.integers(4, config.exact_max_tasks + 1))
        n_procs = int(rng.integers(2, 4))
    else:
        v = int(rng.integers(8, 22))
        n_procs = int(rng.integers(2, 5))
    cfg = GeneratorConfig(
        v=v,
        alpha=float(rng.choice((0.5, 1.0, 2.0))),
        density=int(rng.integers(1, 4)),
        ccr=float(rng.choice((0.5, 1.0, 2.0, 5.0))),
        n_procs=n_procs,
        w_dag=50.0,
        beta=float(rng.choice((0.4, 1.2, 2.0))),
        single_entry=bool(rng.integers(0, 2)),
        heterogeneity=str(rng.choice(("inconsistent", "consistent"))),
    )
    return generate_random_graph(cfg, rng)


def _combos(name: str) -> List[Tuple[bool, Optional[str]]]:
    """(compiled, engine) grid a scheduler supports."""
    probe = make_scheduler(name)
    engines: Tuple[Optional[str], ...] = (
        ("fast", "reference") if hasattr(probe, "engine") else (None,)
    )
    return [(compiled, engine) for compiled in (True, False) for engine in engines]


def _build(
    name: str,
    graph: TaskGraph,
    compiled: bool,
    engine: Optional[str],
) -> Tuple[TaskGraph, Schedule]:
    scheduler = make_scheduler(name)
    if engine is not None:
        scheduler.engine = engine
    with use_compiled(compiled):
        prepared = scheduler.prepare(graph)
        schedule = scheduler.build_schedule(prepared)
    return prepared, schedule


# ----------------------------------------------------------------------
# deliberate corruption (mutation-style smoke test of the oracles)
# ----------------------------------------------------------------------
def _inject_wrong_duration(graph: TaskGraph, schedule: Schedule) -> bool:
    """Re-place some task with half its true duration."""
    candidates = [
        t
        for t in graph.tasks()
        if schedule.finish_of(t) - schedule.assignment(t).start
        > 10 * FEASIBILITY_EPS
    ]
    if not candidates:
        return False
    task = max(candidates, key=lambda t: schedule.assignment(t).start)
    a = schedule.assignment(task)
    duration = a.finish - a.start
    schedule.unplace(task)
    schedule.place(task, a.proc, a.start, duration=duration * 0.5)
    return True


def _inject_early_start(graph: TaskGraph, schedule: Schedule) -> bool:
    """Pull a data-bound task before its inputs arrive (precedence bug)."""
    by_start = sorted(
        graph.tasks(), key=lambda t: -schedule.assignment(t).start
    )
    for task in by_start:
        if graph.in_degree(task) == 0:
            continue
        a = schedule.assignment(task)
        arrival = max(
            schedule.arrival_time(p, task, a.proc)
            for p in graph.predecessors(task)
        )
        if arrival <= 10 * FEASIBILITY_EPS:
            continue
        duration = a.finish - a.start
        schedule.unplace(task)
        early = arrival / 2.0
        if schedule.timelines[a.proc].fits(early, early + duration):
            schedule.place(task, a.proc, early, duration=duration)
            return True
        schedule.place(task, a.proc, a.start, duration=duration)  # restore
    return False


def _inject(mode: str, graph: TaskGraph, schedule: Schedule) -> bool:
    if mode == "wrong-duration":
        return _inject_wrong_duration(graph, schedule)
    if mode == "early-start":
        if _inject_early_start(graph, schedule):
            return True
        return _inject_wrong_duration(graph, schedule)
    raise ValueError(f"unknown inject mode {mode!r}; known: {INJECT_MODES}")


# ----------------------------------------------------------------------
# shrinking predicates
# ----------------------------------------------------------------------
def _still_violates(
    name: str,
    compiled: bool,
    engine: Optional[str],
    invariant_names: Optional[Sequence[str]],
) -> Callable[[TaskGraph], bool]:
    """Predicate: does the scheduler still violate these invariants?"""

    def predicate(candidate: TaskGraph) -> bool:
        prepared, schedule = _build(name, candidate, compiled, engine)
        with use_compiled(compiled):
            report = run_invariants(prepared, schedule, invariant_names)
        return not report.ok

    return predicate


def _still_caught_injected(
    name: str,
    compiled: bool,
    engine: Optional[str],
    mode: str,
    invariant_names: Sequence[str],
) -> Callable[[TaskGraph], bool]:
    """Predicate: can we still corrupt a schedule AND catch it here?"""

    def predicate(candidate: TaskGraph) -> bool:
        prepared, schedule = _build(name, candidate, compiled, engine)
        if not _inject(mode, prepared, schedule):
            return False
        with use_compiled(compiled):
            report = run_invariants(prepared, schedule, invariant_names)
        return not report.ok

    return predicate


def _still_crashes(
    name: str, compiled: bool, engine: Optional[str]
) -> Callable[[TaskGraph], bool]:
    def predicate(candidate: TaskGraph) -> bool:
        try:
            _build(name, candidate, compiled, engine)
        except Exception:
            return True
        return False

    return predicate


# ----------------------------------------------------------------------
# the stream campaign
# ----------------------------------------------------------------------
def _draw_stream(rng: np.random.Generator):
    """One random small job-stream workload (arrivals first, then jobs)."""
    from repro.dynamic.noise import gaussian_noise
    from repro.stream.arena import StreamInstance, StreamJob
    from repro.stream.arrivals import ArrivalSpec

    n_jobs = int(rng.integers(2, 7))
    n_procs = int(rng.integers(2, 5))
    if rng.integers(0, 2):
        arrival = ArrivalSpec(
            "poisson", rate=float(rng.choice((0.005, 0.02, 0.1)))
        )
    else:
        arrival = ArrivalSpec(
            "deterministic", interval=float(rng.choice((0.0, 15.0, 60.0)))
        )
    times = arrival.times(n_jobs, rng)
    sigma = float(rng.choice((0.0, 0.2)))
    jobs = []
    for index in range(n_jobs):
        cfg = GeneratorConfig(
            v=int(rng.integers(5, 13)),
            alpha=float(rng.choice((0.5, 1.0, 2.0))),
            density=int(rng.integers(1, 4)),
            ccr=float(rng.choice((0.5, 1.0, 5.0))),
            n_procs=n_procs,
            w_dag=50.0,
            beta=float(rng.choice((0.4, 1.2, 2.0))),
            single_entry=bool(rng.integers(0, 2)),
            heterogeneity=str(rng.choice(("inconsistent", "consistent"))),
        )
        graph = generate_random_graph(cfg, rng)
        if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
            graph = graph.normalized()
        durations = None
        if sigma > 0.0:
            fn = gaussian_noise(graph, sigma, rng)
            durations = np.array(
                [
                    [fn(task, proc) for proc in range(graph.n_procs)]
                    for task in range(graph.n_tasks)
                ]
            )
        jobs.append(
            StreamJob(
                index=index,
                arrival=float(times[index]),
                graph=graph,
                durations=durations,
            )
        )
    return StreamInstance(jobs=tuple(jobs), n_procs=n_procs)


def _run_stream_campaign(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Fuzz the job-stream arena; never raises on an arena bug."""
    from dataclasses import replace as dc_replace

    from repro.qa.corpus import _stream_differential
    from repro.qa.invariants import run_stream_invariants
    from repro.stream.arena import StreamInstance, run_stream
    from repro.stream.spec import DEFAULT_POLICIES, instance_to_dict

    policies = [
        str(p)
        for p in (
            config.stream_policies
            if config.stream_policies is not None
            else DEFAULT_POLICIES
        )
    ]
    report = FuzzReport(config=config)
    bus = obs.get_bus()

    def caught(violation: FuzzViolation, workload) -> None:
        """Pin one failure as a fully materialized stream entry."""
        obs.count("fuzz/violations")
        if bus.active:
            bus.emit(
                "fuzz.violation",
                instance=violation.instance,
                scheduler=violation.scheduler,
                stage=violation.stage,
                first=violation.problems[0] if violation.problems else "",
            )
        if config.corpus_path is not None:
            entry_id = (
                f"stream-s{config.seed}-i{violation.instance}-"
                f"{violation.scheduler.replace('/', '-')}-{violation.stage}"
            )
            expected = {"stream": instance_to_dict(workload)}
            if violation.stage == "differential":
                expected["differential"] = True
            entry = CorpusEntry(
                kind="stream",
                id=entry_id,
                graph=graph_to_dict(workload.jobs[0].graph),
                scheduler=violation.scheduler,
                source=(
                    f"repro fuzz --stream --seed {config.seed} "
                    f"--instances {config.instances}"
                ),
                problems=violation.problems[:10],
                expected=expected,
                note=f"stage={violation.stage}",
            )
            append_entries(config.corpus_path, [entry])
            violation.corpus_id = entry_id
        report.violations.append(violation)

    for instance in range(config.instances):
        rng = np.random.default_rng([config.seed, instance])
        workload = _draw_stream(rng)
        report.instances += 1
        obs.count("fuzz/instances")
        n_tasks = sum(job.graph.n_tasks for job in workload.jobs)
        # the rate->0 sub-workload: the first job alone, arriving at 0
        lone = StreamInstance(
            jobs=(dc_replace(workload.jobs[0], index=0, arrival=0.0),),
            n_procs=workload.n_procs,
        )

        for policy in policies:
            try:
                result = run_stream(workload, policy)
            except Exception as err:
                caught(
                    FuzzViolation(
                        instance=instance,
                        scheduler=policy,
                        stage="build",
                        compiled=None,
                        engine=None,
                        problems=[f"stream run crashed: {err!r}"],
                        graph_tasks=n_tasks,
                    ),
                    workload,
                )
                continue
            report.builds += 1
            obs.count("fuzz/builds")
            inv = run_stream_invariants(workload, result, config.invariants)
            if not inv.ok:
                caught(
                    FuzzViolation(
                        instance=instance,
                        scheduler=policy,
                        stage="invariant",
                        compiled=None,
                        engine=None,
                        problems=inv.all_problems(),
                        graph_tasks=n_tasks,
                    ),
                    workload,
                )
                continue
            # rate->0 differential: a lone job must replay the offline
            # executors bit for bit
            try:
                lone_result = run_stream(lone, policy)
                problems = _stream_differential(lone, policy, lone_result)
            except Exception as err:
                problems = [f"single-job differential crashed: {err!r}"]
            report.exact_checks += 1
            obs.count("fuzz/stream_differentials")
            if problems:
                caught(
                    FuzzViolation(
                        instance=instance,
                        scheduler=policy,
                        stage="differential",
                        compiled=None,
                        engine=None,
                        problems=problems,
                        graph_tasks=lone.jobs[0].graph.n_tasks,
                    ),
                    lone,
                )

        if progress is not None and (instance + 1) % 10 == 0:
            progress(
                f"[{instance + 1}/{config.instances}] "
                f"{report.builds} stream runs, "
                f"{len(report.violations)} violations"
            )

    return report


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
def run_campaign(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the whole campaign; never raises on a scheduler bug."""
    from repro.exact.branch_and_bound import (
        SearchBudgetExceeded,
        optimal_makespan,
    )

    if config.stream:
        if config.inject is not None:
            raise ValueError("inject modes only apply to schedule fuzzing")
        if config.golden_path is not None:
            raise ValueError("golden pinning only applies to schedule fuzzing")
        return _run_stream_campaign(config, progress)
    if config.inject is not None and config.inject not in INJECT_MODES:
        raise ValueError(
            f"unknown inject mode {config.inject!r}; known: {INJECT_MODES}"
        )
    names = config.scheduler_names()
    combos = {name: _combos(name) for name in names}
    report = FuzzReport(config=config)
    bus = obs.get_bus()
    ga_skips = 0
    exact_budget_skips = 0

    def caught(violation: FuzzViolation, graph: TaskGraph) -> None:
        """Shrink, persist and record one failure."""
        obs.count("fuzz/violations")
        if bus.active:
            bus.emit(
                "fuzz.violation",
                instance=violation.instance,
                scheduler=violation.scheduler,
                stage=violation.stage,
                first=violation.problems[0] if violation.problems else "",
            )
        shrunk = graph
        if config.shrink and violation.stage in ("build", "invariant"):
            compiled = bool(violation.compiled)
            inv_names = (
                config.invariants
                if config.invariants is not None
                else invariants_for(violation.scheduler)
            )
            if violation.stage == "build":
                predicate = _still_crashes(
                    violation.scheduler, compiled, violation.engine
                )
            elif config.inject is not None:
                # an injected failure shrinks toward the smallest graph
                # on which the corruption still exists AND is still seen
                predicate = _still_caught_injected(
                    violation.scheduler,
                    compiled,
                    violation.engine,
                    config.inject,
                    inv_names,
                )
            else:
                predicate = _still_violates(
                    violation.scheduler, compiled, violation.engine, inv_names
                )
            shrunk = shrink_graph(
                graph, predicate, max_attempts=config.max_shrink_attempts
            )
            violation.shrunk_tasks = shrunk.n_tasks
        if config.corpus_path is not None:
            entry_id = (
                f"fuzz-s{config.seed}-i{violation.instance}-"
                f"{violation.scheduler}-{violation.stage}"
            )
            entry = CorpusEntry(
                kind="violation",
                id=entry_id,
                graph=graph_to_dict(shrunk),
                scheduler=violation.scheduler,
                compiled=violation.compiled,
                engine=violation.engine,
                source=(
                    f"repro fuzz --seed {config.seed} "
                    f"--instances {config.instances}"
                ),
                problems=violation.problems[:10],
                note=f"stage={violation.stage}",
            )
            append_entries(config.corpus_path, [entry])
            violation.corpus_id = entry_id
        report.violations.append(violation)

    for instance in range(config.instances):
        rng = np.random.default_rng([config.seed, instance])
        graph = _draw_graph(rng, instance, config)
        report.instances += 1
        obs.count("fuzz/instances")
        opt_cache: Dict[str, Optional[float]] = {}
        golden_makespans: Dict[str, float] = {}

        for name in names:
            if name == "GA" and graph.n_tasks > config.ga_max_tasks:
                ga_skips += 1
                continue
            inv_names = (
                config.invariants
                if config.invariants is not None
                else invariants_for(name)
            )
            signatures = []
            for compiled, engine in combos[name]:
                try:
                    prepared, schedule = _build(name, graph, compiled, engine)
                except Exception as err:
                    caught(
                        FuzzViolation(
                            instance=instance,
                            scheduler=name,
                            stage="build",
                            compiled=compiled,
                            engine=engine,
                            problems=[f"build crashed: {err!r}"],
                            graph_tasks=graph.n_tasks,
                        ),
                        graph,
                    )
                    continue
                report.builds += 1
                obs.count("fuzz/builds")
                if config.inject is not None:
                    if not _inject(config.inject, prepared, schedule):
                        report.notes.append(
                            f"instance {instance}: {name}: no injectable "
                            "task (degenerate schedule)"
                        )
                        continue
                with use_compiled(compiled):
                    inv = run_invariants(prepared, schedule, inv_names)
                if not inv.ok:
                    caught(
                        FuzzViolation(
                            instance=instance,
                            scheduler=name,
                            stage="invariant",
                            compiled=compiled,
                            engine=engine,
                            problems=inv.all_problems(),
                            graph_tasks=graph.n_tasks,
                        ),
                        graph,
                    )
                    continue
                if config.inject is not None:
                    continue  # corrupted schedules prove nothing below
                signatures.append((compiled, engine, schedule_signature(schedule)))

                # exact oracle: no-duplication schedules cannot beat the
                # no-duplication optimum
                if (
                    config.exact
                    and prepared.n_tasks <= config.exact_max_tasks
                    and not schedule.duplicates()
                ):
                    key = "raw" if prepared is graph else "norm"
                    if key not in opt_cache:
                        try:
                            opt_cache[key] = optimal_makespan(
                                prepared, max_states=config.exact_max_states
                            )
                        except SearchBudgetExceeded:
                            opt_cache[key] = None
                            exact_budget_skips += 1
                    optimum = opt_cache[key]
                    if optimum is not None:
                        report.exact_checks += 1
                        obs.count("fuzz/exact_checks")
                        if schedule.makespan < optimum - FEASIBILITY_EPS * (
                            1.0 + optimum
                        ):
                            caught(
                                FuzzViolation(
                                    instance=instance,
                                    scheduler=name,
                                    stage="exact",
                                    compiled=compiled,
                                    engine=engine,
                                    problems=[
                                        f"makespan {schedule.makespan!r} beats "
                                        f"the no-duplication optimum {optimum!r}"
                                    ],
                                    graph_tasks=graph.n_tasks,
                                ),
                                graph,
                            )

                if (
                    config.golden_path is not None
                    and compiled
                    and engine in (None, "fast")
                ):
                    golden_makespans[name] = schedule.makespan

            # all supported combos must agree bit for bit
            if len(signatures) > 1:
                base_compiled, base_engine, base_sig = signatures[0]
                for compiled, engine, sig in signatures[1:]:
                    if sig != base_sig:
                        diff = sorted(
                            t
                            for t in set(base_sig) | set(sig)
                            if base_sig.get(t) != sig.get(t)
                        )
                        caught(
                            FuzzViolation(
                                instance=instance,
                                scheduler=name,
                                stage="differential",
                                compiled=compiled,
                                engine=engine,
                                problems=[
                                    f"schedule differs from combo "
                                    f"(compiled={base_compiled}, "
                                    f"engine={base_engine}) on tasks "
                                    f"{diff[:8]}"
                                ],
                                graph_tasks=graph.n_tasks,
                            ),
                            graph,
                        )
                        break

        if (
            config.inject is None
            and config.metamorphic_every > 0
            and instance % config.metamorphic_every == 0
        ):
            battery_names = [
                n for n in config.metamorphic_schedulers if n in names
            ]
            for name in battery_names:
                results = run_metamorphic(
                    lambda n=name: make_scheduler(n),
                    graph,
                    rng,
                    scheduler_name=name,
                )
                report.metamorphic_runs += 1
                problems = [
                    f"{r.transform}: {p}"
                    for r in results
                    for p in r.problems
                ]
                if problems:
                    caught(
                        FuzzViolation(
                            instance=instance,
                            scheduler=name,
                            stage="metamorphic",
                            compiled=None,
                            engine=None,
                            problems=problems,
                            graph_tasks=graph.n_tasks,
                        ),
                        graph,
                    )

        if config.golden_path is not None and golden_makespans:
            append_entries(
                config.golden_path,
                [
                    CorpusEntry(
                        kind="golden",
                        id=f"golden-s{config.seed}-i{instance}",
                        graph=graph_to_dict(graph),
                        source=f"repro fuzz --seed {config.seed} --emit-golden",
                        expected={"makespans": golden_makespans},
                    )
                ],
            )

        if progress is not None and (instance + 1) % 10 == 0:
            progress(
                f"[{instance + 1}/{config.instances}] "
                f"{report.builds} builds, "
                f"{len(report.violations)} violations"
            )

    if ga_skips:
        report.notes.append(
            f"GA capped to <= {config.ga_max_tasks} tasks: "
            f"skipped {ga_skips} instances"
        )
    if exact_budget_skips:
        report.notes.append(
            f"branch-and-bound budget exceeded on {exact_budget_skips} "
            "instances (skipped, not failed)"
        )
    return report

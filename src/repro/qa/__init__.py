"""Standing correctness subsystem: oracles that need no scheduler twin.

Every scheduler in the library runs through two mutating fast paths (the
vectorized EFT engine and the compiled CSR layer).  This package is the
safety net that catches semantic drift in any of them *without*
reimplementing a scheduler:

* :mod:`repro.qa.invariants` -- a registry of named, composable checks
  run against any ``(graph, schedule)`` pair: feasibility, makespan
  bounds (CP_MIN below, total work + communication above), Algorithm-1
  duplicate legality, metric consistency, and simulator replay
  agreement;
* :mod:`repro.qa.metamorphic` -- semantics-preserving or
  monotonicity-known graph transforms (uniform cost scaling, task
  relabeling, zero-cost transitive edges, CPU permutation, CCR
  rescaling) with the relation each one must induce between the two
  schedules;
* :mod:`repro.qa.fuzz` -- the seeded campaign driver behind
  ``repro fuzz``: random DAGs x every registry scheduler x
  {compiled, object-graph} x {fast, reference engine}, all invariants,
  exact branch-and-bound oracles on tiny instances, metamorphic
  relations, and shrinking of any failure to a minimal reproducer;
* :mod:`repro.qa.shrink` -- greedy delta-debugging of a failing graph;
* :mod:`repro.qa.corpus` -- the JSONL golden/regression corpus under
  ``tests/corpus/`` that every caught failure joins and that the normal
  pytest suite replays forever after.
"""

from repro.qa.corpus import (
    CorpusEntry,
    append_entries,
    read_corpus,
    replay_entry,
)
from repro.qa.invariants import (
    INVARIANTS,
    Invariant,
    InvariantReport,
    invariant_names,
    invariants_for,
    run_invariants,
)
from repro.qa.metamorphic import (
    DEFAULT_TRANSFORMS,
    MetamorphicResult,
    run_metamorphic,
    schedule_signature,
)
from repro.qa.fuzz import FuzzConfig, FuzzReport, run_campaign
from repro.qa.shrink import shrink_graph

__all__ = [
    "INVARIANTS",
    "Invariant",
    "InvariantReport",
    "invariant_names",
    "invariants_for",
    "run_invariants",
    "DEFAULT_TRANSFORMS",
    "MetamorphicResult",
    "run_metamorphic",
    "schedule_signature",
    "FuzzConfig",
    "FuzzReport",
    "run_campaign",
    "shrink_graph",
    "CorpusEntry",
    "append_entries",
    "read_corpus",
    "replay_entry",
]

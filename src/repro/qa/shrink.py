"""Greedy delta-debugging of a failing task graph.

:func:`shrink_graph` takes a graph on which ``predicate`` holds (the
reproduction of some invariant violation) and repeatedly tries smaller
or simpler variants -- dropping tasks, dropping edges, dropping CPUs,
zeroing communication costs, rounding computation costs -- keeping each
simplification only if the predicate *still* holds.  The result is the
minimal reproducer the fuzz campaign writes to the golden corpus: small
enough to read, concrete enough to replay forever.

The predicate owns all judgement: it rebuilds the failing scenario
(scheduler, engine/compiled combo, invariant subset) on the candidate
graph and answers "does it still fail?".  ``shrink_graph`` treats a
predicate exception as "does not fail" so a crash introduced *by
shrinking* never masquerades as the original bug.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph

__all__ = ["shrink_graph"]

Predicate = Callable[[TaskGraph], bool]
EdgeList = List[Tuple[int, int, float]]


def _arrays(graph: TaskGraph) -> Tuple[np.ndarray, EdgeList]:
    costs = graph.cost_matrix().copy()
    edges = [(e.src, e.dst, e.cost) for e in graph.edges()]
    return costs, edges


def _rebuild(costs: np.ndarray, edges: EdgeList) -> TaskGraph:
    return TaskGraph.from_arrays(np.asarray(costs, dtype=float), edges)


def _drop_task(
    costs: np.ndarray, edges: EdgeList, task: int
) -> Tuple[np.ndarray, EdgeList]:
    keep = [i for i in range(costs.shape[0]) if i != task]
    remap = {old: new for new, old in enumerate(keep)}
    new_edges = [
        (remap[u], remap[v], c) for u, v, c in edges if u != task and v != task
    ]
    return costs[keep], new_edges


def shrink_graph(
    graph: TaskGraph,
    predicate: Predicate,
    max_attempts: int = 400,
) -> TaskGraph:
    """Smallest graph (greedy, not global) on which ``predicate`` holds.

    Runs simplification passes to fixpoint or until ``max_attempts``
    predicate evaluations: remove tasks (ids compacted), remove edges,
    drop CPU columns, zero communication costs, round computation costs
    to integers.  If the initial graph does not satisfy the predicate it
    is returned unchanged.
    """
    attempts = 0

    def holds(candidate: TaskGraph) -> bool:
        nonlocal attempts
        attempts += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    best = graph
    improved = True
    while improved and attempts < max_attempts:
        improved = False

        # pass 1: drop tasks, highest id first (ids stay compact)
        task = best.n_tasks - 1
        while task >= 0 and best.n_tasks > 2 and attempts < max_attempts:
            costs, edges = _arrays(best)
            candidate = _rebuild(*_drop_task(costs, edges, task))
            if holds(candidate):
                best = candidate
                improved = True
            task -= 1

        # pass 2: drop edges
        index = len(list(best.edges())) - 1
        while index >= 0 and attempts < max_attempts:
            costs, edges = _arrays(best)
            del edges[index]
            candidate = _rebuild(costs, edges)
            if holds(candidate):
                best = candidate
                improved = True
            index -= 1

        # pass 3: drop CPU columns
        proc = best.n_procs - 1
        while proc >= 0 and best.n_procs > 1 and attempts < max_attempts:
            costs, edges = _arrays(best)
            keep = [p for p in range(costs.shape[1]) if p != proc]
            candidate = _rebuild(costs[:, keep], edges)
            if holds(candidate):
                best = candidate
                improved = True
            proc -= 1

        # pass 4: zero communication costs, one edge at a time
        index = len(list(best.edges())) - 1
        while index >= 0 and attempts < max_attempts:
            costs, edges = _arrays(best)
            u, v, c = edges[index]
            if c != 0.0:
                edges[index] = (u, v, 0.0)
                candidate = _rebuild(costs, edges)
                if holds(candidate):
                    best = candidate
                    improved = True
            index -= 1

        # pass 5: round every cost to an integer (single shot per round)
        if attempts < max_attempts:
            costs, edges = _arrays(best)
            rounded_costs = np.round(costs)
            rounded_edges = [(u, v, float(round(c))) for u, v, c in edges]
            if not np.array_equal(rounded_costs, costs) or rounded_edges != edges:
                candidate = _rebuild(rounded_costs, rounded_edges)
                if holds(candidate):
                    best = candidate
                    improved = True
    return best

"""The invariant oracle registry: named checks on (graph, schedule) pairs.

Each invariant is a function ``(graph, schedule) -> [problem, ...]``
whose truth does not depend on *how* the schedule was produced, so the
same registry audits every scheduler, engine and graph-representation
combination without a reference twin:

* ``feasibility`` -- the independent validator (completeness, durations,
  overlap, precedence + communication; Definition 5);
* ``cp_lower_bound`` -- a feasible makespan is bounded below by CP_MIN,
  the longest chain of minimum computation costs (Eq. 10 denominator).
  Entry duplication cannot beat it: every task on the chain still
  executes somewhere at >= its minimum cost;
* ``work_lower_bound`` -- ``p`` CPUs cannot do ``sum_i min_p W(i, p)``
  of mandatory work in less than ``1/p`` of it;
* ``work_upper_bound`` -- an eager schedule never exceeds total busy
  time (all copies) plus total communication: walking back from the
  last task, every idle stretch is covered by a distinct comm edge;
* ``duplicate_consistency`` -- a duplicate copy implies a primary copy
  and no CPU ever holds two copies of the same task (true for *any*
  duplication scheme);
* ``entry_duplication`` -- Algorithm 1 specifically: only entry tasks
  are duplicated and every duplicate runs over ``[0, W)``.  DHEFT-style
  schedulers legally duplicate arbitrary parents, so
  :func:`invariants_for` exempts them from this one check;
* ``metrics_consistency`` -- SLR/speedup/efficiency recompute from
  their definitions, SLR >= 1, and the compiled-layer artifacts
  (CP_MIN, sequential time) agree bit-for-bit with the object-graph
  recursions;
* ``simulator_replay`` -- discrete-event re-execution of the schedule's
  own decisions can never finish *later* than the analytic times.

Register further invariants with :func:`register_invariant`; the fuzz
campaign picks them up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.schedule.validation import (
    FEASIBILITY_EPS,
    ScheduleError,
    validate_schedule,
)

__all__ = [
    "Invariant",
    "InvariantReport",
    "INVARIANTS",
    "GENERAL_DUPLICATION",
    "STREAM_INVARIANTS",
    "register_invariant",
    "register_stream_invariant",
    "invariant_names",
    "invariants_for",
    "run_invariants",
    "run_stream_invariants",
    "stream_invariant_names",
]

CheckFn = Callable[[TaskGraph, Schedule], List[str]]


@dataclass(frozen=True)
class Invariant:
    """One named oracle: ``check`` returns every violation it finds."""

    name: str
    description: str
    check: CheckFn


#: registry name -> invariant, in registration order
INVARIANTS: Dict[str, Invariant] = {}


def register_invariant(name: str, description: str):
    """Decorator: add a ``(graph, schedule) -> [problems]`` check."""

    def wrap(fn: CheckFn) -> CheckFn:
        if name in INVARIANTS:
            raise ValueError(f"invariant {name!r} already registered")
        INVARIANTS[name] = Invariant(name, description, fn)
        return fn

    return wrap


def invariant_names() -> List[str]:
    """All registered invariant names, in registration order."""
    return list(INVARIANTS)


#: registry-name prefixes of schedulers whose duplication model is not
#: Algorithm 1 (they may copy arbitrary parents at arbitrary times)
GENERAL_DUPLICATION = ("DHEFT",)


def invariants_for(scheduler_name: str) -> List[str]:
    """The invariant subset that applies to one scheduler.

    Everything in the registry applies to every scheduler, except that
    general-duplication schedulers (:data:`GENERAL_DUPLICATION`) are
    exempt from the Algorithm-1-specific ``entry_duplication`` check.
    """
    names = list(INVARIANTS)
    upper = scheduler_name.upper()
    if any(upper.startswith(prefix) for prefix in GENERAL_DUPLICATION):
        names.remove("entry_duplication")
    return names


def _tol(scale: float) -> float:
    """Feasibility tolerance at a given magnitude (absolute + relative)."""
    return FEASIBILITY_EPS * (1.0 + abs(scale))


# ----------------------------------------------------------------------
# built-in invariants
# ----------------------------------------------------------------------
@register_invariant(
    "feasibility",
    "independent validator: completeness, durations, overlap, precedence",
)
def _feasibility(graph: TaskGraph, schedule: Schedule) -> List[str]:
    try:
        validate_schedule(graph, schedule)
    except ScheduleError as err:
        return list(err.problems)
    return []


@register_invariant(
    "cp_lower_bound",
    "makespan >= CP_MIN (longest min-cost chain, duplication-proof)",
)
def _cp_lower_bound(graph: TaskGraph, schedule: Schedule) -> List[str]:
    from repro.metrics.critical_path import cp_min_lower_bound

    if not schedule.is_complete():
        return []  # feasibility already reports the missing tasks
    bound = cp_min_lower_bound(graph)
    makespan = schedule.makespan
    if makespan < bound - _tol(bound):
        return [
            f"makespan {makespan:.6f} beats the CP_MIN lower bound "
            f"{bound:.6f}"
        ]
    return []


@register_invariant(
    "work_lower_bound",
    "makespan >= (sum of min-cost work) / n_procs",
)
def _work_lower_bound(graph: TaskGraph, schedule: Schedule) -> List[str]:
    if not schedule.is_complete() or graph.n_tasks == 0:
        return []
    min_work = float(graph.cost_matrix().min(axis=1).sum())
    bound = min_work / graph.n_procs
    makespan = schedule.makespan
    if makespan < bound - _tol(bound):
        return [
            f"makespan {makespan:.6f} beats the aggregate work bound "
            f"{bound:.6f} ({graph.n_procs} CPUs cannot absorb "
            f"{min_work:.6f} of mandatory work faster)"
        ]
    return []


@register_invariant(
    "work_upper_bound",
    "makespan <= total busy time (all copies) + total communication",
)
def _work_upper_bound(graph: TaskGraph, schedule: Schedule) -> List[str]:
    if not schedule.is_complete():
        return []
    busy = sum(t.busy_time() for t in schedule.timelines)
    comm = sum(e.cost for e in graph.edges())
    bound = busy + comm
    makespan = schedule.makespan
    if makespan > bound + _tol(bound):
        return [
            f"makespan {makespan:.6f} exceeds busy+comm upper bound "
            f"{bound:.6f} (busy {busy:.6f}, comm {comm:.6f}): the "
            "schedule contains idle time covered by neither work nor "
            "a communication delay"
        ]
    return []


@register_invariant(
    "duplicate_consistency",
    "every duplicate has a primary; no CPU holds two copies of one task",
)
def _duplicate_consistency(graph: TaskGraph, schedule: Schedule) -> List[str]:
    problems: List[str] = []
    for dup in schedule.duplicates():
        try:
            schedule.assignment(dup.task)
        except KeyError:
            problems.append(
                f"task {dup.task} has a duplicate on CPU {dup.proc} but "
                "no primary copy"
            )
    for task in graph.tasks():
        copies = schedule.copies(task)
        procs = [c.proc for c in copies]
        if len(set(procs)) != len(procs):
            problems.append(
                f"task {task} has two copies on one CPU "
                f"(procs {sorted(procs)}): a second local copy can never "
                "deliver data earlier"
            )
    return problems


@register_invariant(
    "entry_duplication",
    "Algorithm 1: only entry tasks are duplicated, over [0, W)",
)
def _entry_duplication(graph: TaskGraph, schedule: Schedule) -> List[str]:
    problems: List[str] = []
    for dup in schedule.duplicates():
        if graph.in_degree(dup.task) != 0:
            problems.append(
                f"task {dup.task} has {graph.in_degree(dup.task)} parents "
                "but was duplicated (Algorithm 1 duplicates entry tasks only)"
            )
        if abs(dup.start) > FEASIBILITY_EPS:
            problems.append(
                f"duplicate of task {dup.task} on CPU {dup.proc} starts at "
                f"{dup.start:.6f}, not in Algorithm 1's [0, W) window"
            )
    return problems


@register_invariant(
    "metrics_consistency",
    "SLR/speedup/efficiency match their definitions; compiled == reference",
)
def _metrics_consistency(graph: TaskGraph, schedule: Schedule) -> List[str]:
    from repro.metrics.critical_path import cp_min_lower_bound, critical_path_min
    from repro.metrics.metrics import evaluate, sequential_time
    from repro.model.compiled import use_compiled

    if not schedule.is_complete():
        return []
    makespan = schedule.makespan
    bound = cp_min_lower_bound(graph)
    if makespan <= 0 or bound <= 0:
        return []  # degenerate all-zero-cost graphs: metrics undefined
    problems: List[str] = []
    seq = sequential_time(graph)
    report = evaluate(graph, schedule)
    if abs(report.slr - makespan / bound) > _tol(report.slr):
        problems.append(
            f"SLR {report.slr:.9f} != makespan/CP_MIN "
            f"{makespan / bound:.9f}"
        )
    if report.slr < 1.0 - _tol(1.0):
        problems.append(f"SLR {report.slr:.9f} < 1: CP_MIN is not a bound")
    if abs(report.speedup - seq / makespan) > _tol(report.speedup):
        problems.append(
            f"speedup {report.speedup:.9f} != sequential/makespan "
            f"{seq / makespan:.9f}"
        )
    if abs(report.efficiency - report.speedup / graph.n_procs) > _tol(
        report.efficiency
    ):
        problems.append(
            f"efficiency {report.efficiency:.9f} != speedup/p "
            f"{report.speedup / graph.n_procs:.9f}"
        )
    # the compiled artifact cache must agree with the object-graph
    # recursions bit for bit (the PR 3 contract)
    with use_compiled(False):
        ref_bound = critical_path_min(graph)[0]
        ref_seq = float(graph.cost_matrix().sum(axis=0).min())
    if ref_bound != bound:
        problems.append(
            f"compiled CP_MIN {bound!r} != reference CP_MIN {ref_bound!r}"
        )
    if ref_seq != seq:
        problems.append(
            f"compiled sequential time {seq!r} != reference {ref_seq!r}"
        )
    return problems


@register_invariant(
    "simulator_replay",
    "discrete-event replay of the schedule's decisions never runs later",
)
def _simulator_replay(graph: TaskGraph, schedule: Schedule) -> List[str]:
    from repro.schedule.simulator import ScheduleSimulator

    if not schedule.is_complete():
        return []
    return ScheduleSimulator(graph).replay_violations(schedule)


# ----------------------------------------------------------------------
# running the registry
# ----------------------------------------------------------------------
@dataclass
class InvariantReport:
    """Outcome of one registry pass over a (graph, schedule) pair."""

    checked: Tuple[str, ...]
    #: invariant name -> its violations (only failing invariants appear)
    violations: Dict[str, List[str]]

    @property
    def ok(self) -> bool:
        return not self.violations

    def all_problems(self) -> List[str]:
        """Every violation, prefixed with its invariant's name."""
        return [
            f"[{name}] {problem}"
            for name, problems in self.violations.items()
            for problem in problems
        ]

    def format(self) -> str:
        """One-line success message, or an indented violation list."""
        if self.ok:
            return f"all {len(self.checked)} invariants hold"
        lines = [
            f"{len(self.violations)}/{len(self.checked)} invariants violated:"
        ]
        lines.extend("  " + p for p in self.all_problems())
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise :class:`ScheduleError` when any invariant was violated."""
        if not self.ok:
            raise ScheduleError(self.all_problems())


def run_invariants(
    graph: TaskGraph,
    schedule: Schedule,
    names: Optional[Iterable[str]] = None,
) -> InvariantReport:
    """Run the registry (or the ``names`` subset) against one pair.

    Checks run independently: a feasibility failure does not stop the
    bound checks from reporting their own violations.  Emits
    ``qa/invariant_checks`` / ``qa/invariant_violations`` counters and a
    ``qa.invariant_violation`` event per failing invariant.
    """
    selected = list(names) if names is not None else list(INVARIANTS)
    unknown = [n for n in selected if n not in INVARIANTS]
    if unknown:
        known = ", ".join(INVARIANTS)
        raise KeyError(f"unknown invariants {unknown}; known: {known}")
    violations: Dict[str, List[str]] = {}
    bus = obs.get_bus()
    for name in selected:
        problems = INVARIANTS[name].check(graph, schedule)
        if problems:
            violations[name] = problems
            if bus.active:
                bus.emit(
                    "qa.invariant_violation",
                    invariant=name,
                    n_problems=len(problems),
                    first=problems[0],
                )
    obs.count("qa/invariant_checks", len(selected))
    if violations:
        obs.count(
            "qa/invariant_violations",
            sum(len(p) for p in violations.values()),
        )
    return InvariantReport(checked=tuple(selected), violations=violations)


# ----------------------------------------------------------------------
# stream invariants: checks on (StreamInstance, StreamResult) pairs
# ----------------------------------------------------------------------
#: registry name -> invariant over a realized job stream
STREAM_INVARIANTS: Dict[str, Invariant] = {}


def register_stream_invariant(name: str, description: str):
    """Decorator: add an ``(instance, result) -> [problems]`` check."""

    def wrap(fn):
        if name in STREAM_INVARIANTS:
            raise ValueError(f"stream invariant {name!r} already registered")
        STREAM_INVARIANTS[name] = Invariant(name, description, fn)
        return fn

    return wrap


def stream_invariant_names() -> List[str]:
    """All registered stream invariant names, in registration order."""
    return list(STREAM_INVARIANTS)


@register_stream_invariant(
    "stream_conservation",
    "every arrived job finishes completely or is explicitly lost",
)
def _stream_conservation(instance, result) -> List[str]:
    problems: List[str] = []
    if len(result.jobs) != len(instance.jobs):
        problems.append(
            f"{len(instance.jobs)} jobs arrived but {len(result.jobs)} "
            "were accounted for"
        )
        return problems
    for job, outcome in zip(instance.jobs, result.jobs):
        if outcome.finished == outcome.lost:
            problems.append(
                f"job {outcome.job} is neither finished nor lost "
                f"(finished={outcome.finished}, lost={outcome.lost})"
            )
        if outcome.finished:
            missing = [
                t for t in job.graph.tasks()
                if t not in outcome.finish_times
            ]
            if missing:
                problems.append(
                    f"job {outcome.job} reported finished but tasks "
                    f"{missing[:10]} never ran"
                )
            if not np.isfinite(outcome.finish):
                problems.append(
                    f"job {outcome.job} finished with non-finite "
                    f"completion time {outcome.finish!r}"
                )
            elif outcome.finish < job.arrival - FEASIBILITY_EPS:
                problems.append(
                    f"job {outcome.job} finished at {outcome.finish:.6f}, "
                    f"before its arrival {job.arrival:.6f}"
                )
    # a finished job has exactly one successful primary copy per task
    primary: Dict[Tuple[int, int], int] = {}
    for rec in result.records:
        if not rec.duplicate and not rec.lost:
            key = (rec.job, rec.task)
            primary[key] = primary.get(key, 0) + 1
    for job, outcome in zip(instance.jobs, result.jobs):
        if not outcome.finished:
            continue
        for task in job.graph.tasks():
            n = primary.get((outcome.job, task), 0)
            if n != 1:
                problems.append(
                    f"job {outcome.job} task {task} has {n} successful "
                    "primary dispatches (expected exactly 1)"
                )
    return problems


@register_stream_invariant(
    "stream_no_overlap",
    "no CPU executes two dispatches at once across jobs",
)
def _stream_no_overlap(instance, result) -> List[str]:
    problems: List[str] = []
    per_proc: Dict[int, List] = {}
    for rec in result.records:
        if rec.finish < rec.start - FEASIBILITY_EPS:
            problems.append(
                f"job {rec.job} task {rec.task} on CPU {rec.proc} runs "
                f"backwards: [{rec.start:.6f}, {rec.finish:.6f})"
            )
        per_proc.setdefault(rec.proc, []).append(rec)
    # primaries may never overlap; duplicates join the check under
    # exact durations (noisy entry duplicates are admitted on the
    # estimated window, inherited from OnlineHDLTS, and may overrun)
    for proc, recs in sorted(per_proc.items()):
        checked = [
            r for r in recs if result.exact or not r.duplicate
        ]
        checked.sort(key=lambda r: (r.start, r.finish))
        for prev, cur in zip(checked, checked[1:]):
            if cur.start < prev.finish - FEASIBILITY_EPS:
                problems.append(
                    f"CPU {proc} overlap: job {prev.job} task {prev.task} "
                    f"[{prev.start:.6f}, {prev.finish:.6f}) vs job "
                    f"{cur.job} task {cur.task} "
                    f"[{cur.start:.6f}, {cur.finish:.6f})"
                )
    return problems


@register_stream_invariant(
    "stream_precedence",
    "per-job precedence + communication hold under interleaving",
)
def _stream_precedence(instance, result) -> List[str]:
    problems: List[str] = []
    jobs = {job.index: job for job in instance.jobs}
    # successful copies per (job, task): data sources for successors
    copies: Dict[Tuple[int, int], List[Tuple[int, float]]] = {}
    for rec in result.records:
        if not rec.lost:
            copies.setdefault((rec.job, rec.task), []).append(
                (rec.proc, rec.finish)
            )
    for rec in result.records:
        if rec.duplicate or rec.lost:
            continue
        job = jobs[rec.job]
        graph = job.graph
        if rec.start < job.arrival - FEASIBILITY_EPS:
            problems.append(
                f"job {rec.job} task {rec.task} starts at "
                f"{rec.start:.6f}, before the job arrived at "
                f"{job.arrival:.6f}"
            )
        for parent in graph.predecessors(rec.task):
            sources = copies.get((rec.job, parent), [])
            if not sources:
                problems.append(
                    f"job {rec.job} task {rec.task} ran with no copy of "
                    f"parent {parent}"
                )
                continue
            comm = graph.comm_cost(parent, rec.task)
            arrival = min(
                fin + (0.0 if cproc == rec.proc else comm)
                for cproc, fin in sources
            )
            if rec.start < arrival - _tol(arrival):
                problems.append(
                    f"job {rec.job} task {rec.task} starts at "
                    f"{rec.start:.6f} on CPU {rec.proc}, before parent "
                    f"{parent}'s data arrives at {arrival:.6f}"
                )
    return problems


@register_stream_invariant(
    "stream_utilization",
    "per-CPU occupied time never exceeds the horizon (utilization <= 1)",
)
def _stream_utilization(instance, result) -> List[str]:
    problems: List[str] = []
    if result.horizon <= 0.0:
        return problems
    busy = result.busy_times()
    for proc in range(result.n_procs):
        util = busy[proc] / result.horizon
        if util > 1.0 + FEASIBILITY_EPS:
            problems.append(
                f"CPU {proc} utilization {util:.9f} > 1 "
                f"(busy {busy[proc]:.6f} over horizon "
                f"{result.horizon:.6f})"
            )
    return problems


def run_stream_invariants(
    instance,
    result,
    names: Optional[Iterable[str]] = None,
) -> InvariantReport:
    """Run the stream registry against one realized stream.

    Same contract as :func:`run_invariants`: checks run independently,
    counters ``qa/stream_invariant_checks`` /
    ``qa/stream_invariant_violations`` are emitted, and each failing
    invariant raises a ``qa.invariant_violation`` bus event.
    """
    selected = (
        list(names) if names is not None else list(STREAM_INVARIANTS)
    )
    unknown = [n for n in selected if n not in STREAM_INVARIANTS]
    if unknown:
        known = ", ".join(STREAM_INVARIANTS)
        raise KeyError(f"unknown stream invariants {unknown}; known: {known}")
    violations: Dict[str, List[str]] = {}
    bus = obs.get_bus()
    for name in selected:
        problems = STREAM_INVARIANTS[name].check(instance, result)
        if problems:
            violations[name] = problems
            if bus.active:
                bus.emit(
                    "qa.invariant_violation",
                    invariant=name,
                    n_problems=len(problems),
                    first=problems[0],
                )
    obs.count("qa/stream_invariant_checks", len(selected))
    if violations:
        obs.count(
            "qa/stream_invariant_violations",
            sum(len(p) for p in violations.values()),
        )
    return InvariantReport(checked=tuple(selected), violations=violations)

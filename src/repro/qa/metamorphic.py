"""Metamorphic relations: transform the graph, predict the schedule.

Each transform derives a second graph from the first such that *some*
relation between the two schedules is provable without knowing anything
about the scheduler beyond determinism:

* **uniform scaling** -- multiply every computation and communication
  cost by a power of two.  Scaling by a power of two is exact in binary
  floating point and distributes exactly over the sums/maxes every
  list scheduler computes, so the decisions are identical and the
  makespan scales exactly (checked to 1e-9 relative, leaving room for
  the engine's absolute tie-break epsilon);
* **task relabeling** -- permute task ids, carrying rows/edges along.
  Priorities, EFTs and therefore the makespan are label-independent as
  long as priorities are tie-free: continuous random costs make ties
  measure-zero *except* on multi-exit graphs, where OCT-style ranks tie
  at 0 structurally, so the transform only applies to single-exit
  graphs;
* **CPU permutation** -- permute the columns of ``W``.  The EFT vectors
  permute with it, so each task lands on the *mapped* CPU and the
  makespan is unchanged;
* **zero-cost transitive edge** -- add an edge ``u -> v`` with cost 0
  where ``v`` is already a strict descendant of ``u`` at distance >= 2
  and ``u`` is not an entry task (entry status feeds Algorithm 1's
  duplication).  The constraint is implied and the data arrives free no
  later than any existing path delivers it, so ranks, levels, OCTs,
  EFTs -- and the makespan -- are unchanged;
* **CCR rescaling** -- multiply every communication cost by ``k >= 1``
  and *replay the first schedule's queues* on the dearer graph: with
  placements and per-CPU orders fixed, start times are monotone in
  communication delays, so the simulated makespan can only grow.

``run_metamorphic`` schedules the base graph once, then applies each
transform and checks its relation; any violated relation is a real bug
in the scheduler, an engine fast path, or the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = [
    "MetamorphicResult",
    "DEFAULT_TRANSFORMS",
    "run_metamorphic",
    "schedule_signature",
    "UniformScaling",
    "TaskRelabeling",
    "CpuPermutation",
    "ZeroCostEdgeInsertion",
    "CcrRescale",
]

#: relation tolerance: relative, far above float noise, far below any
#: real scheduling difference
REL_TOL = 1e-9

Derived = Optional[Tuple[TaskGraph, Any]]


def schedule_signature(schedule: Schedule):
    """Every committed copy of every task, exact floats."""
    sig = {}
    for task in schedule.graph.tasks():
        copies = schedule.copies(task)
        if copies:
            sig[task] = tuple(
                sorted((c.proc, c.start, c.finish, c.duplicate) for c in copies)
            )
    return sig


def _arrays(graph: TaskGraph):
    return (
        graph.cost_matrix().copy(),
        [(e.src, e.dst, e.cost) for e in graph.edges()],
    )


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=REL_TOL)


class UniformScaling:
    """Scale all costs by a power of two; decisions must not move."""

    def __init__(self, factor: float = 2.0) -> None:
        mantissa, _ = math.frexp(factor)
        if mantissa != 0.5:
            raise ValueError(
                f"factor must be a power of two for exact float scaling, "
                f"got {factor}"
            )
        self.factor = factor
        self.name = f"scale_x{factor:g}"

    def derive(self, graph: TaskGraph, rng: np.random.Generator) -> Derived:
        """Both cost arrays times the (power-of-two) factor."""
        costs, edges = _arrays(graph)
        scaled = [(u, v, c * self.factor) for u, v, c in edges]
        return TaskGraph.from_arrays(costs * self.factor, scaled), None

    def check(
        self,
        graph: TaskGraph,
        schedule: Schedule,
        graph2: TaskGraph,
        schedule2: Schedule,
        aux: Any,
    ) -> List[str]:
        """Makespan scales exactly; no task changes CPU."""
        problems = []
        want = schedule.makespan * self.factor
        if not _isclose(schedule2.makespan, want):
            problems.append(
                f"makespan {schedule2.makespan!r} != scaled makespan {want!r}"
            )
        moved = [
            t
            for t in graph.tasks()
            if schedule.proc_of(t) != schedule2.proc_of(t)
        ]
        if moved:
            problems.append(
                f"{len(moved)} tasks changed CPU under pure cost scaling "
                f"(first: task {moved[0]})"
            )
        return problems


class TaskRelabeling:
    """Permute task ids; the makespan is label-independent.

    Only sound for schedulers whose priorities are tie-free on
    continuous random costs.  Two registry families tie *structurally*
    and are excluded: CPOP (every critical-path task has priority
    ``rank_u + rank_d`` = the critical-path length, exactly), and
    OCT-driven PEFT (when the same-CPU term dominates the OCT
    minimization -- e.g. high CCR -- co-parents of a single-successor
    child get bit-identical OCT rows).  Their id-order tie-breaks are
    documented algorithm behaviour, not bugs.
    """

    name = "task_relabeling"

    #: registry-name prefixes whose priorities tie structurally
    TIE_PRONE = ("PEFT", "CPOP")

    def applies_to(self, scheduler_name: str) -> bool:
        """False for schedulers whose priorities tie structurally."""
        upper = scheduler_name.upper()
        return not any(upper.startswith(p) for p in self.TIE_PRONE)

    def derive(self, graph: TaskGraph, rng: np.random.Generator) -> Derived:
        """A random id permutation (skipped when ties are possible)."""
        n = graph.n_tasks
        if n < 3:
            return None
        # the relation is only sound when priorities are tie-free.  With
        # continuous random costs ties are measure-zero EXCEPT the
        # structural ones: every task whose paths to the exit are all
        # zero-cost (the exits themselves, and real tasks feeding only a
        # normalization pseudo exit) has an all-zero OCT row, so
        # OCT-style ranks tie at 0 and selection order among them is
        # id-dependent by design.  Skip graphs with two or more such
        # tasks.
        from repro.model.ranking import optimistic_cost_table

        table = optimistic_cost_table(graph)
        zero_rows = sum(
            1 for t in graph.tasks() if not np.any(np.asarray(table[t]))
        )
        if zero_rows > 1:
            return None
        perm = rng.permutation(n)  # perm[old_id] = new_id
        costs, edges = _arrays(graph)
        new_costs = np.empty_like(costs)
        new_costs[perm] = costs
        new_edges = [(int(perm[u]), int(perm[v]), c) for u, v, c in edges]
        return TaskGraph.from_arrays(new_costs, new_edges), perm

    def check(self, graph, schedule, graph2, schedule2, aux) -> List[str]:
        """Makespan must be identical under relabeling."""
        if _isclose(schedule.makespan, schedule2.makespan):
            return []
        return [
            f"relabeled makespan {schedule2.makespan!r} != original "
            f"{schedule.makespan!r}"
        ]


class CpuPermutation:
    """Permute the CPU columns; each task follows its column.

    Assumes continuous (tie-free) costs, like every relation here: on
    integer-cost graphs two CPUs can offer bit-equal EFTs, the argmin
    tie-breaks by processor index, and the permuted run may legitimately
    diverge.  The fuzz generator draws continuous costs, where cross-CPU
    EFT ties are measure-zero.
    """

    name = "cpu_permutation"

    def derive(self, graph: TaskGraph, rng: np.random.Generator) -> Derived:
        """A random column permutation of the cost matrix."""
        p = graph.n_procs
        if p < 2:
            return None
        perm = rng.permutation(p)  # perm[old_proc] = new_proc
        costs, edges = _arrays(graph)
        new_costs = np.empty_like(costs)
        new_costs[:, perm] = costs
        return TaskGraph.from_arrays(new_costs, edges), perm

    def check(self, graph, schedule, graph2, schedule2, aux) -> List[str]:
        """Same makespan; tie-free tasks follow their column."""
        perm = aux
        problems = []
        if not _isclose(schedule.makespan, schedule2.makespan):
            problems.append(
                f"CPU-permuted makespan {schedule2.makespan!r} != original "
                f"{schedule.makespan!r}"
            )
        # only tasks whose cost row is tie-free must follow their column:
        # a tied row (e.g. the zero-cost pseudo entry/exit from
        # normalization) leaves the argmin to index order, which the
        # permutation legitimately reshuffles
        costs = graph.cost_matrix()
        strays = [
            t
            for t in graph.tasks()
            if len(set(costs[t])) == graph.n_procs
            and schedule2.proc_of(t) != int(perm[schedule.proc_of(t)])
        ]
        if strays:
            problems.append(
                f"{len(strays)} tasks did not follow their permuted CPU "
                f"(first: task {strays[0]})"
            )
        return problems


class ZeroCostEdgeInsertion:
    """Add an implied zero-cost edge; nothing may change."""

    name = "zero_cost_edge"

    def derive(self, graph: TaskGraph, rng: np.random.Generator) -> Derived:
        """One implied (distance >= 2) edge added at zero cost."""
        # v strictly beyond u's direct successors (path length >= 2)
        candidates: List[Tuple[int, int]] = []
        for u in graph.tasks():
            if graph.in_degree(u) == 0:
                continue  # entry status feeds Algorithm 1 duplication
            beyond: set = set()
            frontier = list(graph.successors(u))
            while frontier:
                node = frontier.pop()
                for nxt in graph.successors(node):
                    if nxt not in beyond:
                        beyond.add(nxt)
                        frontier.append(nxt)
            for v in beyond:
                if not graph.has_edge(u, v):
                    candidates.append((u, v))
        if not candidates:
            return None
        u, v = candidates[int(rng.integers(len(candidates)))]
        costs, edges = _arrays(graph)
        edges.append((u, v, 0.0))
        return TaskGraph.from_arrays(costs, edges), (u, v)

    def check(self, graph, schedule, graph2, schedule2, aux) -> List[str]:
        """Makespan must be untouched by the implied edge."""
        if _isclose(schedule.makespan, schedule2.makespan):
            return []
        u, v = aux
        return [
            f"implied zero-cost edge {u}->{v} moved the makespan: "
            f"{schedule2.makespan!r} != {schedule.makespan!r}"
        ]


class CcrRescale:
    """Scale communication up; replaying fixed queues can only slow down."""

    def __init__(self, factor: float = 2.0) -> None:
        if factor < 1.0:
            raise ValueError("monotonicity needs factor >= 1")
        self.factor = factor
        self.name = f"ccr_x{factor:g}"

    def derive(self, graph: TaskGraph, rng: np.random.Generator) -> Derived:
        """Every communication cost scaled up by the factor."""
        if graph.n_edges == 0:
            return None
        return graph.scaled_comm(self.factor), None

    def check(self, graph, schedule, graph2, schedule2, aux) -> List[str]:
        """Replaying schedule1's queues on graph2 cannot speed up."""
        from repro.schedule.simulator import ScheduleSimulator

        base_sim = ScheduleSimulator(graph)
        queues = base_sim._extract_queues(schedule)
        before = base_sim.run_queues(queues).makespan
        after = ScheduleSimulator(graph2).run_queues(queues).makespan
        if after < before - REL_TOL * (1.0 + abs(before)):
            return [
                f"replaying the same queues with comm x{self.factor:g} "
                f"*improved* the makespan: {after!r} < {before!r}"
            ]
        return []


def _default_transforms() -> Tuple:
    return (
        UniformScaling(2.0),
        UniformScaling(0.5),
        TaskRelabeling(),
        CpuPermutation(),
        ZeroCostEdgeInsertion(),
        CcrRescale(2.0),
    )


#: the standard battery applied by the fuzz campaign
DEFAULT_TRANSFORMS: Tuple = _default_transforms()


@dataclass
class MetamorphicResult:
    """One transform applied (or skipped) against one scheduler run."""

    transform: str
    applied: bool
    problems: List[str]

    @property
    def ok(self) -> bool:
        return not self.problems


def run_metamorphic(
    scheduler_factory: Callable[[], Any],
    graph: TaskGraph,
    rng: np.random.Generator,
    transforms: Optional[Sequence] = None,
    scheduler_name: Optional[str] = None,
) -> List[MetamorphicResult]:
    """Apply every transform to ``graph`` under one scheduler.

    ``scheduler_factory`` must return a *fresh* scheduler per call
    (schedulers may keep per-run state).  Transforms that do not apply
    to this graph (no eligible edge, single CPU, ...) or to this
    scheduler (pass ``scheduler_name`` to let tie-sensitive transforms
    exempt structurally tie-prone algorithms) are reported with
    ``applied=False`` rather than skipped silently.
    """
    battery = DEFAULT_TRANSFORMS if transforms is None else transforms
    base = scheduler_factory()
    prepared = base.prepare(graph)
    schedule = base.build_schedule(prepared)
    results: List[MetamorphicResult] = []
    for transform in battery:
        applies = getattr(transform, "applies_to", None)
        if (
            scheduler_name is not None
            and applies is not None
            and not applies(scheduler_name)
        ):
            results.append(MetamorphicResult(transform.name, False, []))
            continue
        derived = transform.derive(prepared, rng)
        if derived is None:
            results.append(MetamorphicResult(transform.name, False, []))
            continue
        graph2, aux = derived
        follower = scheduler_factory()
        schedule2 = follower.build_schedule(follower.prepare(graph2))
        problems = transform.check(prepared, schedule, graph2, schedule2, aux)
        results.append(MetamorphicResult(transform.name, True, problems))
    obs.count("qa/metamorphic_runs")
    failed = sum(1 for r in results if not r.ok)
    if failed:
        obs.count("qa/metamorphic_violations", failed)
    return results

"""The golden schedule corpus: JSONL reproducers replayed by pytest.

Every failure the fuzz campaign catches is shrunk and appended here as a
concrete graph (stored via :mod:`repro.io.json_io`, *not* as a generator
seed, so a numpy upgrade cannot silently change the instance).  The
normal test suite replays every entry on every run, which turns each
caught bug into a permanent regression test.

Three entry kinds:

* ``violation`` -- a (graph, scheduler, combo) that once violated an
  invariant; replay re-runs the full invariant registry and must come
  back clean;
* ``golden`` -- a graph with pinned expected makespans per scheduler;
  replay rebuilds each schedule and compares makespans to 1e-9 relative
  tolerance (plus the invariant registry);
* ``online_offline`` -- a graph on which the online executor's realized
  makespan must equal offline HDLTS's analytic one (the PR 1
  entry-duplication regression family);
* ``stream`` -- a fully materialized job-stream workload (jobs,
  arrivals, realized durations in ``expected["stream"]``); replay
  re-executes the pinned policy through the arena, runs the stream
  invariant registry, optionally re-asserts the single-job rate->0
  differential against ``OnlineHDLTS``/``replay_static``
  (``expected["differential"]``), and checks a pinned horizon.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.io.json_io import graph_from_dict
from repro.model.task_graph import TaskGraph

__all__ = ["CorpusEntry", "append_entries", "read_corpus", "replay_entry"]

#: relative tolerance for pinned golden makespans -- much tighter than
#: the feasibility epsilon because replays recompute the *same* floats
REL_TOL = 1e-9

KINDS = ("violation", "golden", "online_offline", "stream")


@dataclass
class CorpusEntry:
    """One replayable reproducer."""

    kind: str
    id: str
    graph: Dict
    scheduler: Optional[str] = None
    compiled: Optional[bool] = None
    engine: Optional[str] = None
    source: str = ""
    #: the problems observed when the entry was captured (context only;
    #: replay recomputes from scratch)
    problems: List[str] = field(default_factory=list)
    #: kind-specific expectations, e.g. ``{"makespans": {"HDLTS": 73.0}}``
    expected: Dict = field(default_factory=dict)
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown corpus kind {self.kind!r}; known: {KINDS}")

    def to_dict(self) -> Dict:
        """JSON-ready form; unset optional fields are omitted."""
        data = {"kind": self.kind, "id": self.id, "graph": self.graph}
        for key in ("scheduler", "compiled", "engine"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        for key in ("source", "note"):
            if getattr(self, key):
                data[key] = getattr(self, key)
        if self.problems:
            data["problems"] = self.problems
        if self.expected:
            data["expected"] = self.expected
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CorpusEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            id=data["id"],
            graph=data["graph"],
            scheduler=data.get("scheduler"),
            compiled=data.get("compiled"),
            engine=data.get("engine"),
            source=data.get("source", ""),
            problems=list(data.get("problems", [])),
            expected=dict(data.get("expected", {})),
            note=data.get("note", ""),
        )

    def load_graph(self) -> TaskGraph:
        """The entry's concrete task graph, rebuilt from JSON data."""
        return graph_from_dict(self.graph)


def append_entries(
    path: Union[str, Path], entries: Iterable[CorpusEntry]
) -> int:
    """Append entries to a JSONL corpus file; returns how many."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_corpus(path: Union[str, Path]) -> List[CorpusEntry]:
    """All entries of one JSONL corpus file (missing file = empty)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(CorpusEntry.from_dict(json.loads(line)))
    return entries


def _build(entry: CorpusEntry, graph: TaskGraph, scheduler_name: str):
    """(prepared graph, schedule) under the entry's recorded combo."""
    from repro.baselines.registry import make_scheduler
    from repro.model.compiled import compiled_enabled, use_compiled

    scheduler = make_scheduler(scheduler_name)
    if entry.engine is not None and hasattr(scheduler, "engine"):
        scheduler.engine = entry.engine
    compiled = entry.compiled if entry.compiled is not None else compiled_enabled()
    with use_compiled(compiled):
        prepared = scheduler.prepare(graph)
        schedule = scheduler.build_schedule(prepared)
    return prepared, schedule


def replay_entry(entry: CorpusEntry) -> List[str]:
    """Re-run the entry's scenario; list every present-day problem.

    An empty list means the corpus entry replays clean (the bug it
    captured stays fixed / the pinned behaviour still holds).
    """
    from repro.qa.invariants import invariants_for, run_invariants

    graph = entry.load_graph()
    problems: List[str] = []

    if entry.kind == "violation":
        scheduler = entry.scheduler or "HDLTS"
        try:
            prepared, schedule = _build(entry, graph, scheduler)
        except Exception as err:
            return [f"{scheduler} failed to build: {err!r}"]
        report = run_invariants(prepared, schedule, invariants_for(scheduler))
        problems.extend(f"{scheduler}: {p}" for p in report.all_problems())

    elif entry.kind == "golden":
        expected = entry.expected.get("makespans", {})
        if not expected:
            return [f"golden entry {entry.id} pins no makespans"]
        for name, want in expected.items():
            try:
                prepared, schedule = _build(entry, graph, name)
            except Exception as err:
                problems.append(f"{name} failed to build: {err!r}")
                continue
            got = schedule.makespan
            if not math.isclose(got, want, rel_tol=REL_TOL, abs_tol=REL_TOL):
                problems.append(
                    f"{name} makespan {got!r} != pinned {want!r}"
                )
            report = run_invariants(prepared, schedule, invariants_for(name))
            problems.extend(f"{name}: {p}" for p in report.all_problems())

    elif entry.kind == "online_offline":
        from repro.baselines.registry import make_scheduler
        from repro.dynamic.online import OnlineHDLTS

        offline = make_scheduler(entry.scheduler or "HDLTS")
        prepared = offline.prepare(graph)
        schedule = offline.build_schedule(prepared)
        online = OnlineHDLTS().execute(graph)
        if not math.isclose(
            online.makespan, schedule.makespan, rel_tol=REL_TOL, abs_tol=REL_TOL
        ):
            problems.append(
                f"online makespan {online.makespan!r} != offline "
                f"{schedule.makespan!r}"
            )
        pinned = entry.expected.get("makespan")
        if pinned is not None and not math.isclose(
            schedule.makespan, pinned, rel_tol=REL_TOL, abs_tol=REL_TOL
        ):
            problems.append(
                f"offline makespan {schedule.makespan!r} != pinned {pinned!r}"
            )
        report = run_invariants(prepared, schedule)
        problems.extend(report.all_problems())

    elif entry.kind == "stream":
        problems.extend(_replay_stream(entry))

    return problems


def _replay_stream(entry: CorpusEntry) -> List[str]:
    """Replay a pinned job-stream workload through the arena."""
    from repro.qa.invariants import run_stream_invariants
    from repro.stream.arena import run_stream
    from repro.stream.spec import instance_from_dict

    data = entry.expected.get("stream")
    if not data:
        return [f"stream entry {entry.id} pins no instance"]
    instance = instance_from_dict(data)
    policy = entry.scheduler or "OnlineHDLTS"
    problems: List[str] = []
    try:
        result = run_stream(instance, policy)
    except Exception as err:
        return [f"{policy} stream replay failed: {err!r}"]
    report = run_stream_invariants(instance, result)
    problems.extend(f"{policy}: {p}" for p in report.all_problems())

    pinned = entry.expected.get("horizon")
    if pinned is not None and not math.isclose(
        result.horizon, pinned, rel_tol=REL_TOL, abs_tol=REL_TOL
    ):
        problems.append(
            f"{policy} horizon {result.horizon!r} != pinned {pinned!r}"
        )

    # single-job rate->0 differential: the arena must reproduce the
    # offline executors bit-for-bit on a lone job arriving at time zero
    if entry.expected.get("differential") and len(instance.jobs) == 1:
        job = instance.jobs[0]
        if job.arrival != 0.0:
            problems.append(
                "differential pinned but the lone job arrives at "
                f"{job.arrival!r}, not 0.0"
            )
        else:
            problems.extend(
                _stream_differential(instance, policy, result)
            )
    return problems


def _stream_differential(instance, policy: str, result) -> List[str]:
    """Compare a single-job arena run against the offline executors."""
    from repro.baselines.registry import make_scheduler
    from repro.dynamic.online import OnlineHDLTS, OnlineRecord, replay_static
    from repro.stream.arena import STATIC_PREFIX

    job = instance.jobs[0]
    duration_fn = job.duration_fn()
    if policy.startswith(STATIC_PREFIX):
        scheduler = make_scheduler(policy[len(STATIC_PREFIX):])
        schedule = scheduler.run(job.graph).schedule
        reference = replay_static(job.graph, schedule, duration_fn)
    else:
        reference = OnlineHDLTS().execute(job.graph, duration_fn)
    got = [
        OnlineRecord(r.task, r.proc, r.start, r.finish, r.duplicate, r.lost)
        for r in result.records
    ]
    problems: List[str] = []
    if got != reference.records:
        problems.append(
            f"{policy} single-job records diverge from the offline "
            f"executor ({len(got)} vs {len(reference.records)} dispatches)"
        )
    finish = result.jobs[0].finish
    if not math.isclose(
        finish - job.arrival,
        reference.makespan,
        rel_tol=REL_TOL,
        abs_tol=REL_TOL,
    ):
        problems.append(
            f"{policy} single-job makespan {finish!r} != offline "
            f"{reference.makespan!r}"
        )
    return problems

"""Lookahead HEFT (Bittencourt, Sakellariou & Madeira, PDP 2010).

Extension baseline: HEFT's priority phase is unchanged, but CPU
selection looks one step ahead -- for each candidate CPU ``p``, the
task is *tentatively* placed on ``p`` and every child's best-case EFT
is computed against that tentative state; the CPU minimizing the worst
child EFT (falling back to the task's own EFT for exit tasks) wins.
This trades a factor O(P * deg) of extra work for the global awareness
HDLTS's purely local penalty value lacks.
"""

from __future__ import annotations

from repro.baselines.common import est_eft, precedence_safe_order
from repro.core.base import Scheduler
from repro.model.ranking import upward_rank
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["LookaheadHEFT"]


class LookaheadHEFT(Scheduler):
    """HEFT with one-level child-EFT lookahead in the CPU selector."""

    name = "LA-HEFT"

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    def _child_horizon(
        self, schedule: Schedule, graph: TaskGraph, task: int
    ) -> float:
        """Worst best-case child EFT against the tentative schedule.

        Children whose other parents are not yet scheduled are scored
        with the data already available (their missing inputs are the
        same for every candidate CPU, so the comparison stays fair).
        """
        worst = 0.0
        for child in graph.successors(task):
            best_eft = float("inf")
            for proc in graph.procs():
                ready = 0.0
                for parent in graph.predecessors(child):
                    if not schedule.is_scheduled(parent):
                        continue
                    arrival = schedule.arrival_time(parent, child, proc)
                    if arrival > ready:
                        ready = arrival
                start = schedule.timelines[proc].earliest_start(
                    ready, graph.cost(child, proc), self.insertion
                )
                best_eft = min(best_eft, start + graph.cost(child, proc))
            worst = max(worst, best_eft)
        return worst

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` with child-EFT lookahead CPU selection."""
        ranks = upward_rank(graph)
        order = precedence_safe_order(graph, ranks, descending=True)
        schedule = Schedule(graph)
        for task in order:
            best_proc = -1
            best_score = (float("inf"), float("inf"))
            best_start = 0.0
            for proc in graph.procs():
                start, finish = est_eft(schedule, task, proc, self.insertion)
                tentative = schedule.place(task, proc, start)
                horizon = (
                    self._child_horizon(schedule, graph, task)
                    if graph.out_degree(task)
                    else finish
                )
                schedule.unplace(task)
                score = (horizon, finish)  # tie-break on own EFT
                if score < best_score:
                    best_score = score
                    best_proc = proc
                    best_start = start
                del tentative
            schedule.place(task, best_proc, best_start)
        return schedule

"""CPOP -- Critical Path On a Processor (Topcuoglu et al., 2002).

Priority of a task is ``rank_u + rank_d``; the critical path is the
entry-to-exit chain whose every task carries the entry's priority.  All
critical-path tasks are pinned to the single CPU that minimizes the CP's
total computation time; every other task goes to its min-EFT CPU.  Tasks
are consumed from a ready queue in priority order (the original paper's
formulation), so the algorithm is precedence-safe by construction.

Canonical makespan on the paper's Fig. 1 graph: 86.
"""

from __future__ import annotations

import heapq
from typing import List, Set

import numpy as np

from repro.baselines.common import place_min_eft
from repro.core.base import Scheduler
from repro.core.itq import IndependentTaskQueue
from repro.model.ranking import downward_rank, upward_rank
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["CPOP"]

_TOL = 1e-9


class CPOP(Scheduler):
    """Critical-Path-On-a-Processor scheduler."""

    name = "CPOP"
    requires_single_exit = True

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    # ------------------------------------------------------------------
    def critical_path(self, graph: TaskGraph, priority: np.ndarray) -> List[int]:
        """Walk the critical path from the entry by following the child
        that preserves the entry's priority value."""
        entry = graph.entry_task
        cp_value = priority[entry]
        path = [entry]
        current = entry
        while graph.successors(current):
            candidates = [
                s
                for s in graph.successors(current)
                if abs(priority[s] - cp_value) <= _TOL * max(1.0, cp_value)
            ]
            if not candidates:
                # numeric slack: fall back to the highest-priority child
                candidates = [
                    max(graph.successors(current), key=lambda s: priority[s])
                ]
            current = min(candidates)  # deterministic among equals
            path.append(current)
        return path

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` with the CPOP policy."""
        rank_up = upward_rank(graph)
        rank_down = downward_rank(graph)
        priority = rank_up + rank_down

        cp_tasks: Set[int] = set(self.critical_path(graph, priority))
        w = graph.cost_matrix()
        cp_cost = w[sorted(cp_tasks)].sum(axis=0)
        cp_proc = int(np.argmin(cp_cost))

        schedule = Schedule(graph)
        itq = IndependentTaskQueue(graph)
        heap: List[tuple] = []
        for task in itq.ready_tasks():
            heapq.heappush(heap, (-priority[task], task))
        while heap:
            _, task = heapq.heappop(heap)
            if task in cp_tasks:
                place_min_eft(
                    schedule, task, insertion=self.insertion, procs=[cp_proc]
                )
            else:
                place_min_eft(schedule, task, insertion=self.insertion)
            for released in itq.complete(task):
                heapq.heappush(heap, (-priority[released], released))
        return schedule

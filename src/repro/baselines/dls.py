"""DLS -- Dynamic Level Scheduling (Sih & Lee, TPDS 1993).

An extension baseline (not in the paper's comparison set, but the
closest prior *dynamic* list scheduler to HDLTS): at every step DLS
examines all (ready task, CPU) pairs and commits the pair with the
highest **dynamic level**

    DL(t, p) = SL(t) - max(data_ready(t, p), avail(p)) + Delta(t, p)

where ``SL`` is the static level (mean-cost upward rank *without*
communication) and ``Delta(t, p) = mean_w(t) - w(t, p)`` rewards CPUs
that are fast for this particular task.  Like HDLTS it reacts to live
platform state; unlike HDLTS it folds task urgency (SL) and CPU
affinity (Delta) into one score instead of separating prioritization
from CPU selection.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.core.itq import IndependentTaskQueue
from repro.model.attributes import mean_execution_times
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["DLS"]


class DLS(Scheduler):
    """Dynamic Level Scheduling."""

    name = "DLS"

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    def static_levels(self, graph: TaskGraph) -> np.ndarray:
        """Mean-cost longest path to the exit, communication excluded."""
        mean_w = mean_execution_times(graph)
        levels = np.zeros(graph.n_tasks)
        for task in reversed(graph.topological_order()):
            best = 0.0
            for succ in graph.successors(task):
                if levels[succ] > best:
                    best = levels[succ]
            levels[task] = mean_w[task] + best
        return levels

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` by maximizing the dynamic level each step."""
        sl = self.static_levels(graph)
        mean_w = mean_execution_times(graph)
        w = graph.cost_matrix()
        schedule = Schedule(graph)
        itq = IndependentTaskQueue(graph)

        while itq:
            best = None  # (dl, -task, -proc) maximized; ties -> low ids
            for task in itq.ready_tasks():
                for proc in graph.procs():
                    ready = schedule.ready_time(task, proc)
                    start = schedule.timelines[proc].earliest_start(
                        ready, w[task, proc], self.insertion
                    )
                    dl = sl[task] - start + (mean_w[task] - w[task, proc])
                    key = (dl, -task, -proc)
                    if best is None or key > best[0]:
                        best = (key, task, proc, start)
            assert best is not None
            _, task, proc, start = best
            schedule.place(task, proc, start)
            itq.complete(task)
        return schedule

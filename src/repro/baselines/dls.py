"""DLS -- Dynamic Level Scheduling (Sih & Lee, TPDS 1993).

An extension baseline (not in the paper's comparison set, but the
closest prior *dynamic* list scheduler to HDLTS): at every step DLS
examines all (ready task, CPU) pairs and commits the pair with the
highest **dynamic level**

    DL(t, p) = SL(t) - max(data_ready(t, p), avail(p)) + Delta(t, p)

where ``SL`` is the static level (mean-cost upward rank *without*
communication) and ``Delta(t, p) = mean_w(t) - w(t, p)`` rewards CPUs
that are fast for this particular task.  Like HDLTS it reacts to live
platform state; unlike HDLTS it folds task urgency (SL) and CPU
affinity (Delta) into one score instead of separating prioritization
from CPU selection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import make_engine
from repro.core.base import Scheduler
from repro.core.itq import IndependentTaskQueue
from repro.model.attributes import mean_execution_times
from repro.model.task_graph import TaskGraph
from repro.runtime.context import resolve_engine
from repro.schedule.schedule import Schedule

__all__ = ["DLS"]


class DLS(Scheduler):
    """Dynamic Level Scheduling."""

    name = "DLS"

    def __init__(
        self, insertion: bool = True, engine: Optional[str] = None
    ) -> None:
        self.insertion = insertion
        self.engine = resolve_engine(engine)

    def static_levels(self, graph: TaskGraph) -> np.ndarray:
        """Mean-cost longest path to the exit, communication excluded."""
        mean_w = mean_execution_times(graph)
        levels = np.zeros(graph.n_tasks)
        for task in reversed(graph.topological_order()):
            best = 0.0
            for succ in graph.successors(task):
                if levels[succ] > best:
                    best = levels[succ]
            levels[task] = mean_w[task] + best
        return levels

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` by maximizing the dynamic level each step."""
        sl = self.static_levels(graph)
        mean_w = mean_execution_times(graph)
        w = graph.cost_matrix()
        schedule = Schedule(graph)
        engine = make_engine(schedule, self.engine)
        itq = IndependentTaskQueue(graph)

        while itq:
            if engine is not None:
                # vectorized per task: one ready vector from the engine's
                # incremental arrays, then DL over all CPUs at once.  The
                # reference tie-break -- maximize (dl, -task, -proc) -- is
                # first-max within a task (argmax) and strict improvement
                # across ascending task ids.
                best = None  # (dl, task, proc, start)
                for task in itq.ready_tasks():
                    ready_vec = engine.ready_vector(task)
                    starts = np.array(
                        [
                            schedule.timelines[proc].earliest_start_fast(
                                float(ready_vec[proc]),
                                w[task, proc],
                                self.insertion,
                            )
                            for proc in graph.procs()
                        ]
                    )
                    dl = sl[task] - starts + (mean_w[task] - w[task])
                    proc = int(np.argmax(dl))
                    if best is None or dl[proc] > best[0]:
                        best = (float(dl[proc]), task, proc, float(starts[proc]))
                assert best is not None
                _, task, proc, start = best
                engine.notify(schedule.place(task, proc, start))
            else:
                best = None  # (dl, -task, -proc) maximized; ties -> low ids
                for task in itq.ready_tasks():
                    for proc in graph.procs():
                        ready = schedule.ready_time(task, proc)
                        start = schedule.timelines[proc].earliest_start(
                            ready, w[task, proc], self.insertion
                        )
                        dl = sl[task] - start + (mean_w[task] - w[task, proc])
                        key = (dl, -task, -proc)
                        if best is None or key > best[0]:
                            best = (key, task, proc, start)
                assert best is not None
                _, task, proc, start = best
                schedule.place(task, proc, start)
            itq.complete(task)
        return schedule

"""PEFT -- Predict Earliest Finish Time (Arabnejad & Barbosa, 2014).

The Optimistic Cost Table ``OCT(t, p)`` is the optimistic remaining
path-to-exit cost of running ``t`` on ``p`` (Definition in
:func:`repro.model.ranking.optimistic_cost_table`).  Tasks are consumed
from a ready list in decreasing ``rank_oct`` (the OCT row mean); the CPU
is chosen to minimize the *optimistic* EFT ``O_EFT = EFT + OCT`` -- the
look-ahead that distinguishes PEFT from HEFT -- while the task still
starts at its true EST on the chosen CPU.  Complexity O(V^2 * P).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.baselines.common import make_engine, place_min_eft
from repro.core.base import Scheduler
from repro.core.itq import IndependentTaskQueue
from repro.model.ranking import oct_rank, optimistic_cost_table
from repro.model.task_graph import TaskGraph
from repro.runtime.context import resolve_engine
from repro.schedule.schedule import Schedule

__all__ = ["PEFT"]


class PEFT(Scheduler):
    """Look-ahead list scheduler driven by the Optimistic Cost Table."""

    name = "PEFT"

    def __init__(
        self, insertion: bool = True, engine: Optional[str] = None
    ) -> None:
        self.insertion = insertion
        self.engine = resolve_engine(engine)

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` with the OCT-driven PEFT policy."""
        table = optimistic_cost_table(graph)
        rank = oct_rank(graph, table)

        schedule = Schedule(graph)
        engine = make_engine(schedule, self.engine)
        # bind the fused compiled-path placement once per build
        place_best = getattr(engine, "place_best", None)
        insertion = self.insertion
        itq = IndependentTaskQueue(graph)
        heap: List[tuple] = []
        for task in itq.ready_tasks():
            heapq.heappush(heap, (-rank[task], task))
        while heap:
            _, task = heapq.heappop(heap)
            row = table[task]
            objective = lambda proc, eft, row=row: eft + row[proc]
            if place_best is not None:
                place_best(task, insertion, objective)
            else:
                place_min_eft(
                    schedule,
                    task,
                    insertion=insertion,
                    objective=objective,
                    engine=engine,
                )
            for released in itq.complete(task):
                heapq.heappush(heap, (-rank[released], released))
        return schedule

"""EFT machinery shared by the static-list baselines.

Every baseline maps the next task in its priority order to the CPU
minimizing an EFT-derived objective.  These helpers compute EST/EFT
against the live schedule (Definitions 5-7) with optional HEFT-style
insertion, and commit the placement.

When an :class:`~repro.core.engine.EFTEngine` is passed, the ready-time
computation runs vectorized from the engine's incremental per-task
arrival arrays instead of the per-CPU Python loops -- bit-identical
results (the engine maintains exactly the quantities the loops
recompute), one vectorized pass per task instead of one parent x copy
scan per CPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.model.task_graph import TaskGraph
from repro.runtime.context import ENGINE_CHOICES, resolve_engine
from repro.schedule.schedule import Assignment, Schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.engine import EFTEngine

__all__ = [
    "ENGINE_CHOICES",
    "est_eft",
    "eft_vector",
    "make_engine",
    "place_min_eft",
    "precedence_safe_order",
]


def make_engine(schedule: Schedule, engine: Optional[str] = None):
    """Resolve a baseline's ``engine=`` parameter to an engine (or None).

    ``None`` defers to the active run context.  ``"fast"`` builds an
    EFT engine over the (possibly pre-populated) schedule -- the scalar
    :class:`~repro.core.engine.StaticEFTEngine` over the compiled graph
    when the compiled layer is enabled, the vectorized
    :class:`~repro.core.engine.EFTEngine` otherwise (both are
    bit-identical); ``"reference"`` selects the original scalar code
    path.
    """
    engine = resolve_engine(engine)
    if engine == "reference":
        return None
    from repro.core.engine import EFTEngine, StaticEFTEngine
    from repro.model.compiled import compiled_enabled

    if compiled_enabled():
        return StaticEFTEngine(schedule)
    return EFTEngine(schedule)


def est_eft(
    schedule: Schedule, task: int, proc: int, insertion: bool = True
) -> Tuple[float, float]:
    """(EST, EFT) of ``task`` on ``proc`` against the current schedule."""
    ready = schedule.ready_time(task, proc)
    duration = schedule.graph.cost(task, proc)
    start = schedule.timelines[proc].earliest_start(ready, duration, insertion)
    return start, start + duration


def eft_vector(
    schedule: Schedule, task: int, insertion: bool = True
) -> np.ndarray:
    """EFT of ``task`` on every CPU."""
    graph = schedule.graph
    out = np.empty(graph.n_procs)
    for proc in graph.procs():
        out[proc] = est_eft(schedule, task, proc, insertion)[1]
    # attributed to whichever scheduler's run phase we execute inside
    obs.scoped_count("eft_evaluations", graph.n_procs)
    return out


def place_min_eft(
    schedule: Schedule,
    task: int,
    insertion: bool = True,
    procs: Optional[Iterable[int]] = None,
    objective: Optional[Callable[[int, float], float]] = None,
    engine: Optional["EFTEngine"] = None,
) -> Assignment:
    """Commit ``task`` to the CPU minimizing EFT (or a custom objective).

    ``objective(proc, eft) -> score`` lets PEFT minimize ``EFT + OCT``
    while still *starting* the task at its true EST.  Ties break toward
    the lowest CPU index.  With ``engine`` the EST/EFT vectors come from
    the incremental arrays; the selection loop is unchanged so the
    tie-break semantics (strict 1e-12 improvement) stay bit-identical.
    """
    if procs is None and engine is not None:
        place_best = getattr(engine, "place_best", None)
        if place_best is not None:
            # the scalar engine fuses EST/EFT, the identical selection
            # loop and the commit into one call frame
            return place_best(task, insertion, objective)
    graph = schedule.graph
    candidates = list(procs) if procs is not None else graph.procs()
    if not len(candidates):
        raise ValueError("no candidate CPUs")
    if engine is not None:
        starts, finishes = engine.est_eft(task, insertion)
    best_proc = -1
    best_score = float("inf")
    best_start = 0.0
    for proc in candidates:
        if engine is not None:
            start, finish = float(starts[proc]), float(finishes[proc])
        else:
            start, finish = est_eft(schedule, task, proc, insertion)
        score = objective(proc, finish) if objective else finish
        if score < best_score - 1e-12:
            best_score = score
            best_proc = proc
            best_start = start
    obs.scoped_count("eft_evaluations", len(candidates))
    obs.scoped_count("decisions")
    assignment = schedule.place(task, best_proc, best_start)
    if engine is not None:
        engine.notify(assignment)
    return assignment


def precedence_safe_order(
    graph: TaskGraph, priority: Sequence[float], descending: bool = True
) -> List[int]:
    """Tasks sorted by priority with topological position as tie-break.

    A static list scheduler must never attempt a child before a parent.
    For well-formed rank functions priority alone guarantees that, but
    zero-cost pseudo tasks can produce exact ties; breaking ties by
    topological position makes the order always precedence-safe without
    altering genuinely ranked decisions.
    """
    from repro.model.compiled import compile_graph, compiled_enabled

    if compiled_enabled():
        # identical to the sorted() below: topological position is a
        # unique secondary key, so the (priority, position) order is
        # total and lexsort reproduces it exactly
        compiled = compile_graph(graph)
        keys = np.asarray(priority, dtype=float)
        if descending:
            keys = -keys
        order = np.lexsort((compiled.topo_position, keys))
        return order.tolist()
    position = {task: i for i, task in enumerate(graph.topological_order())}
    sign = -1.0 if descending else 1.0
    return sorted(
        graph.tasks(), key=lambda t: (sign * priority[t], position[t])
    )

"""Baseline list schedulers the paper compares against.

All five comparison algorithms, implemented from their original papers on
top of the same model/schedule substrate as HDLTS:

* :class:`HEFT`   -- Heterogeneous Earliest Finish Time (Topcuoglu 2002)
* :class:`CPOP`   -- Critical Path on a Processor (Topcuoglu 2002)
* :class:`PETS`   -- Performance Effective Task Scheduling (Ilavarasan 2005)
* :class:`PEFT`   -- Predict(ed) Earliest Finish Time (Arabnejad 2014)
* :class:`SDBATS` -- Standard-Deviation-Based Task Scheduling (Munir 2013)

Interpretation choices for under-specified details are documented in
DESIGN.md ("Baseline interpretation notes").
"""

from repro.baselines.heft import HEFT
from repro.baselines.cpop import CPOP
from repro.baselines.pets import PETS
from repro.baselines.peft import PEFT
from repro.baselines.sdbats import SDBATS
from repro.baselines.dls import DLS
from repro.baselines.lookahead import LookaheadHEFT
from repro.baselines.dheft import DHEFT
from repro.baselines.batch import LevelMinMin, LevelMaxMin
from repro.baselines.randomized import RandomScheduler
from repro.baselines.registry import (
    SCHEDULER_FACTORIES,
    make_scheduler,
    paper_schedulers,
    scheduler_names,
)

__all__ = [
    "HEFT",
    "CPOP",
    "PETS",
    "PEFT",
    "SDBATS",
    "DLS",
    "LookaheadHEFT",
    "DHEFT",
    "LevelMinMin",
    "LevelMaxMin",
    "RandomScheduler",
    "SCHEDULER_FACTORIES",
    "make_scheduler",
    "paper_schedulers",
    "scheduler_names",
]

"""DHEFT -- Duplication-based HEFT (after Zhang, Inoguchi & Shen [23]).

Extension baseline implementing the paper's Section II-B family: HEFT's
rank order, but when evaluating a CPU the scheduler additionally tries
to **duplicate the task's most binding parent** onto that CPU in an
idle window, accepting the copy only when it strictly lowers the task's
EFT there.  Unlike HDLTS (entry task only), any parent may be copied --
the generality the paper calls too costly; the ablation benches let us
quantify that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import precedence_safe_order
from repro.core.base import Scheduler
from repro.model.ranking import upward_rank
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["DHEFT"]


@dataclass(frozen=True)
class _Plan:
    proc: int
    start: float
    finish: float
    dup_parent: Optional[int] = None
    dup_start: float = 0.0


class DHEFT(Scheduler):
    """HEFT with single-parent duplication during CPU selection."""

    name = "DHEFT"

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    # ------------------------------------------------------------------
    def _plan_on(
        self, schedule: Schedule, graph: TaskGraph, task: int, proc: int
    ) -> _Plan:
        """Best plan for ``task`` on ``proc``: plain EFT vs EFT with the
        binding parent duplicated into an idle window."""
        timeline = schedule.timelines[proc]
        duration = graph.cost(task, proc)

        ready = 0.0
        binding = None
        for parent in graph.predecessors(task):
            arrival = schedule.arrival_time(parent, task, proc)
            if arrival > ready:
                ready = arrival
                binding = parent
        start = timeline.earliest_start(ready, duration, self.insertion)
        plain = _Plan(proc, start, start + duration)

        if binding is None or any(
            c.proc == proc for c in schedule.copies(binding)
        ):
            return plain

        # try copying the binding parent onto this CPU: the copy itself
        # must respect *its* parents' data and fit in an idle window
        dup_duration = graph.cost(binding, proc)
        dup_ready = schedule.ready_time(binding, proc)
        dup_start = timeline.earliest_start(dup_ready, dup_duration, True)
        dup_finish = dup_start + dup_duration
        if not timeline.fits(dup_start, dup_finish):
            return plain

        # with the copy in place, the task's ready time on proc changes
        new_ready = dup_finish
        for parent in graph.predecessors(task):
            if parent == binding:
                continue
            arrival = schedule.arrival_time(parent, task, proc)
            if arrival > new_ready:
                new_ready = arrival
        # the duplicate occupies [dup_start, dup_finish): the task's own
        # slot search must avoid it, so probe on a hypothetical basis
        candidate = max(new_ready, dup_finish)
        new_start = timeline.earliest_start(candidate, duration, self.insertion)
        if new_start + duration < plain.finish - 1e-9 and timeline.fits(
            new_start, new_start + duration
        ):
            return _Plan(
                proc, new_start, new_start + duration, binding, dup_start
            )
        return plain

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` with rank order + parent duplication."""
        ranks = upward_rank(graph)
        order = precedence_safe_order(graph, ranks, descending=True)
        schedule = Schedule(graph)
        for task in order:
            best: Optional[_Plan] = None
            for proc in graph.procs():
                plan = self._plan_on(schedule, graph, task, proc)
                if best is None or plan.finish < best.finish - 1e-12:
                    best = plan
            assert best is not None
            if best.dup_parent is not None:
                schedule.place(
                    best.dup_parent, best.proc, best.dup_start, duplicate=True
                )
                # re-derive the start against the committed state (the
                # duplicate may shift the task into a different window)
                ready = schedule.ready_time(task, best.proc)
                start = schedule.timelines[best.proc].earliest_start(
                    ready, graph.cost(task, best.proc), self.insertion
                )
                schedule.place(task, best.proc, start)
            else:
                schedule.place(task, best.proc, best.start)
        return schedule

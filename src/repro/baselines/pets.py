"""PETS -- Performance Effective Task Scheduling (Ilavarasan et al., 2005).

Three phases: (1) *level sort* groups tasks by precedence level; (2) each
level is prioritized by ``rank = round(ACC + DTC + X)`` where ACC is the
average computation cost, DTC the total data-transfer (outgoing) cost and
``X`` is either

* ``DRC`` -- the maximum data-*receiving* cost (how the HDLTS paper
  describes PETS; our default), or
* ``RPT`` -- the highest rank among immediate predecessors (the original
  PETS paper's attribute; available as ``variant="rpt"``);

(3) tasks are mapped level by level, rank-descending, to the CPU with
minimum insertion-based EFT.  Complexity O((V+E)(P + log V)).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.common import make_engine, place_min_eft
from repro.core.base import Scheduler
from repro.model.attributes import mean_execution_times
from repro.model.compiled import compile_graph, compiled_enabled
from repro.model.levels import level_decomposition
from repro.model.task_graph import TaskGraph
from repro.runtime.context import resolve_engine
from repro.schedule.schedule import Schedule

__all__ = ["PETS"]


class PETS(Scheduler):
    """Level-sorted list scheduler with ACC/DTC/DRC ranks."""

    name = "PETS"

    def __init__(
        self,
        insertion: bool = True,
        variant: str = "drc",
        engine: Optional[str] = None,
    ) -> None:
        if variant not in ("drc", "rpt"):
            raise ValueError(f"variant must be 'drc' or 'rpt', got {variant!r}")
        self.insertion = insertion
        self.variant = variant
        self.engine = resolve_engine(engine)

    # ------------------------------------------------------------------
    def ranks(self, graph: TaskGraph) -> np.ndarray:
        """Compute the PETS rank of every task (level by level)."""
        if compiled_enabled() and self.variant == "drc":
            return self._ranks_compiled(graph)
        acc = mean_execution_times(graph)
        dtc = np.zeros(graph.n_tasks)
        for edge in graph.edges():
            dtc[edge.src] += edge.cost
        rank = np.zeros(graph.n_tasks)
        for level in level_decomposition(graph):
            for task in level:
                if self.variant == "drc":
                    extra = max(
                        (
                            graph.comm_cost(parent, task)
                            for parent in graph.predecessors(task)
                        ),
                        default=0.0,
                    )
                else:  # rpt: predecessors live in earlier levels, already ranked
                    extra = max(
                        (rank[parent] for parent in graph.predecessors(task)),
                        default=0.0,
                    )
                rank[task] = round(acc[task] + dtc[task] + extra)
        return rank

    @staticmethod
    def _ranks_compiled(graph: TaskGraph) -> np.ndarray:
        """CSR form of the drc rank: one reduceat per attribute.

        Bit-identical to the scalar loops: ``np.add.at`` accumulates
        unbuffered in flat CSR order -- the per-source edge insertion
        order ``graph.edges()`` iterates -- and the drc max is an
        order-free reduction.
        """
        compiled = compile_graph(graph)
        acc = compiled.mean_costs()
        dtc = np.zeros(graph.n_tasks)
        counts = np.diff(compiled.succ_indptr)
        src_ids = np.repeat(np.arange(graph.n_tasks), counts)
        np.add.at(dtc, src_ids, compiled.succ_costs)
        drc = np.zeros(graph.n_tasks)
        pred_indptr = compiled.pred_indptr
        has_pred = np.diff(pred_indptr) > 0
        if has_pred.any():
            drc[has_pred] = np.maximum.reduceat(
                compiled.pred_costs, pred_indptr[:-1][has_pred]
            )
        total = acc + dtc + drc
        return np.array([float(round(value)) for value in total])

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` level by level in PETS rank order."""
        rank = self.ranks(graph)
        schedule = Schedule(graph)
        engine = make_engine(schedule, self.engine)
        # bind the fused compiled-path placement once per build
        place_best = getattr(engine, "place_best", None)
        insertion = self.insertion
        for level in level_decomposition(graph):
            # highest rank first; ties by smaller average computation
            # cost, then task id (the paper leaves ties unspecified)
            acc = mean_execution_times(graph)
            ordered: List[int] = sorted(
                level, key=lambda t: (-rank[t], acc[t], t)
            )
            for task in ordered:
                if place_best is not None:
                    place_best(task, insertion)
                else:
                    place_min_eft(
                        schedule, task, insertion=insertion, engine=engine
                    )
        return schedule

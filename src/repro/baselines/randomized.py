"""A uniformly random list scheduler (sanity floor).

Every comparison needs a floor: :class:`RandomScheduler` picks a random
ready task and a random CPU at each step (eager start).  Any heuristic
worth publishing must beat it comfortably; the extended-schedulers
bench and the test suite use it to verify that every real algorithm's
margin over "no policy at all" is large and significant.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.core.itq import IndependentTaskQueue
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Random ready-task, random CPU, eager start times."""

    name = "RAND"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` by uniformly random decisions (seeded)."""
        rng = np.random.default_rng(self.seed)
        schedule = Schedule(graph)
        itq = IndependentTaskQueue(graph)
        while itq:
            ready = itq.ready_tasks()
            task = ready[int(rng.integers(len(ready)))]
            proc = int(rng.integers(graph.n_procs))
            start = schedule.timelines[proc].earliest_start(
                schedule.ready_time(task, proc), graph.cost(task, proc)
            )
            schedule.place(task, proc, start)
            itq.complete(task)
        return schedule

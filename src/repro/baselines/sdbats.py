"""SDBATS -- Standard-Deviation-Based Task Scheduling (Munir et al., 2013).

Identical skeleton to HEFT with two twists taken from the SDBATS paper:

* the upward rank uses the **standard deviation** of each task's
  execution-cost row (its heterogeneity) as the node weight instead of
  the mean -- the same signal HDLTS later turned into its dynamic
  penalty value;
* the **entry task is duplicated** on every CPU at time zero before
  scheduling begins, so each child can read the entry's output locally
  (children still fall back to the cheapest copy automatically).

Mapping is insertion-based min-EFT over the rank-descending static list.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import make_engine, place_min_eft, precedence_safe_order
from repro.core.base import Scheduler
from repro.model.attributes import std_execution_times
from repro.model.ranking import upward_rank
from repro.model.task_graph import TaskGraph
from repro.runtime.context import resolve_engine
from repro.schedule.schedule import Schedule

__all__ = ["SDBATS"]


class SDBATS(Scheduler):
    """Std-deviation-ranked HEFT with full entry-task duplication."""

    name = "SDBATS"

    def __init__(
        self,
        insertion: bool = True,
        duplicate_entry: bool = True,
        engine: Optional[str] = None,
    ) -> None:
        self.insertion = insertion
        self.duplicate_entry = duplicate_entry
        self.engine = resolve_engine(engine)

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` with SDBATS (std ranks + entry duplication)."""
        weights = std_execution_times(graph)
        ranks = upward_rank(graph, weights)
        order = precedence_safe_order(graph, ranks, descending=True)

        schedule = Schedule(graph)
        entry = graph.entry_task
        # the rank-descending order always starts with the entry task
        # (its rank dominates every descendant's); place it on its
        # fastest CPU and mirror it everywhere else.
        first = order[0]
        if first != entry:  # pragma: no cover - rank invariant
            raise AssertionError("entry task must head the static list")
        best_proc = int(np.argmin(graph.cost_row(entry)))
        schedule.place(entry, best_proc, 0.0)
        if self.duplicate_entry and graph.cost_row(entry).max() > 0:
            for proc in graph.procs():
                if proc != best_proc:
                    schedule.place(entry, proc, 0.0, duplicate=True)

        # the engine ingests the entry pre-placement (and its mirrors)
        engine = make_engine(schedule, self.engine)
        # bind the fused compiled-path placement once per build
        place_best = getattr(engine, "place_best", None)
        if place_best is not None:
            insertion = self.insertion
            for task in order[1:]:
                place_best(task, insertion)
        else:
            for task in order[1:]:
                place_min_eft(
                    schedule, task, insertion=self.insertion, engine=engine
                )
        return schedule

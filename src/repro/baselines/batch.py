"""Level-wise batch heuristics: Min-Min and Max-Min (extensions).

Min-Min / Max-Min (Braun et al.'s classic comparison set) schedule
*independent* tasks; the standard DAG adaptation applies them level by
level -- every precedence level is an independent batch, exactly the
level-sort view PETS uses.  Within a batch:

* **Min-Min**: repeatedly commit the (task, CPU) pair with the smallest
  completion time -- short tasks first, tends to balance load;
* **Max-Min**: commit the task whose *best* completion time is largest
  first -- long tasks first, avoids the "everything waits for the last
  big task" tail.

Both use insertion-based EFT against the live schedule, so results are
directly comparable with the list schedulers.  They ignore cross-level
lookahead entirely, which is exactly why they are interesting controls
for HDLTS's ready-list design (HDLTS's ITQ is *also* a batch -- but a
precedence-driven, rolling one).
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.baselines.common import est_eft
from repro.core.base import Scheduler
from repro.model.levels import level_decomposition
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["LevelMinMin", "LevelMaxMin"]


class _LevelBatchScheduler(Scheduler):
    """Shared machinery: iterate levels, commit batch tasks one by one."""

    #: True -> Min-Min (smallest best-EFT first); False -> Max-Min
    pick_smallest: bool = True

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    def _best_plan(
        self, schedule: Schedule, graph: TaskGraph, task: int
    ) -> Tuple[float, int, float]:
        """(EFT, CPU, start) of the task's best CPU right now."""
        best = (float("inf"), -1, 0.0)
        for proc in graph.procs():
            start, finish = est_eft(schedule, task, proc, self.insertion)
            if finish < best[0] - 1e-12:
                best = (finish, proc, start)
        return best

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        schedule = Schedule(graph)
        for level in level_decomposition(graph):
            pending: Set[int] = set(level)
            while pending:
                plans = {
                    task: self._best_plan(schedule, graph, task)
                    for task in pending
                }
                chooser = min if self.pick_smallest else max
                # ties break toward the lower task id for determinism
                task = chooser(
                    sorted(pending), key=lambda t: plans[t][0]
                )
                _, proc, start = plans[task]
                schedule.place(task, proc, start)
                pending.remove(task)
        return schedule


class LevelMinMin(_LevelBatchScheduler):
    """Level-by-level Min-Min."""

    name = "MinMin"
    pick_smallest = True


class LevelMaxMin(_LevelBatchScheduler):
    """Level-by-level Max-Min."""

    name = "MaxMin"
    pick_smallest = False

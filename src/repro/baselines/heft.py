"""HEFT -- Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

Phase 1 ranks every task by the mean-cost upward rank; phase 2 walks the
rank-descending list and commits each task to the CPU with the minimum
insertion-based EFT.  Complexity O(V^2 * P).

On the paper's Fig. 1 graph this implementation produces the canonical
makespan of 80 (asserted by the test suite), matching the HDLTS paper's
in-text claim.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import make_engine, place_min_eft, precedence_safe_order
from repro.core.base import Scheduler
from repro.model.ranking import upward_rank
from repro.model.task_graph import TaskGraph
from repro.runtime.context import resolve_engine
from repro.schedule.schedule import Schedule

__all__ = ["HEFT"]


class HEFT(Scheduler):
    """Classic HEFT with insertion-based CPU selection."""

    name = "HEFT"

    def __init__(
        self, insertion: bool = True, engine: Optional[str] = None
    ) -> None:
        self.insertion = insertion
        self.engine = resolve_engine(engine)

    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Schedule ``graph`` with classic HEFT."""
        ranks = upward_rank(graph)
        order = precedence_safe_order(graph, ranks, descending=True)
        schedule = Schedule(graph)
        engine = make_engine(schedule, self.engine)
        # bind the fused compiled-path placement once per build; the
        # generic helper would re-dispatch to it on every task
        place_best = getattr(engine, "place_best", None)
        if place_best is not None:
            insertion = self.insertion
            for task in order:
                place_best(task, insertion)
        else:
            for task in order:
                place_min_eft(
                    schedule, task, insertion=self.insertion, engine=engine
                )
        return schedule

"""Scheduler registry: name -> factory.

The experiment harness, CLI and benchmarks all resolve algorithms through
this registry so that a figure definition is just a list of names.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.base import Scheduler
from repro.core.hdlts import HDLTS, PriorityRule

__all__ = [
    "SCHEDULER_FACTORIES",
    "make_scheduler",
    "paper_schedulers",
    "scheduler_names",
]


def _genetic() -> Scheduler:
    from repro.genetic.ga import GeneticScheduler

    return GeneticScheduler()


def _clustering() -> Scheduler:
    from repro.clustering.linear import ClusterScheduler

    return ClusterScheduler()


def _random() -> Scheduler:
    from repro.baselines.randomized import RandomScheduler

    return RandomScheduler()


def _factories() -> Dict[str, Callable[[], Scheduler]]:
    from repro.baselines.batch import LevelMaxMin, LevelMinMin
    from repro.baselines.cpop import CPOP
    from repro.baselines.dheft import DHEFT
    from repro.baselines.dls import DLS
    from repro.baselines.heft import HEFT
    from repro.baselines.lookahead import LookaheadHEFT
    from repro.baselines.peft import PEFT
    from repro.baselines.pets import PETS
    from repro.baselines.sdbats import SDBATS

    return {
        "HDLTS": HDLTS,
        "HEFT": HEFT,
        "CPOP": CPOP,
        "PETS": PETS,
        "PEFT": PEFT,
        "SDBATS": SDBATS,
        # extension baselines (Section II families not in the paper's
        # comparison set; see DESIGN.md "extensions")
        "DLS": DLS,
        "LA-HEFT": LookaheadHEFT,
        "DHEFT": DHEFT,
        "GA": _genetic,
        "LC": _clustering,
        "MinMin": LevelMinMin,
        "RAND": _random,
        "MaxMin": LevelMaxMin,
        # ablation variants (DESIGN.md "Ablation benches")
        "HDLTS-reference": lambda: HDLTS(engine="reference"),
        "HDLTS-nodup": lambda: HDLTS(duplicate_entry=False),
        "HDLTS-insertion": lambda: HDLTS(use_insertion=True),
        "HDLTS-range": lambda: HDLTS(priority=PriorityRule.EFT_RANGE),
        "HDLTS-meaneft": lambda: HDLTS(priority=PriorityRule.MEAN_EFT),
        "HDLTS-greedy": lambda: HDLTS(priority=PriorityRule.MIN_EFT_FIRST),
        "HDLTS-rank": lambda: HDLTS(priority=PriorityRule.UPWARD_RANK),
        "HEFT-noinsertion": lambda: HEFT(insertion=False),
        "PETS-rpt": lambda: PETS(variant="rpt"),
        "SDBATS-nodup": lambda: SDBATS(duplicate_entry=False),
    }


SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = _factories()


def _fold_names(
    factories: Dict[str, Callable[[], Scheduler]]
) -> Dict[str, List[str]]:
    """Case-folded name -> registry names sharing that folding."""
    folded: Dict[str, List[str]] = {}
    for registered in factories:
        folded.setdefault(registered.lower(), []).append(registered)
    return folded


#: case-insensitive lookup table, built once -- not per make_scheduler
#: call.  A folding mapping to several registry names is *ambiguous*
#: and only resolvable by its exact name.
_FOLDED: Dict[str, List[str]] = _fold_names(SCHEDULER_FACTORIES)

#: the algorithms evaluated throughout the paper's Section V
PAPER_SET = ("HDLTS", "HEFT", "PETS", "PEFT", "SDBATS")


def scheduler_names() -> List[str]:
    """All registered scheduler names."""
    return list(SCHEDULER_FACTORIES)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by registry name.

    Exact names win; otherwise a unique case-insensitive match is
    accepted (``hdlts`` -> ``HDLTS``) so CLI use stays forgiving.  A
    folding shared by several registered names is ambiguous and raises,
    naming the candidates.
    """
    factory = SCHEDULER_FACTORIES.get(name)
    if factory is None:
        candidates = _FOLDED.get(name.lower(), [])
        if len(candidates) == 1:
            factory = SCHEDULER_FACTORIES[candidates[0]]
        elif len(candidates) > 1:
            raise KeyError(
                f"ambiguous scheduler name {name!r}: matches "
                f"{', '.join(sorted(candidates))} (use the exact name)"
            )
    if factory is None:
        known = ", ".join(SCHEDULER_FACTORIES)
        raise KeyError(f"unknown scheduler {name!r}; known: {known}")
    return factory()


def paper_schedulers(include_cpop: bool = False) -> List[Scheduler]:
    """The paper's comparison set (CPOP appears in Section II but not in
    the evaluation figures; pass ``include_cpop=True`` to add it)."""
    names = list(PAPER_SET)
    if include_cpop:
        names.insert(2, "CPOP")
    return [make_scheduler(n) for n in names]

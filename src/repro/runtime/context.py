"""The run context: one frozen, picklable description of *how* to run.

Every knob that used to live in scattered process-global toggles --
``repro.model.compiled._ENABLED``, the :mod:`repro.obs` enable flag, the
engine default baked into each scheduler's signature, worker counts
threaded through function arguments -- is a field of one immutable
:class:`RunContext`.  The active context lives in a :mod:`contextvars`
variable, so

* readers (``compiled_enabled()``, ``obs.enabled()``, engine
  resolution) cost one ``ContextVar.get`` on the hot path,
* :func:`activate` scopes an override exactly like the old context
  managers did, and
* a context **pickles**: the parallel sweep runner ships it to worker
  processes explicitly (the pool initializer calls :func:`adopt`), which
  is what makes ``spawn``/``forkserver`` start methods produce
  bit-identical results to ``fork`` -- workers no longer depend on
  fork-inherited module state.

The old global toggles (``use_compiled()``, ``obs.enable()``/
``obs.disable()``) survive as thin deprecated shims over this module;
see docs/architecture.md for the migration path.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, fields, replace
from typing import Iterator, Optional

__all__ = [
    "BATCH_CHOICES",
    "ENGINE_CHOICES",
    "START_METHODS",
    "RunContext",
    "DEFAULT_CONTEXT",
    "current_context",
    "activate",
    "adopt",
    "resolve_engine",
]

#: the EFT-engine implementations schedulers can run on
ENGINE_CHOICES = ("fast", "reference")

#: accepted pool start methods; ``None`` = auto (fork where available,
#: then spawn, else serial), ``"serial"`` = never create a pool
START_METHODS = ("fork", "spawn", "forkserver", "serial")

#: batched multi-DAG kernel selection: ``"auto"`` groups same-shape
#: replications per x point and runs them through the batched kernel
#: (:mod:`repro.core.batch`); ``"off"`` forces the scalar per-instance
#: path everywhere.  Auto falls back to scalar bit-identically for
#: ragged shapes, ``engine="reference"``, validation runs and
#: non-batchable schedulers.
BATCH_CHOICES = ("auto", "off")


@dataclass(frozen=True)
class RunContext:
    """Declarative execution configuration for one run.

    Frozen and built from plain values only, so a context pickles, ships
    to any worker process, serializes into a run manifest, and
    round-trips through JSON (:meth:`to_dict` / :meth:`from_dict`).
    """

    #: base seed of the run's RNG streams
    seed: int = 0
    #: default EFT engine for schedulers constructed without an explicit
    #: ``engine=`` argument ("fast" or "reference")
    engine: str = "fast"
    #: route consumers through the compiled CSR graph layer
    compiled: bool = True
    #: feasibility-check every schedule produced by the harness
    validate: bool = False
    #: record observability metrics (counters/timers/phases)
    metrics: bool = False
    #: JSONL event-sink path (parent process only; informational for
    #: workers -- sinks are never re-opened in worker processes)
    events: Optional[str] = None
    #: telemetry directory of the owning run (heartbeats, span files,
    #: metric snapshots); workers read it from the shipped context
    telemetry: Optional[str] = None
    #: record hierarchical spans (``span.end`` events) -- see
    #: :mod:`repro.obs.spans`
    trace: bool = False
    #: worker processes for parallel sweeps (1 = serial)
    workers: int = 1
    #: replications per worker chunk
    chunk_size: int = 5
    #: pool start method; ``None`` picks fork > spawn > serial
    start_method: Optional[str] = None
    #: batched multi-DAG kernel: "auto" (shape-group replications per x
    #: point through :mod:`repro.core.batch`) or "off" (always scalar)
    batch: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"engine must be one of {ENGINE_CHOICES}, got {self.engine!r}"
            )
        if self.batch not in BATCH_CHOICES:
            raise ValueError(
                f"batch must be one of {BATCH_CHOICES}, got {self.batch!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.start_method is not None and self.start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS} or None, "
                f"got {self.start_method!r}"
            )

    def with_(self, **kwargs) -> "RunContext":
        """Functional update, e.g. ``ctx.with_(compiled=False)``."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Plain-dict form for manifests (JSON-able, exact)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunContext":
        """Rebuild a context from :meth:`to_dict` output.

        Unknown keys raise: a manifest written by a newer version with
        semantics this version cannot honor must not be half-applied.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunContext fields: {sorted(unknown)}")
        return cls(**data)


DEFAULT_CONTEXT = RunContext()

_ACTIVE: ContextVar[RunContext] = ContextVar(
    "repro_run_context", default=DEFAULT_CONTEXT
)


def current_context() -> RunContext:
    """The :class:`RunContext` governing the calling code."""
    return _ACTIVE.get()


@contextmanager
def activate(context: RunContext) -> Iterator[RunContext]:
    """Scope ``context`` as the active run context for a block."""
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


def adopt(context: RunContext) -> None:
    """Install ``context`` for the rest of this process's lifetime.

    Used by worker-pool initializers (the shipped context becomes the
    worker's world) and by CLI entry points that own the whole process.
    """
    _ACTIVE.set(context)


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve a scheduler's ``engine=`` parameter.

    ``None`` (the new default) defers to the active context; explicit
    strings are validated and win over the context.
    """
    if engine is None:
        return current_context().engine
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"engine must be one of {ENGINE_CHOICES}, got {engine!r}"
        )
    return engine

"""Warn-once deprecation helper.

The compatibility shims (:func:`repro.model.compiled.use_compiled`,
:func:`repro.obs.profile.enable`) sit on hot paths -- a sweep that
calls one per replication would spray thousands of identical
``DeprecationWarning`` lines.  :func:`warn_once` deduplicates by key:
the first call per process warns, later calls are free (one set
lookup), matching how ``warnings``' own registry behaves under
``always``-style filters that would otherwise re-emit.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once", "reset"]

_WARNED: Set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning`` for ``key`` once per process.

    Returns ``True`` when the warning actually fired.  ``stacklevel``
    defaults to 3: the caller's caller, i.e. the user code invoking the
    deprecated shim, not the shim itself.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset() -> None:
    """Forget every emitted key (test isolation helper)."""
    _WARNED.clear()

"""Run telemetry: heartbeat files and live status over a run directory.

Everything ``repro top`` / ``repro status`` show is derived from files
a run writes as it progresses, so the observer is a separate process
that never touches the run itself:

``<run_dir>/telemetry/heartbeat-<pid>.json``
    One file per participating process (the main collector and every
    pool worker), rewritten atomically after each chunk: pid, role,
    resident set size, user/system CPU time, chunks done and the
    wall-clock timestamp of the last event.  A vanished or stale
    heartbeat is visible as exactly that.

``<run_dir>/chunks.jsonl``
    The crash-safe chunk ledger the session already appends
    (:class:`~repro.runtime.session.ExperimentSession`); progress
    counts, chunk throughput and the ETA come from here, so they are
    correct even when every worker heartbeat is gone.

``<run_dir>/telemetry/spans-<pid>.jsonl`` / ``trace.json`` /
``metrics.prom`` / ``events.jsonl``
    Written when tracing / metrics / event streaming are requested; see
    :mod:`repro.obs.export` and docs/observability.md.

:func:`run_status` folds manifest + ledger + heartbeats into one plain
dict (schema ``repro.status/1``) -- the machine-readable contract a
future scheduling service publishes -- and :func:`format_top` renders
that dict as the terminal frame ``repro top`` repaints.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import resource
import sys
import time
from typing import Dict, List, Optional, Union

from repro.runtime.session import ExperimentSession

__all__ = [
    "TELEMETRY_DIRNAME",
    "STATUS_SCHEMA",
    "HEARTBEAT_SCHEMA",
    "telemetry_dir",
    "HeartbeatWriter",
    "load_heartbeats",
    "run_status",
    "status_document",
    "format_top",
    "format_campaign_top",
    "format_status",
]

PathLike = Union[str, pathlib.Path]

TELEMETRY_DIRNAME = "telemetry"
STATUS_SCHEMA = "repro.status/1"
HEARTBEAT_SCHEMA = "repro.heartbeat/1"

#: a worker is flagged as a straggler when its heartbeat is older than
#: ``max(_STRAGGLER_FACTOR * mean chunk wall, _STRAGGLER_FLOOR_S)``
_STRAGGLER_FACTOR = 4.0
_STRAGGLER_FLOOR_S = 10.0


def telemetry_dir(run_dir: PathLike) -> pathlib.Path:
    """The telemetry directory beside a run's manifest and ledger."""
    return pathlib.Path(run_dir) / TELEMETRY_DIRNAME


class HeartbeatWriter:
    """Periodically rewrites this process's heartbeat file, atomically.

    ``beat`` is cheap enough to call after every chunk: it throttles
    itself to one write per ``throttle_s`` unless forced, and each
    write is a tmp-file + ``os.replace`` so readers never see a torn
    document.
    """

    def __init__(
        self, directory: PathLike, role: str = "worker",
        throttle_s: float = 0.2,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.role = role
        self.extra = dict(extra) if extra else {}
        self.pid = os.getpid()
        self.path = self.directory / f"heartbeat-{self.pid}.json"
        self.throttle_s = throttle_s
        self.chunks_done = 0
        self.last_event_ts: Optional[float] = None
        self._last_write = 0.0

    def beat(
        self,
        chunks_done: Optional[int] = None,
        last_event_ts: Optional[float] = None,
        force: bool = False,
    ) -> None:
        """Record progress and (rate-limited) rewrite the heartbeat file."""
        if chunks_done is not None:
            self.chunks_done = chunks_done
        if last_event_ts is not None:
            self.last_event_ts = last_event_ts
        now = time.time()
        if not force and now - self._last_write < self.throttle_s:
            return
        usage = resource.getrusage(resource.RUSAGE_SELF)
        doc = {
            "schema": HEARTBEAT_SCHEMA,
            "pid": self.pid,
            "role": self.role,
            "rss_kb": int(usage.ru_maxrss),
            "cpu_user_s": usage.ru_utime,
            "cpu_sys_s": usage.ru_stime,
            "chunks_done": self.chunks_done,
            "last_event_ts": self.last_event_ts,
            "ts": now,
            **self.extra,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc) + "\n")
        os.replace(tmp, self.path)
        self._last_write = now

    def bump(self, last_event_ts: Optional[float] = None) -> None:
        """One more chunk done; rewrite the file.

        Unthrottled: a chunk spans many replications, so one ~50 us
        atomic rewrite per chunk is noise, and it keeps the per-worker
        chunk counts in ``repro top`` exact rather than trailing by a
        throttle window.
        """
        self.beat(
            chunks_done=self.chunks_done + 1,
            last_event_ts=last_event_ts,
            force=True,
        )


def load_heartbeats(run_dir: PathLike) -> List[Dict[str, object]]:
    """Every readable heartbeat under the run's telemetry directory.

    Sorted main-first then by pid; unreadable files are skipped (a
    worker replaced mid-read loses one refresh, nothing else).
    """
    directory = telemetry_dir(run_dir)
    beats: List[Dict[str, object]] = []
    if not directory.is_dir():
        return beats
    for path in sorted(directory.glob("heartbeat-*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if doc.get("schema") == HEARTBEAT_SCHEMA:
            beats.append(doc)
    beats.sort(key=lambda b: (b.get("role") != "main", b.get("pid", 0)))
    return beats


def run_status(
    run_dir: PathLike, now: Optional[float] = None
) -> Dict[str, object]:
    """One status document over a run directory (schema ``repro.status/1``).

    Derived purely from the manifest, the chunk ledger and the
    heartbeat files, so it is safe to call while the run is live, after
    a crash, or on a finished directory -- chunk counts always agree
    with the durable ledger.
    """
    session = ExperimentSession.open(run_dir)
    context = session.context
    now = time.time() if now is None else now

    sweeps: List[Dict[str, object]] = []
    walls: List[float] = []
    stamps: List[float] = []
    total_done = total_chunks = 0
    per_x = max(1, math.ceil(session.reps / context.chunk_size))
    for definition in session.definitions:
        completed = session.completed_chunks(definition.key)
        total = len(definition.x_values) * per_x
        done = len(completed)
        for row in completed.values():
            walls.append(float(row.get("wall", 0.0)))
            if row.get("ts") is not None:
                stamps.append(float(row["ts"]))
        sweeps.append(
            {
                "key": definition.key,
                "title": definition.title,
                "x_label": definition.x_label,
                "points": len(definition.x_values),
                "reps": session.reps,
                "chunks_done": done,
                "chunks_total": total,
                "complete": done >= total,
            }
        )
        total_done += done
        total_chunks += total

    complete = total_done >= total_chunks
    mean_wall = sum(walls) / len(walls) if walls else None
    throughput = None
    if len(stamps) >= 2 and max(stamps) > min(stamps):
        throughput = (len(stamps) - 1) / (max(stamps) - min(stamps))
    eta_s = None
    if not complete and mean_wall is not None:
        eta_s = (total_chunks - total_done) * mean_wall / max(
            1, context.workers
        )

    workers = load_heartbeats(run_dir)
    stale_after = max(
        _STRAGGLER_FACTOR * (mean_wall or 0.0), _STRAGGLER_FLOOR_S
    )
    stragglers: List[int] = []
    if not complete:
        for beat in workers:
            age = now - float(beat.get("ts", now))
            beat["age_s"] = age
            if beat.get("role") == "worker" and age > stale_after:
                stragglers.append(int(beat["pid"]))
    else:
        for beat in workers:
            beat["age_s"] = now - float(beat.get("ts", now))

    return {
        "schema": STATUS_SCHEMA,
        "run_dir": str(run_dir),
        "created": session.created,
        "complete": complete,
        "chunks_done": total_done,
        "chunks_total": total_chunks,
        "reps": session.reps,
        "workers_configured": context.workers,
        "chunk_size": context.chunk_size,
        "sweeps": sweeps,
        "workers": workers,
        "chunk_wall_mean_s": mean_wall,
        "throughput_chunks_per_s": throughput,
        "eta_s": eta_s,
        "stragglers": stragglers,
    }


def status_document(
    run_dir: PathLike, now: Optional[float] = None
) -> Dict[str, object]:
    """Status over *any* results directory: run or campaign.

    Dispatches on what the directory holds -- ``manifest.json`` gets
    :func:`run_status` (schema ``repro.status/1``), ``campaign.json``
    gets :func:`repro.experiments.campaign.campaign_status` (schema
    ``repro.campaign-status/1``), a ``store.sqlite`` gets
    :func:`repro.service.api.service_status` (schema
    ``repro.service-status/1``).  ``repro status`` / ``repro top``
    call this, so both verbs work unchanged on sharded campaigns and
    service directories.
    """
    path = pathlib.Path(run_dir)
    if (path / "campaign.json").exists():
        from repro.experiments.campaign import campaign_status

        return campaign_status(path, now=now)
    from repro.service.api import is_service_dir, service_status

    if is_service_dir(path):
        return service_status(path, now=now)
    return run_status(run_dir, now=now)


def _bar(fraction: float, width: int = 24) -> str:
    """A ``[#####....]`` progress bar for one 0..1 fraction."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _hms(seconds: float) -> str:
    """``h:mm:ss`` rendering of a duration."""
    seconds = max(0, int(round(seconds)))
    return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"


def format_top(status: Dict[str, object]) -> str:
    """Render one ``repro top`` frame from a :func:`run_status` document."""
    lines: List[str] = []
    done = int(status["chunks_done"])
    total = max(1, int(status["chunks_total"]))
    state = "complete" if status["complete"] else "running"
    lines.append(
        f"repro top -- {status['run_dir']}  ({state}, "
        f"{status['workers_configured']} worker(s) configured)"
    )
    lines.append(
        f"chunks {_bar(done / total)} {done}/{status['chunks_total']}"
        f"  ({100.0 * done / total:.1f}%)"
    )
    parts = []
    if status.get("chunk_wall_mean_s") is not None:
        parts.append(f"mean {status['chunk_wall_mean_s'] * 1e3:.1f} ms/chunk")
    if status.get("throughput_chunks_per_s") is not None:
        parts.append(f"{status['throughput_chunks_per_s']:.2f} chunks/s")
    if status.get("eta_s") is not None:
        parts.append(f"ETA {_hms(status['eta_s'])}")
    if parts:
        lines.append("  " + "  ".join(parts))
    lines.append("")
    for sweep in status["sweeps"]:
        s_done = int(sweep["chunks_done"])
        s_total = max(1, int(sweep["chunks_total"]))
        lines.append(
            f"  {sweep['key']:<6} {_bar(s_done / s_total, 18)} "
            f"{s_done}/{sweep['chunks_total']} chunks  "
            f"({sweep['points']} x {sweep['reps']} reps, "
            f"{sweep['x_label']})"
        )
    workers = status.get("workers") or []
    stragglers = set(status.get("stragglers") or [])
    if workers:
        lines.append("")
        lines.append(
            f"  {'pid':>7}  {'role':<6}  {'chunks':>6}  {'rss':>8}  "
            f"{'cpu':>8}  {'beat':>8}"
        )
        for beat in workers:
            cpu = float(beat.get("cpu_user_s", 0.0)) + float(
                beat.get("cpu_sys_s", 0.0)
            )
            age = beat.get("age_s")
            flag = "  STRAGGLER" if beat.get("pid") in stragglers else ""
            lines.append(
                f"  {beat.get('pid', '?'):>7}  {beat.get('role', '?'):<6}  "
                f"{beat.get('chunks_done', 0):>6}  "
                f"{float(beat.get('rss_kb', 0)) / 1024.0:>6.1f}MB  "
                f"{cpu:>7.1f}s  "
                f"{(f'{age:.1f}s ago' if age is not None else '?'):>8}"
                f"{flag}"
            )
    elif not status["complete"]:
        lines.append("")
        lines.append("  (no heartbeats yet -- run starting, or crashed)")
    return "\n".join(lines)


def format_campaign_top(status: Dict[str, object]) -> str:
    """Render one ``repro top`` frame for a sharded campaign directory.

    Takes a :func:`~repro.experiments.campaign.campaign_status`
    document: campaign totals, per-sweep row progress, and a per-shard
    table with straggler flags.
    """
    lines: List[str] = []
    done = int(status["tasks_done"])
    total = max(1, int(status["tasks_total"]))
    state = "complete" if status["complete"] else "running"
    lines.append(
        f"repro top -- {status['run_dir']}  (campaign, {state}, "
        f"{status['n_shards']} shard(s))"
    )
    lines.append(
        f"tasks  {_bar(done / total)} {done}/{status['tasks_total']}"
        f"  ({100.0 * done / total:.1f}%)"
    )
    lines.append(
        f"  {status['rows_done']}/{status['rows_total']} replications "
        f"(chunk size {status['chunk_size']})"
    )
    lines.append("")
    for sweep in status["sweeps"]:
        s_done = int(sweep["rows_done"])
        s_total = max(1, int(sweep["rows_total"]))
        lines.append(
            f"  {sweep['key']:<6} {_bar(s_done / s_total, 18)} "
            f"{s_done}/{sweep['rows_total']} reps  "
            f"({sweep['points']} x {sweep['reps']} reps, "
            f"{sweep['x_label']})"
        )
    lines.append("")
    lines.append(
        f"  {'shard':>5}  {'tasks':>11}  {'bytes':>9}  {'pid':>7}  "
        f"{'beat':>10}"
    )
    for shard in status["shards"]:
        s_done = int(shard["tasks_done"])
        s_total = int(shard["tasks_total"])
        age = shard.get("age_s")
        size = shard.get("bytes")
        if not shard["started"]:
            note = "  (not started)"
        elif shard["straggler"]:
            note = "  STRAGGLER"
        elif shard["complete"]:
            note = "  done"
        else:
            note = ""
        lines.append(
            f"  {shard['shard']:>5}  {s_done:>5}/{s_total:<5}  "
            f"{(f'{size / 1024.0:.1f}KB' if size is not None else '-'):>9}  "
            f"{(shard.get('pid') or '-'):>7}  "
            f"{(f'{age:.1f}s ago' if age is not None else '-'):>10}"
            f"{note}"
        )
    return "\n".join(lines)


def format_status(status: Dict[str, object]) -> str:
    """Render whatever :func:`status_document` produced, by schema."""
    if status.get("schema") == "repro.campaign-status/1":
        return format_campaign_top(status)
    if status.get("schema") == "repro.service-status/1":
        from repro.service.api import format_service_top

        return format_service_top(status)
    return format_top(status)


def watch(
    run_dir: PathLike,
    interval_s: float = 1.0,
    once: bool = False,
    stream=None,
) -> int:
    """Drive ``repro top``: repaint until the run completes (or once).

    Returns a process exit code.  Works on run directories and campaign
    directories alike.  The live loop clears the terminal between
    frames and stops on completion; Ctrl-C exits cleanly.
    """
    stream = sys.stdout if stream is None else stream
    while True:
        status = status_document(run_dir)
        frame = format_status(status)
        if once:
            print(frame, file=stream)
            return 0
        print("\x1b[2J\x1b[H" + frame, file=stream, flush=True)
        if status["complete"]:
            return 0
        time.sleep(interval_s)

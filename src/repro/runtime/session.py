"""Experiment sessions: a run directory that survives crashes.

An :class:`ExperimentSession` owns one run directory:

``manifest.json``
    What the run *is*: schema tag, package version, the full
    :class:`~repro.runtime.context.RunContext`, replication count, and
    every resolved sweep definition (declarative
    :class:`~repro.experiments.graphspec.GraphSpec`, not closures) --
    enough to re-create the exact computation on any machine.

``chunks.jsonl``
    What has already *happened*: one JSON line per completed work chunk
    (figure key, x index, replication range, per-replication metric
    values, the chunk's observability snapshot, wall time).  Lines are
    flushed and fsynced as they complete, so after a crash or
    ``SIGINT`` the ledger holds every finished chunk.

``repro resume <run-dir>`` re-opens the session, replays finished
chunks from the ledger into the accumulators *in submission order* --
the same order a live run folds them -- and computes only the
remainder.  Replayed floats round-trip through JSON exactly
(``repr``-based float serialization), so a resumed sweep is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Union

from repro.runtime.context import RunContext
from repro.service.store import ChunkKey, LedgerStore

__all__ = ["ExperimentSession", "read_manifest", "write_manifest"]

PathLike = Union[str, pathlib.Path]


def write_manifest(path: PathLike, doc: Dict) -> None:
    """Write a manifest document atomically (tmp file + ``os.replace``).

    Shared by run sessions and campaigns: a reader racing the write
    sees either the old manifest or the new one, never a torn file.
    """
    path = pathlib.Path(path)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(doc, indent=2) + "\n")
    os.replace(tmp, path)


def read_manifest(path: PathLike, schema: str) -> Dict:
    """Load a manifest and check its schema tag, with pointed errors."""
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no {path.name} in {path.parent}")
    doc = json.loads(path.read_text())
    found = doc.get("schema")
    if found != schema:
        raise ValueError(
            f"unsupported manifest schema {found!r} in {path} "
            f"(expected {schema!r})"
        )
    return doc


class ExperimentSession:
    """One resumable run: a directory with a manifest and a chunk ledger."""

    SCHEMA = "repro.run/1"
    MANIFEST = "manifest.json"
    LEDGER = "chunks.jsonl"

    def __init__(
        self,
        run_dir: PathLike,
        context: RunContext,
        reps: int,
        definitions: List,
        created: Optional[str] = None,
    ) -> None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        self.path = pathlib.Path(run_dir)
        self.context = context
        self.reps = reps
        self.definitions = list(definitions)
        self.created = created
        #: the durable chunk ledger, behind the shared RunStore interface
        self.store = LedgerStore(self.path / self.LEDGER)

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(
        cls,
        run_dir: PathLike,
        context: RunContext,
        definitions: List,
        reps: int,
    ) -> "ExperimentSession":
        """Start a fresh run directory; refuses to clobber an existing one.

        Every definition must carry a declarative graph spec
        (:attr:`SweepDefinition.graph`): closures cannot be written to a
        manifest, and a run that cannot be described cannot be resumed.
        """
        path = pathlib.Path(run_dir)
        manifest = path / cls.MANIFEST
        if manifest.exists():
            raise FileExistsError(
                f"run directory {path} already holds a manifest; "
                f"resume it (repro resume {path}) or pick a new directory"
            )
        session = cls(
            path,
            context,
            reps,
            definitions,
            created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        path.mkdir(parents=True, exist_ok=True)
        write_manifest(manifest, session.manifest_dict())
        return session

    @classmethod
    def open(cls, run_dir: PathLike) -> "ExperimentSession":
        """Re-open an existing run directory from its manifest."""
        from repro.experiments.harness import SweepDefinition

        path = pathlib.Path(run_dir)
        manifest = path / cls.MANIFEST
        if not manifest.exists():
            if (path / "campaign.json").exists():
                raise FileNotFoundError(
                    f"{path} is a campaign directory, not a run directory; "
                    f"use `repro campaign status/run-shard/merge {path}`"
                )
            raise FileNotFoundError(f"no {cls.MANIFEST} in {path}")
        doc = read_manifest(manifest, cls.SCHEMA)
        context = RunContext.from_dict(doc["context"])
        definitions = [
            SweepDefinition.from_dict(entry) for entry in doc["sweeps"]
        ]
        return cls(
            path,
            context,
            int(doc["reps"]),
            definitions,
            created=doc.get("created"),
        )

    def manifest_dict(self) -> Dict:
        """The manifest document (see the module docstring)."""
        from repro import __version__

        return {
            "schema": self.SCHEMA,
            "version": __version__,
            "created": self.created,
            "context": self.context.to_dict(),
            "reps": self.reps,
            "sweeps": [d.to_dict() for d in self.definitions],
        }

    @property
    def _ledger_fh(self):
        # back-compat peephole: the handle now lives on the store
        return self.store._fh

    def close(self) -> None:
        """Close the ledger store (safe to call repeatedly)."""
        self.store.close()

    def __enter__(self) -> "ExperimentSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the chunk ledger ------------------------------------------------
    def record_chunk(
        self,
        key: str,
        x_index: int,
        x,
        rep_lo: int,
        rep_hi: int,
        values: List[Dict[str, float]],
        metrics: Dict,
        wall: float,
    ) -> None:
        """Append one completed chunk to the ledger, durably.

        Delegates to the session's :class:`~repro.service.store
        .LedgerStore`: the line is flushed and fsynced before
        returning, so a chunk the caller saw acknowledged survives any
        subsequent crash.  Each row carries the wall-clock time it was
        recorded (``ts``), which is what ``repro top`` derives chunk
        throughput and the ETA from.  When the event bus has
        subscribers, the recorded chunk is also announced as a
        ``sweep.chunk`` event (the quiet bus costs one attribute read).
        """
        from repro import obs

        self.store.append_chunk(
            key, x_index, x, rep_lo, rep_hi, values,
            metrics=metrics, wall=wall,
        )
        bus = obs.get_bus()
        if bus.active:
            bus.emit(
                "sweep.chunk",
                figure=key,
                x=x,
                rep_lo=rep_lo,
                rep_hi=rep_hi,
                wall_s=wall,
                replayed=False,
                recorded=True,
            )

    def completed_chunks(self, key: str) -> Dict[ChunkKey, Dict]:
        """Finished chunks of sweep ``key``, from the ledger on disk.

        Tolerates a torn tail: reading stops at the first line that is
        not valid JSON (a crash mid-append), discarding it and anything
        after it -- every line before the tear was fsynced whole.
        """
        return self.store.completed_chunks(key)

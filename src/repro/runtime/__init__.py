"""Run-context architecture: explicit, picklable execution state.

Two pieces (see docs/architecture.md):

* :mod:`repro.runtime.context` -- the frozen :class:`RunContext`
  (seed, engine, compiled layer, validation, observability flags,
  worker decomposition) held in a context variable.  Readers across the
  model/obs/experiments layers consult it instead of process-global
  toggles; the parallel runner ships it to workers explicitly, which is
  what makes ``spawn``/``forkserver`` pools bit-identical to ``fork``.
* :mod:`repro.runtime.session` -- the :class:`ExperimentSession`: a run
  directory with a ``manifest.json`` (config + resolved sweep specs)
  and a crash-safe ``chunks.jsonl`` ledger that ``repro resume``
  replays.
* :mod:`repro.runtime.telemetry` -- live run observation over that
  directory: per-process heartbeat files, the ``repro.status/1``
  status document (:func:`run_status`), and the ``repro top`` terminal
  view (:func:`format_top`).
"""

from repro.runtime.context import (
    BATCH_CHOICES,
    DEFAULT_CONTEXT,
    ENGINE_CHOICES,
    START_METHODS,
    RunContext,
    activate,
    adopt,
    current_context,
    resolve_engine,
)
from repro.runtime.session import ExperimentSession
from repro.runtime.telemetry import (
    HeartbeatWriter,
    format_top,
    load_heartbeats,
    run_status,
    telemetry_dir,
)

__all__ = [
    "BATCH_CHOICES",
    "DEFAULT_CONTEXT",
    "ENGINE_CHOICES",
    "START_METHODS",
    "RunContext",
    "activate",
    "adopt",
    "current_context",
    "resolve_engine",
    "ExperimentSession",
    "HeartbeatWriter",
    "format_top",
    "load_heartbeats",
    "run_status",
    "telemetry_dir",
]

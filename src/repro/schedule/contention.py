"""Contention-aware re-execution of schedules (extension).

Section III assumes "all the computational resources are fully connected
and there is no network contention".  Every scheduler in this library
(like HEFT and its whole family) relies on that: a task may receive any
number of transfers simultaneously and a CPU may send while computing.

:class:`ContentionSimulator` re-executes a schedule under a stricter
platform: each CPU has **one NIC**, and a NIC carries **one transfer at
a time** (both at the sender and at the receiver; an intra-CPU transfer
is still free).  Transfers are issued in a deterministic order (by
analytic data-need time) and each occupies its edge's communication cost
on both endpoints' NICs.  The realized makespan is therefore an upper
bound on the contention-free one, and the inflation measures how much a
schedule *depends* on the paper's assumption.

Computation order per CPU is preserved from the schedule; data for a
task is available when all its incoming transfers have completed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["ContentionSimulator", "ContentionResult"]


@dataclass(frozen=True)
class TransferRecord:
    """One realized network transfer."""

    src_task: int
    dst_task: int
    src_proc: int
    dst_proc: int
    start: float
    finish: float


@dataclass
class ContentionResult:
    """Realized execution under single-NIC contention."""

    makespan: float
    finish_times: Dict[int, float]
    start_times: Dict[int, float]
    transfers: List[TransferRecord]

    @property
    def total_transfer_time(self) -> float:
        return sum(t.finish - t.start for t in self.transfers)

    def inflation(self, contention_free_makespan: float) -> float:
        """Relative makespan increase vs the contention-free execution."""
        if contention_free_makespan <= 0:
            return 0.0
        return self.makespan / contention_free_makespan - 1.0


class ContentionSimulator:
    """Replay a schedule with serialized per-CPU NICs."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph

    def run(self, schedule: Schedule) -> ContentionResult:
        """Execute the schedule's decisions under NIC contention.

        Uses the *primary* copy of every parent (duplicates still serve
        their own CPU for free, since a local read needs no NIC).
        """
        graph = self.graph
        position = {t: i for i, t in enumerate(graph.topological_order())}
        queues: List[List[Tuple[int, bool]]] = []
        for timeline in schedule.timelines:
            # (start, end, topo position): zero-duration tasks sharing an
            # instant must keep dependency order on the queue
            slots = sorted(
                timeline.slots(),
                key=lambda s: (s.start, s.end, position[s.task]),
            )
            queues.append([(s.task, s.duplicate) for s in slots])

        nic_free = [0.0] * graph.n_procs  # next instant each NIC is idle
        cpu_clock = [0.0] * graph.n_procs
        copy_finish: Dict[int, List[Tuple[int, float]]] = {}
        arrived: Dict[Tuple[int, int], float] = {}  # (parent, child) -> time
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        transfers: List[TransferRecord] = []
        heads = [0] * graph.n_procs
        total = sum(len(q) for q in queues)
        done = 0

        def data_time(parent: int, child: int, proc: int) -> Optional[float]:
            """Arrival of the edge's data on ``proc``, scheduling the
            transfer on first use; None when the parent has no copy yet."""
            copies = copy_finish.get(parent)
            if not copies:
                return None
            # a local copy makes the transfer unnecessary
            local = [fin for cproc, fin in copies if cproc == proc]
            if local:
                return min(local)
            key = (parent, child)
            if key in arrived:
                return arrived[key]
            comm = graph.comm_cost(parent, child)
            src_proc, src_fin = min(copies, key=lambda c: c[1])
            if comm <= 0:
                arrived[key] = src_fin
                return src_fin
            start = max(src_fin, nic_free[src_proc], nic_free[proc])
            finish = start + comm
            nic_free[src_proc] = finish
            nic_free[proc] = finish
            arrived[key] = finish
            transfers.append(
                TransferRecord(parent, child, src_proc, proc, start, finish)
            )
            return finish

        while done < total:
            # commit the head task with the earliest feasible start; data
            # transfers are booked lazily when a head is evaluated, so
            # evaluation order matters -- we probe heads in ascending
            # (cpu clock) order for determinism.
            best_proc, best_start = -1, float("inf")
            for proc in sorted(
                range(graph.n_procs), key=lambda p: (cpu_clock[p], p)
            ):
                if heads[proc] >= len(queues[proc]):
                    continue
                task, _ = queues[proc][heads[proc]]
                ready = 0.0
                feasible = True
                for parent in graph.predecessors(task):
                    t = data_time(parent, task, proc)
                    if t is None:
                        feasible = False
                        break
                    ready = max(ready, t)
                if not feasible:
                    continue
                start = max(cpu_clock[proc], ready)
                if start < best_start:
                    best_start, best_proc = start, proc
            if best_proc < 0:
                stuck = [
                    queues[p][heads[p]][0]
                    for p in range(graph.n_procs)
                    if heads[p] < len(queues[p])
                ]
                raise RuntimeError(
                    f"contention replay deadlock; blocked heads: {stuck}"
                )
            proc = best_proc
            task, is_dup = queues[proc][heads[proc]]
            finish = best_start + graph.cost(task, proc)
            cpu_clock[proc] = finish
            copy_finish.setdefault(task, []).append((proc, finish))
            if not is_dup:
                start_times[task] = best_start
                finish_times[task] = finish
            heads[proc] += 1
            done += 1

        return ContentionResult(
            makespan=max(finish_times.values(), default=0.0),
            finish_times=finish_times,
            start_times=start_times,
            transfers=transfers,
        )

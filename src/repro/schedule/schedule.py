"""The schedule container: task -> (CPU, interval) plus duplicates.

A :class:`Schedule` owns one :class:`~repro.schedule.timeline.ProcessorTimeline`
per CPU and records, for every task, its *primary* assignment and any
duplicate copies (the paper duplicates only the entry task, but the container
is general).  Data-availability queries (Definition 5) automatically pick the
cheapest copy of a parent's output.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.model.task_graph import TaskGraph
from repro.schedule.timeline import ProcessorTimeline

__all__ = ["Assignment", "Schedule"]


class Assignment(NamedTuple):
    """A task copy bound to a CPU over ``[start, finish)``.

    A named tuple rather than a dataclass: schedulers create one per
    placement decision, and tuple construction is about half the cost.
    """

    task: int
    proc: int
    start: float
    finish: float
    duplicate: bool = False

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Schedule:
    """Mutable schedule under construction, then a queryable result."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        self.timelines: List[ProcessorTimeline] = [
            ProcessorTimeline(p) for p in graph.procs()
        ]
        self._primary: Dict[int, Assignment] = {}
        self._duplicates: Dict[int, List[Assignment]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def place(
        self,
        task: int,
        proc: int,
        start: float,
        duration: Optional[float] = None,
        duplicate: bool = False,
    ) -> Assignment:
        """Commit ``task`` to ``proc`` at ``start``.

        ``duration`` defaults to ``W(task, proc)``.  A task gets exactly
        one primary copy; extra copies must be flagged ``duplicate``.
        """
        if duration is None:
            duration = self.graph.cost(task, proc)
        if not duplicate and task in self._primary:
            raise ValueError(f"task {task} already has a primary assignment")
        self.timelines[proc].reserve(task, start, duration, duplicate)
        assignment = Assignment(task, proc, start, start + duration, duplicate)
        if duplicate:
            self._duplicates.setdefault(task, []).append(assignment)
        else:
            self._primary[task] = assignment
        return assignment

    def unplace(self, task: int) -> None:
        """Remove the primary copy of ``task`` (rescheduling support)."""
        assignment = self._primary.pop(task, None)
        if assignment is None:
            raise KeyError(f"task {task} has no primary assignment")
        self.timelines[assignment.proc].remove(task, duplicate=False)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_scheduled(self, task: int) -> bool:
        """True when the task has a primary copy."""
        return task in self._primary

    @property
    def n_scheduled(self) -> int:
        return len(self._primary)

    def is_complete(self) -> bool:
        """True when every task has a primary copy."""
        return len(self._primary) == self.graph.n_tasks

    def assignment(self, task: int) -> Assignment:
        """The task's primary assignment."""
        try:
            return self._primary[task]
        except KeyError:
            raise KeyError(f"task {task} is not scheduled") from None

    def assignments(self) -> Iterator[Assignment]:
        """Iterate all primary assignments."""
        return iter(self._primary.values())

    def duplicates(self, task: Optional[int] = None) -> Tuple[Assignment, ...]:
        """Duplicate copies (of one task, or of all tasks)."""
        if task is None:
            return tuple(a for copies in self._duplicates.values() for a in copies)
        return tuple(self._duplicates.get(task, ()))

    def copies(self, task: int) -> Tuple[Assignment, ...]:
        """All copies of a task: the primary plus any duplicates."""
        primary = self._primary.get(task)
        dups = self._duplicates.get(task, [])
        return tuple(([primary] if primary else []) + dups)

    def proc_of(self, task: int) -> int:
        """CPU of the primary copy."""
        return self.assignment(task).proc

    def start_of(self, task: int) -> float:
        """Start time of the primary copy."""
        return self.assignment(task).start

    def finish_of(self, task: int) -> float:
        """Actual finish time, Definition 4 (primary copy)."""
        return self.assignment(task).finish

    def arrival_time(self, parent: int, child: int, proc: int) -> float:
        """Earliest arrival of the edge ``parent -> child`` data on ``proc``.

        Considers every scheduled copy of the parent: a copy on ``proc``
        delivers at its finish time; a remote copy at finish + edge cost.
        """
        comm = self.graph.comm_cost(parent, child)
        best = float("inf")
        for copy in self.copies(parent):
            cost = 0.0 if copy.proc == proc else comm
            arrival = copy.finish + cost
            if arrival < best:
                best = arrival
        if best == float("inf"):
            raise ValueError(f"parent {parent} of {child} is not scheduled")
        return best

    def ready_time(self, task: int, proc: int) -> float:
        """Definition 5: when all the task's inputs are present on ``proc``."""
        best = 0.0
        for parent in self.graph.predecessors(task):
            arrival = self.arrival_time(parent, task, proc)
            if arrival > best:
                best = arrival
        return best

    @property
    def makespan(self) -> float:
        """Definition 9: the finish time of the latest primary copy."""
        if not self._primary:
            return 0.0
        return max(a.finish for a in self._primary.values())

    def utilization(self) -> List[float]:
        """Per-CPU busy fraction of the makespan (load-balance metric)."""
        span = self.makespan
        if span <= 0:
            return [0.0] * len(self.timelines)
        return [t.busy_time() / span for t in self.timelines]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Schedule(scheduled={len(self._primary)}/{self.graph.n_tasks}, "
            f"makespan={self.makespan:.2f})"
        )

"""Discrete-event re-execution of a schedule.

The schedulers compute start/finish times analytically while they build a
schedule.  :class:`ScheduleSimulator` re-derives those times from nothing
but the *decisions* -- which copies run on which CPU, in which order --
by simulating the platform: a CPU executes its queue in order, and a task
begins only when the CPU is free and every input has arrived (same-CPU
data is free; remote data pays the edge cost, Definition 2).

This provides an independent check (for append-based schedules the
simulated makespan must equal the analytic one; insertion-based ones may
only improve) and is the replay engine of the dynamic extension: pass a
``duration_fn`` to perturb execution times, or ``release_time`` to model
a platform that only becomes available later.  CPU failures live in
:mod:`repro.dynamic` (online scheduling and repair), network contention
in :mod:`repro.schedule.contention`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["ScheduleSimulator", "SimulationResult"]

DurationFn = Callable[[int, int], float]  # (task, proc) -> execution time


@dataclass
class SimulationResult:
    """Realized execution of a schedule."""

    makespan: float
    finish_times: Dict[int, float]
    start_times: Dict[int, float]
    proc_of: Dict[int, int]
    order: List[Tuple[int, int]] = field(default_factory=list)  # (task, proc)
    #: every committed copy in commit order, duplicates included with
    #: their own realized interval: (task, proc, start, finish, duplicate)
    copies: List[Tuple[int, int, float, float, bool]] = field(
        default_factory=list
    )

    def finish_of(self, task: int) -> float:
        """Realized finish time of ``task``."""
        return self.finish_times[task]


class DeadlockError(RuntimeError):
    """The per-CPU orders are inconsistent with the precedence DAG."""


class ScheduleSimulator:
    """Re-executes a schedule's placement + ordering decisions."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph

    def run(
        self,
        schedule: Schedule,
        duration_fn: Optional[DurationFn] = None,
        release_time: float = 0.0,
    ) -> SimulationResult:
        """Simulate ``schedule``; returns realized times.

        ``duration_fn(task, proc)`` overrides ``W`` (defaults to the
        graph's costs, in which case the realized makespan must match the
        analytic one -- the cross-check used throughout the test suite).
        """
        queues = self._extract_queues(schedule)
        return self.run_queues(queues, duration_fn, release_time)

    def replay_violations(self, schedule: Schedule) -> List[str]:
        """Replay ``schedule``'s decisions; list every disagreement.

        Eager re-execution of the committed placement and per-CPU order
        can never *delay* a feasible schedule: every task starts no
        later than its analytic start (parents finish no later, and the
        CPU frees up no later), so a simulated finish -- or the whole
        simulated makespan -- exceeding the analytic value beyond
        ``FEASIBILITY_EPS`` means the schedule's book-kept times are
        inconsistent with its own decisions.  Append-based schedules
        replay exactly; insertion-based ones may only improve.

        Returns human-readable problem strings (empty = agreement); a
        simulator failure (deadlocked queues, never-executed tasks) is
        itself reported rather than raised.
        """
        from repro.schedule.validation import FEASIBILITY_EPS

        try:
            sim = self.run(schedule)
        except (DeadlockError, ValueError, KeyError) as err:
            return [f"replay failed: {err}"]
        problems: List[str] = []
        span = schedule.makespan
        if sim.makespan > span + FEASIBILITY_EPS:
            problems.append(
                f"replayed makespan {sim.makespan:.6f} exceeds analytic "
                f"makespan {span:.6f}"
            )
        for task in self.graph.tasks():
            analytic = schedule.finish_of(task)
            realized = sim.finish_times[task]
            if realized > analytic + FEASIBILITY_EPS:
                problems.append(
                    f"task {task} replays to finish {realized:.6f}, after "
                    f"its analytic finish {analytic:.6f}"
                )
        return problems

    def _extract_queues(self, schedule: Schedule) -> List[List[Tuple[int, bool]]]:
        """Per-CPU execution order.

        Sorted by (start, end), stably: zero-duration pseudo tasks that
        share a start instant with a real task run first (they finish
        immediately), and slots with *equal* keys keep their timeline
        order -- which is placement order, and therefore the scheduler's
        actual commit order.  (A topological tie-break here would be
        wrong: two independent zero-duration tasks committed at the same
        instant can sit in anti-topological commit order, and reordering
        them lets the replay start one earlier than the analytic
        bookkeeping did.  Placement order is dependency-consistent for
        every scheduler in the registry: static lists are
        precedence-safe and dynamic schedulers commit along precedence.)
        """
        queues: List[List[Tuple[int, bool]]] = []
        for timeline in schedule.timelines:
            slots = sorted(
                timeline.slots(), key=lambda s: (s.start, s.end)
            )
            queues.append([(s.task, s.duplicate) for s in slots])
        return queues

    def run_queues(
        self,
        queues: Sequence[Sequence[Tuple[int, bool]]],
        duration_fn: Optional[DurationFn] = None,
        release_time: float = 0.0,
    ) -> SimulationResult:
        """Simulate explicit per-CPU queues of (task, is_duplicate)."""
        graph = self.graph
        if duration_fn is None:
            duration_fn = graph.cost
        n_procs = len(queues)
        if n_procs != graph.n_procs:
            raise ValueError(
                f"expected {graph.n_procs} queues, got {n_procs}"
            )

        # earliest availability of each task's output per CPU: we track,
        # per task, the finish time of every completed copy and its CPU.
        copy_finish: Dict[int, List[Tuple[int, float]]] = {}
        start_times: Dict[int, float] = {}
        finish_times: Dict[int, float] = {}
        proc_of: Dict[int, int] = {}
        order: List[Tuple[int, int]] = []
        copies: List[Tuple[int, int, float, float, bool]] = []

        heads = [0] * n_procs
        clocks = [release_time] * n_procs
        total = sum(len(q) for q in queues)
        done = 0
        bus = obs.get_bus()

        def arrival(parent: int, child: int, proc: int) -> float:
            copies = copy_finish.get(parent)
            if not copies:
                return float("inf")
            comm = graph.comm_cost(parent, child)
            return min(
                fin + (0.0 if cproc == proc else comm) for cproc, fin in copies
            )

        # Global-time discrete-event loop: each round commits the head
        # task with the smallest feasible start time across all CPUs.
        # Committing in start-time order is what makes "min arrival over
        # copies completed so far" correct -- any copy that could deliver
        # data before the chosen start would itself have started (and
        # been committed) earlier.
        while done < total:
            best_proc = -1
            best_start = float("inf")
            for proc in range(n_procs):
                if heads[proc] >= len(queues[proc]):
                    continue
                task, _ = queues[proc][heads[proc]]
                ready = release_time
                for parent in graph.predecessors(task):
                    t = arrival(parent, task, proc)
                    if t == float("inf"):
                        ready = float("inf")
                        break
                    if t > ready:
                        ready = t
                start = max(clocks[proc], ready)
                if start < best_start:
                    best_start = start
                    best_proc = proc
            if best_proc < 0:
                stuck = [
                    queues[p][heads[p]][0]
                    for p in range(n_procs)
                    if heads[p] < len(queues[p])
                ]
                raise DeadlockError(
                    f"simulation deadlock; blocked head tasks: {stuck}"
                )
            proc = best_proc
            task, is_dup = queues[proc][heads[proc]]
            duration = duration_fn(task, proc)
            finish = best_start + duration
            clocks[proc] = finish
            copy_finish.setdefault(task, []).append((proc, finish))
            if bus.active:
                bus.emit(
                    "sim.task_finish",
                    task=task,
                    proc=proc,
                    start=best_start,
                    finish=finish,
                    duplicate=is_dup,
                )
            if not is_dup:
                if task in finish_times:
                    raise ValueError(f"task {task} has two primary copies")
                start_times[task] = best_start
                finish_times[task] = finish
                proc_of[task] = proc
            order.append((task, proc))
            copies.append((task, proc, best_start, finish, is_dup))
            heads[proc] += 1
            done += 1

        obs.count("sim/commits", done)
        missing = [t for t in graph.tasks() if t not in finish_times]
        if missing:
            raise ValueError(f"tasks never executed: {missing[:10]}")
        makespan = max(finish_times.values(), default=0.0)
        return SimulationResult(
            makespan, finish_times, start_times, proc_of, order, copies
        )

"""A single CPU's occupied time intervals.

Supports the two ``EST`` conventions found across the reproduced
heuristics:

* **append** -- Definition 3's ``Avail(m_p)``: a task may start no earlier
  than the finish time of the last task already on the CPU (this is what
  the HDLTS trace in Table I uses);
* **insertion** -- HEFT/PETS/PEFT-style search of the earliest idle slot
  between already-scheduled tasks that is long enough for the task.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

__all__ = ["Slot", "ProcessorTimeline"]

_EPS = 1e-9


class _SlotFields(NamedTuple):
    start: float
    end: float
    task: int
    duplicate: bool = False


class Slot(_SlotFields):
    """An occupied interval ``[start, end)`` on a CPU.

    A named tuple rather than a dataclass: ``reserve`` builds one per
    placement, and tuple construction is about half the cost.
    """

    __slots__ = ()

    def __new__(
        cls, start: float, end: float, task: int, duplicate: bool = False
    ) -> "Slot":
        if end < start - _EPS:
            raise ValueError(
                f"slot ends before it starts: "
                f"Slot(start={start}, end={end}, task={task}, "
                f"duplicate={duplicate})"
            )
        return _SlotFields.__new__(cls, start, end, task, duplicate)


class ProcessorTimeline:
    """Occupied intervals of one CPU, kept sorted by start time."""

    def __init__(self, proc: int) -> None:
        self.proc = proc
        # slots sorted by (start, end): zero-duration boundary slots sort
        # before the real slot sharing their start, which keeps _ends
        # non-decreasing and index-aligned with _slots
        self._slots: List[Slot] = []
        self._keys: List[Tuple[float, float]] = []  # (start, end) for bisect
        self._starts: List[float] = []  # aligned with _slots
        self._ends: List[float] = []  # aligned with _slots, non-decreasing
        self._max_end = 0.0
        self._busy = 0.0  # running occupied time, updated on reserve/remove
        # whether _ends is non-decreasing (a boundary point slot within
        # eps of a real end can break it); maintained on reserve/remove
        self._ends_monotone = True
        # lazy (starts, ends, prev_end, indices) ndarray snapshot for
        # the batch gap scan; invalidated on reserve/remove
        self._gap_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self._slots)

    def slots(self) -> Tuple[Slot, ...]:
        """Snapshot of the occupied intervals, sorted by (start, end)."""
        return tuple(self._slots)

    @property
    def avail(self) -> float:
        """Definition 3: the finish time of the last task on this CPU.

        Tracked as the maximum slot end (zero-duration pseudo-task slots
        may sort after the interval that actually finishes last).
        """
        return self._max_end if self._slots else 0.0

    @property
    def first_busy(self) -> float:
        """Start of the earliest occupied interval (inf when idle)."""
        return self._slots[0].start if self._slots else float("inf")

    def busy_time(self) -> float:
        """Total occupied time (for utilization / load-balance metrics).

        Maintained incrementally on :meth:`reserve`/:meth:`remove`, so
        sweep loops can poll it per step without re-summing every slot.
        """
        return self._busy

    # ------------------------------------------------------------------
    def fits(self, start: float, end: float) -> bool:
        """True when ``[start, end)`` overlaps no existing slot.

        Empty intervals (zero-duration pseudo tasks) occupy nothing and
        fit anywhere at or after time zero.
        """
        if start < -_EPS:
            return False
        if end - start <= _EPS:
            # a point slot may sit at slot boundaries but not inside an
            # occupied interval (queue replay would reorder it).  The
            # start side uses zero tolerance: a point even fractionally
            # after an interval's start would break the sorted-ends
            # invariant the gap search relies on.
            return not any(
                s.start < start < s.end - _EPS for s in self._slots
            )
        # a real interval must not cover any slot start either: a
        # covered pseudo task would replay out of order on a queue (and
        # the sorted-ends invariant would break).  Zero tolerance on the
        # start side, mirroring the point-slot rule above.
        lo = bisect.bisect_right(self._starts, start)
        hi = bisect.bisect_left(self._starts, end - _EPS)
        if lo < hi:
            return False  # some slot starts inside (start, end - eps)
        # real slots are pairwise disjoint and sorted, so the only one
        # that can intersect [start, end) is the last real slot whose
        # start precedes end (zero-duration slots occupy nothing).
        j = hi
        while j > 0:
            candidate = self._slots[j - 1]
            j -= 1
            if candidate.end - candidate.start <= _EPS:
                continue
            return candidate.end <= start + _EPS
        return True

    def earliest_start(
        self, ready: float, duration: float, insertion: bool = False
    ) -> float:
        """Earliest time a ``duration``-long task ready at ``ready`` can start.

        With ``insertion=False`` this is ``max(ready, Avail)`` (Eq. 6);
        with ``insertion=True`` idle gaps between scheduled tasks are
        searched first, HEFT-style.
        """
        if ready < 0:
            raise ValueError(f"ready time must be >= 0, got {ready}")
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if not insertion or not self._slots:
            return max(ready, self.avail)
        # gap before the first slot, then between slots; each candidate
        # is re-checked with fits() so float-boundary cases can never
        # produce an unreservable answer
        # slots finishing at or before ``ready`` cannot host the task and
        # only pin the scan's running prev_end at <= ready, so skip them
        # wholesale (ends are non-decreasing because slots are disjoint)
        first = bisect.bisect_right(self._ends, ready)
        prev_end = self._ends[first - 1] if first > 0 else 0.0
        for idx in range(first, len(self._slots)):
            slot = self._slots[idx]
            gap_start = max(ready, prev_end)
            if gap_start + duration <= slot.start + _EPS and self.fits(
                gap_start, gap_start + duration
            ):
                return gap_start
            prev_end = max(prev_end, slot.end)
        fallback = max(ready, prev_end)
        if self.fits(fallback, fallback + duration):
            return fallback
        # eps-scale corner (prev_end understated by a boundary slot):
        # appending after everything always fits
        return max(ready, self.avail)

    def earliest_start_batch(
        self,
        ready: np.ndarray,
        durations: np.ndarray,
        insertion: bool = False,
    ) -> np.ndarray:
        """Vectorized :meth:`earliest_start` over many (ready, duration) pairs.

        Bit-identical to calling the scalar method per pair.  The gap
        scan is driven by the sorted ``_starts``/``_ends`` arrays: for a
        query ready at ``r`` the slots finishing at or before ``r`` are
        skipped with a ``searchsorted`` on the (non-decreasing) end
        times, and the first gap ``[ends[i-1], starts[i])`` wide enough
        for the task wins.  Within that regime the scalar path's
        ``fits()`` re-check is provably always true, so no per-candidate
        validation is needed; the rare shapes where the proof does not
        hold (eps-scale durations, an end array knocked non-monotone by
        a boundary point slot) fall back to the scalar method.
        """
        ready = np.ascontiguousarray(ready, dtype=float)
        durations = np.ascontiguousarray(durations, dtype=float)
        if ready.size and float(ready.min()) < 0:
            raise ValueError(f"ready time must be >= 0, got {ready.min()}")
        if durations.size and float(durations.min()) < 0:
            raise ValueError(f"duration must be >= 0, got {durations.min()}")
        if not insertion or not self._slots:
            return np.maximum(ready, self.avail)
        if not self._ends_monotone:
            # a boundary point slot within eps of a real end broke the
            # sorted-ends invariant; the scalar scan handles it exactly
            return np.array(
                [
                    self.earliest_start(float(r), float(d), insertion=True)
                    for r, d in zip(ready, durations)
                ]
            )
        starts, ends, prev_end, indices = self._gap_arrays()
        first = np.searchsorted(ends, ready, side="right")
        gap_start = np.maximum(ready[:, None], prev_end[None, :])
        feasible = gap_start + durations[:, None] <= starts[None, :] + _EPS
        feasible &= indices[None, :] >= first[:, None]
        hit = feasible.any(axis=1)
        idx = np.argmax(feasible, axis=1)
        out = np.maximum(ready, self.avail)  # append after everything
        rows = np.flatnonzero(hit)
        out[rows] = gap_start[rows, idx[rows]]
        tiny = durations <= _EPS
        if np.any(tiny):
            # zero-duration pseudo tasks: a gap candidate can still be
            # rejected by the point-slot fits() rule -- defer to scalar
            for i in np.flatnonzero(tiny):
                out[i] = self.earliest_start(
                    float(ready[i]), float(durations[i]), insertion=True
                )
        return out

    def earliest_start_fast(
        self, ready: float, duration: float, insertion: bool = False
    ) -> float:
        """:meth:`earliest_start` minus the per-candidate ``fits`` re-check.

        Valid -- and bit-identical -- whenever the end times are sorted
        and the duration is above eps (the regime where the re-check is
        provably always true, see :meth:`earliest_start_batch`); every
        other shape is delegated to the scalar method.  The fast engine
        calls this thousands of times per schedule.
        """
        if not insertion or not self._slots:
            if ready < 0:
                raise ValueError(f"ready time must be >= 0, got {ready}")
            if duration < 0:
                raise ValueError(f"duration must be >= 0, got {duration}")
            avail = self._max_end
            return ready if ready > avail else avail
        if not self._ends_monotone or duration <= _EPS:
            return self.earliest_start(ready, duration, insertion=True)
        if ready < 0:
            raise ValueError(f"ready time must be >= 0, got {ready}")
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        ends = self._ends
        starts = self._starts
        first = bisect.bisect_right(ends, ready)
        prev_end = ends[first - 1] if first > 0 else 0.0
        for idx in range(first, len(starts)):
            gap_start = ready if ready > prev_end else prev_end
            if gap_start + duration <= starts[idx] + _EPS:
                return gap_start
            prev_end = ends[idx]  # monotone: the running max is ends[idx]
        return ready if ready > self._max_end else self._max_end

    def _gap_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array snapshot of the slot boundaries for the batch gap scan.

        ``prev_end[i]`` is the finish of everything before slot ``i``
        (ends are non-decreasing, so the scalar loop's running max is
        ``ends[i - 1]``).  Rebuilt lazily after a reserve/remove, so
        repeated batch queries against an unchanged timeline pay no
        list-to-array conversion.
        """
        cache = self._gap_cache
        if cache is None:
            starts = np.array(self._starts)
            ends = np.array(self._ends)
            prev_end = np.empty_like(ends)
            if ends.size:
                prev_end[0] = 0.0
                prev_end[1:] = ends[:-1]
            indices = np.arange(ends.size)
            cache = self._gap_cache = (starts, ends, prev_end, indices)
        return cache

    def reserve(
        self, task: int, start: float, duration: float, duplicate: bool = False
    ) -> Slot:
        """Occupy ``[start, start + duration)``; raises on overlap."""
        end = start + duration
        if duration > _EPS and start >= self._max_end:
            # append-at-end: the interval begins at or after every
            # existing slot's finish, so it cannot overlap anything,
            # (start, end) sorts last, and _ends stays non-decreasing
            slot = Slot(start, end, task, duplicate)
            self._slots.append(slot)
            self._keys.append((start, end))
            self._starts.append(start)
            self._ends.append(end)
            self._max_end = end
            self._busy += duration
            self._gap_cache = None
            return slot
        if not self.fits(start, end):
            raise ValueError(
                f"slot [{start}, {end}) for task {task} overlaps on CPU {self.proc}"
            )
        slot = Slot(start, end, task, duplicate)
        i = bisect.bisect_right(self._keys, (start, end))
        self._slots.insert(i, slot)
        self._keys.insert(i, (start, end))
        self._starts.insert(i, start)
        self._ends.insert(i, end)
        if self._ends_monotone:
            ends = self._ends
            if (i > 0 and ends[i - 1] > end) or (
                i + 1 < len(ends) and end > ends[i + 1]
            ):
                self._ends_monotone = False
        self._max_end = max(self._max_end, end)
        self._busy += duration
        self._gap_cache = None
        return slot

    def remove(self, task: int, duplicate: Optional[bool] = None) -> None:
        """Remove the slot(s) of ``task`` (used by rescheduling)."""
        kept = [
            s
            for s in self._slots
            if not (s.task == task and (duplicate is None or s.duplicate == duplicate))
        ]
        if len(kept) == len(self._slots):
            raise KeyError(f"task {task} not on CPU {self.proc}")
        kept.sort(key=lambda s: (s.start, s.end))
        self._slots = kept
        self._keys = [(s.start, s.end) for s in kept]
        self._starts = [s.start for s in kept]
        self._ends = [s.end for s in kept]
        self._max_end = max((s.end for s in kept), default=0.0)
        # re-sum rather than subtract: removal is rare and re-summing
        # keeps the accumulator free of float drift
        self._busy = sum(s.end - s.start for s in kept)
        self._ends_monotone = all(
            a <= b for a, b in zip(self._ends, self._ends[1:])
        )
        self._gap_cache = None

    def idle_gaps(self, horizon: Optional[float] = None) -> List[Tuple[float, float]]:
        """Idle intervals up to ``horizon`` (defaults to ``avail``)."""
        end = self.avail if horizon is None else horizon
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for slot in self._slots:
            if slot.start > cursor + _EPS:
                gaps.append((cursor, min(slot.start, end)))
            cursor = max(cursor, slot.end)
        if cursor + _EPS < end:
            gaps.append((cursor, end))
        return [(a, b) for a, b in gaps if b > a + _EPS]

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessorTimeline(proc={self.proc}, slots={len(self._slots)})"

"""Gantt-chart views of a schedule: structured lanes + ASCII rendering.

:func:`gantt_lanes` extracts the per-CPU occupancy of a
:class:`~repro.schedule.schedule.Schedule` as plain records -- one lane
per processor, one labelled interval per committed task copy.  The
ASCII renderer below and the Chrome-trace exporter
(:mod:`repro.obs.export`) both draw from it, so a terminal chart and a
Perfetto overlay show the same schedule.  Example ASCII output for the
paper's Fig. 1 graph::

    P1 |----[T1']--[T3]-[T7]..............................
    P2 |------[T1']---[T4]......[T2]--[T9]--[T8]...[T10]..
    P3 |--[T1]---[T6]........[T5].........................

Neither view has any influence on scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.schedule.schedule import Schedule

__all__ = ["GanttSlot", "gantt_lanes", "render_gantt"]


@dataclass(frozen=True)
class GanttSlot:
    """One occupied interval of one CPU lane."""

    proc: int
    label: str
    start: float
    end: float
    duplicate: bool


def gantt_lanes(schedule: Schedule) -> List[Tuple[str, List[GanttSlot]]]:
    """Per-CPU lanes of ``schedule``: ``[(lane label, slots), ...]``.

    Lanes appear in processor order; slots within a lane are sorted by
    start time.  Duplicate copies keep the convention of a trailing
    apostrophe on the task label.
    """
    lanes: List[Tuple[str, List[GanttSlot]]] = []
    for timeline in schedule.timelines:
        slots = [
            GanttSlot(
                proc=timeline.proc,
                label=schedule.graph.name(slot.task)
                + ("'" if slot.duplicate else ""),
                start=slot.start,
                end=slot.end,
                duplicate=slot.duplicate,
            )
            for slot in sorted(timeline.slots(), key=lambda s: s.start)
        ]
        lanes.append((f"P{timeline.proc + 1}", slots))
    return lanes


def render_gantt(schedule: Schedule, width: int = 78) -> str:
    """Render the schedule as one text row per CPU.

    Each occupied interval is drawn as ``[name]`` stretched to scale;
    duplicates are marked with a trailing apostrophe.  ``width`` is the
    number of character columns representing the makespan.
    """
    span = schedule.makespan
    lanes = gantt_lanes(schedule)
    if span <= 0:
        return "\n".join(f"{label} | (idle)" for label, _ in lanes)
    scale = width / span
    lines: List[str] = []
    label_width = max(len(label) for label, _ in lanes)
    for label, slots in lanes:
        row = ["."] * (width + 1)
        for slot in slots:
            a = int(round(slot.start * scale))
            b = max(a + 1, int(round(slot.end * scale)))
            b = min(b, len(row))
            for i in range(a, b):
                row[i] = "-"
            text = f"[{slot.label}]"
            if len(text) <= b - a:
                mid = a + (b - a - len(text)) // 2
                row[mid : mid + len(text)] = list(text)
        lines.append(f"{label.ljust(label_width)} |{''.join(row)}")
    footer = f"{'':{label_width}} 0{'':{max(0, width - 12)}}t={span:.2f}"
    lines.append(footer)
    return "\n".join(lines)

"""ASCII Gantt-chart rendering of a schedule.

Purely a human-inspection aid (examples and CLI use it); the renderer has
no influence on scheduling.  Example output for the paper's Fig. 1 graph::

    P1 |----[T1']--[T3]-[T7]..............................
    P2 |------[T1']---[T4]......[T2]--[T9]--[T8]...[T10]..
    P3 |--[T1]---[T6]........[T5].........................
"""

from __future__ import annotations

from typing import List

from repro.schedule.schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, width: int = 78) -> str:
    """Render the schedule as one text row per CPU.

    Each occupied interval is drawn as ``[name]`` stretched to scale;
    duplicates are marked with a trailing apostrophe.  ``width`` is the
    number of character columns representing the makespan.
    """
    span = schedule.makespan
    if span <= 0:
        return "\n".join(f"P{t.proc + 1} | (idle)" for t in schedule.timelines)
    scale = width / span
    lines: List[str] = []
    label_width = max(len(f"P{t.proc + 1}") for t in schedule.timelines)
    for timeline in schedule.timelines:
        row = ["."] * (width + 1)
        for slot in sorted(timeline.slots(), key=lambda s: s.start):
            a = int(round(slot.start * scale))
            b = max(a + 1, int(round(slot.end * scale)))
            b = min(b, len(row))
            for i in range(a, b):
                row[i] = "-"
            name = schedule.graph.name(slot.task) + ("'" if slot.duplicate else "")
            text = f"[{name}]"
            if len(text) <= b - a:
                mid = a + (b - a - len(text)) // 2
                row[mid : mid + len(text)] = list(text)
        label = f"P{timeline.proc + 1}".ljust(label_width)
        lines.append(f"{label} |{''.join(row)}")
    footer = f"{'':{label_width}} 0{'':{max(0, width - 12)}}t={span:.2f}"
    lines.append(footer)
    return "\n".join(lines)

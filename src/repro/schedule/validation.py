"""Independent feasibility checking of a finished schedule.

Every scheduler in the library is cross-checked by this validator (and by
the event simulator): a schedule is feasible iff

1. every task has exactly one primary copy with the correct duration,
2. no two copies overlap on any CPU,
3. every copy (primary or duplicate) starts no earlier than its inputs
   can arrive, choosing the cheapest copy of each parent (Definition 5).

The checker collects *all* violations rather than stopping at the first.
"""

from __future__ import annotations

from typing import List

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["FEASIBILITY_EPS", "ScheduleError", "validate_schedule"]

#: The single feasibility tolerance shared by every independent checker:
#: this validator, the simulator's replay cross-check
#: (:meth:`repro.schedule.simulator.ScheduleSimulator.replay_violations`),
#: the diagnostics report and the QA invariant registry
#: (:mod:`repro.qa.invariants`) all import it, so "feasible" means the
#: same thing everywhere.
FEASIBILITY_EPS = 1e-6

_EPS = FEASIBILITY_EPS


class ScheduleError(ValueError):
    """Raised when a schedule violates feasibility."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__("; ".join(problems) if problems else "infeasible schedule")


def validate_schedule(graph: TaskGraph, schedule: Schedule) -> None:
    """Raise :class:`ScheduleError` listing every feasibility violation."""
    problems: List[str] = []

    # 1. completeness and durations -----------------------------------
    for task in graph.tasks():
        if not schedule.is_scheduled(task):
            problems.append(f"task {task} is not scheduled")
            continue
        for copy in schedule.copies(task):
            expected = graph.cost(task, copy.proc)
            if abs(copy.duration - expected) > _EPS:
                problems.append(
                    f"task {task} on CPU {copy.proc} runs {copy.duration:.6f}, "
                    f"expected W={expected:.6f}"
                )
            if copy.start < -_EPS:
                problems.append(f"task {task} starts before time 0")

    # 2. no overlap on any CPU (empty intervals occupy nothing) --------
    for timeline in schedule.timelines:
        slots = sorted(
            (s for s in timeline.slots() if s.end - s.start > _EPS),
            key=lambda s: s.start,
        )
        for a, b in zip(slots, slots[1:]):
            if a.end > b.start + _EPS:
                problems.append(
                    f"CPU {timeline.proc}: task {a.task} [{a.start:.3f}, {a.end:.3f}) "
                    f"overlaps task {b.task} [{b.start:.3f}, {b.end:.3f})"
                )

    # 3. precedence + communication -----------------------------------
    for task in graph.tasks():
        if not schedule.is_scheduled(task):
            continue
        for copy in schedule.copies(task):
            for parent in graph.predecessors(task):
                if not schedule.is_scheduled(parent):
                    continue  # already reported as unscheduled
                arrival = schedule.arrival_time(parent, task, copy.proc)
                if copy.start < arrival - _EPS:
                    problems.append(
                        f"task {task} starts at {copy.start:.6f} on CPU "
                        f"{copy.proc} before data from parent {parent} "
                        f"arrives at {arrival:.6f}"
                    )

    # duplicates of tasks with parents must respect them too; duplicates
    # of the entry task trivially satisfy the loop above (no parents).

    if problems:
        raise ScheduleError(problems)

"""Schedule substrate: timelines, schedules, validation, simulation.

Everything a list scheduler needs to *commit* decisions lives here:

* :class:`ProcessorTimeline` -- one CPU's occupied intervals, with both
  append (``Avail``, Definition 3) and insertion-based free-slot search;
* :class:`Schedule` -- the full mapping of tasks (and entry-task
  duplicates) to CPUs and time intervals, with placement-aware data-ready
  queries (Definitions 4-7);
* :func:`validate_schedule` -- independent feasibility checking;
* :class:`ScheduleSimulator` -- discrete-event re-execution of a schedule,
  optionally with perturbed execution times (dynamic extension).
"""

from repro.schedule.timeline import ProcessorTimeline, Slot
from repro.schedule.schedule import Assignment, Schedule
from repro.schedule.validation import (
    FEASIBILITY_EPS,
    ScheduleError,
    validate_schedule,
)
from repro.schedule.simulator import ScheduleSimulator, SimulationResult
from repro.schedule.gantt import GanttSlot, gantt_lanes, render_gantt
from repro.schedule.contention import ContentionSimulator, ContentionResult

__all__ = [
    "ProcessorTimeline",
    "Slot",
    "Assignment",
    "Schedule",
    "FEASIBILITY_EPS",
    "ScheduleError",
    "validate_schedule",
    "ScheduleSimulator",
    "SimulationResult",
    "GanttSlot",
    "gantt_lanes",
    "render_gantt",
    "ContentionSimulator",
    "ContentionResult",
]

"""Pegasus DAX (v3) workflow import.

The paper's Montage workload comes from Pegasus [25]; real Pegasus
deployments describe workflows as DAX XML.  :func:`load_dax` parses the
subset that matters for scheduling -- ``<job>`` runtimes, ``<uses>``
file sizes and ``<child>/<parent>`` precedence -- into a
:class:`~repro.model.platform.Workflow` (runtime becomes the
instruction count at unit frequency; the data volume of an edge is the
total size of files the parent writes and the child reads), which
:func:`~repro.model.platform.compile_workflow` lowers onto any
:class:`~repro.model.platform.Platform`.
"""

from __future__ import annotations

import pathlib
import xml.etree.ElementTree as ET
from typing import Dict, Set, Union

from repro.model.platform import Workflow

__all__ = ["load_dax", "parse_dax"]

PathLike = Union[str, pathlib.Path]


def _local(tag: str) -> str:
    """Strip any XML namespace from a tag."""
    return tag.rsplit("}", 1)[-1]


def parse_dax(text: str) -> Workflow:
    """Parse DAX XML text into a :class:`Workflow`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as err:
        raise ValueError(f"not valid DAX XML: {err}") from None
    if _local(root.tag) != "adag":
        raise ValueError(f"expected <adag> root, got <{_local(root.tag)}>")

    workflow = Workflow()
    ids: Dict[str, int] = {}
    outputs: Dict[str, Dict[str, float]] = {}  # job id -> {file: size}
    inputs: Dict[str, Dict[str, float]] = {}

    for element in root:
        if _local(element.tag) != "job":
            continue
        job_id = element.get("id")
        if job_id is None:
            raise ValueError("job without id attribute")
        if job_id in ids:
            raise ValueError(f"duplicate job id {job_id!r}")
        runtime = float(element.get("runtime", "1.0"))
        if runtime < 0:
            raise ValueError(f"job {job_id}: negative runtime")
        name = element.get("name", job_id)
        ids[job_id] = workflow.add_task(runtime, name=name)
        outputs[job_id] = {}
        inputs[job_id] = {}
        for uses in element:
            if _local(uses.tag) != "uses":
                continue
            file_name = uses.get("file") or uses.get("name")
            if file_name is None:
                continue
            size = float(uses.get("size", "0"))
            link = uses.get("link", "")
            if link == "output":
                outputs[job_id][file_name] = size
            elif link == "input":
                inputs[job_id][file_name] = size

    seen_edges: Set[tuple] = set()
    for element in root:
        if _local(element.tag) != "child":
            continue
        child_ref = element.get("ref")
        if child_ref not in ids:
            raise ValueError(f"<child ref={child_ref!r}> references unknown job")
        for parent in element:
            if _local(parent.tag) != "parent":
                continue
            parent_ref = parent.get("ref")
            if parent_ref not in ids:
                raise ValueError(
                    f"<parent ref={parent_ref!r}> references unknown job"
                )
            key = (parent_ref, child_ref)
            if key in seen_edges:
                continue
            seen_edges.add(key)
            shared = set(outputs[parent_ref]) & set(inputs[child_ref])
            volume = sum(outputs[parent_ref][f] for f in shared)
            workflow.add_edge(ids[parent_ref], ids[child_ref], volume)
    return workflow


def load_dax(path: PathLike) -> Workflow:
    """Read a DAX file from disk."""
    return parse_dax(pathlib.Path(path).read_text())

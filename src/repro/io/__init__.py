"""Serialization: task graphs and schedules to/from JSON, DOT export.

JSON is the interchange format (lossless round trip of a
:class:`~repro.model.task_graph.TaskGraph` and of finished schedules);
DOT export feeds Graphviz for workflow visualization.
"""

from repro.io.json_io import (
    graph_to_dict,
    graph_from_dict,
    save_graph,
    load_graph,
    schedule_to_dict,
    save_schedule,
)
from repro.io.dot import graph_to_dot, schedule_to_dot
from repro.io.dax import load_dax, parse_dax

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "schedule_to_dict",
    "save_schedule",
    "graph_to_dot",
    "schedule_to_dot",
    "load_dax",
    "parse_dax",
]

"""Serialization: task graphs and schedules to/from JSON, DOT export,
and the columnar result codec.

JSON is the interchange format (lossless round trip of a
:class:`~repro.model.task_graph.TaskGraph` and of finished schedules);
DOT export feeds Graphviz for workflow visualization;
:mod:`repro.io.columnar` is the append-only record-batch store campaign
shards write their results to (pure numpy, Arrow-optional export).
"""

from repro.io.columnar import (
    ColumnarWriter,
    have_arrow,
    iter_batches,
    read_header,
    record_dtype,
    scan_frames,
    write_table,
)
from repro.io.json_io import (
    graph_to_dict,
    graph_from_dict,
    save_graph,
    load_graph,
    schedule_to_dict,
    save_schedule,
)
from repro.io.dot import graph_to_dot, schedule_to_dot
from repro.io.dax import load_dax, parse_dax

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "schedule_to_dict",
    "save_schedule",
    "graph_to_dot",
    "schedule_to_dot",
    "load_dax",
    "parse_dax",
    "ColumnarWriter",
    "have_arrow",
    "iter_batches",
    "read_header",
    "record_dtype",
    "scan_frames",
    "write_table",
]

"""Graphviz DOT export for workflows and schedules.

``graph_to_dot`` draws the DAG with per-CPU cost vectors on the nodes
and communication costs on the edges (the Fig. 1 style); when a schedule
is supplied, nodes are colored by the CPU they ran on, which makes
mapping decisions visible at a glance.
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["graph_to_dot", "schedule_to_dot"]

# colorblind-safe CPU palette (cycled when p > 8)
_PALETTE = [
    "#88CCEE",
    "#CC6677",
    "#DDCC77",
    "#117733",
    "#332288",
    "#AA4499",
    "#44AA99",
    "#999933",
]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def graph_to_dot(
    graph: TaskGraph,
    schedule: Optional[Schedule] = None,
    show_costs: bool = True,
) -> str:
    """Render the DAG as a DOT digraph string."""
    lines: List[str] = [
        "digraph workflow {",
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fillcolor=white];',
    ]
    for task in graph.tasks():
        label = graph.name(task)
        if show_costs:
            costs = ", ".join(f"{c:g}" for c in graph.cost_row(task))
            label += f"\\n[{costs}]"
        attrs = [f"label={_quote(label)}"]
        if schedule is not None and schedule.is_scheduled(task):
            assignment = schedule.assignment(task)
            color = _PALETTE[assignment.proc % len(_PALETTE)]
            attrs.append(f'fillcolor="{color}"')
            attrs.append(
                f"tooltip={_quote(f'P{assignment.proc + 1} [{assignment.start:g}, {assignment.finish:g})')}"
            )
        lines.append(f"  t{task} [{', '.join(attrs)}];")
    for edge in graph.edges():
        label = f' [label="{edge.cost:g}"]' if show_costs else ""
        lines.append(f"  t{edge.src} -> t{edge.dst}{label};")
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule) -> str:
    """Convenience: the schedule's graph colored by CPU assignment."""
    return graph_to_dot(schedule.graph, schedule=schedule)

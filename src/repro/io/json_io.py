"""Lossless JSON round trip for task graphs; schedule export.

The on-disk format is versioned and deliberately boring::

    {
      "format": "repro-taskgraph",
      "version": 1,
      "n_procs": 3,
      "tasks": [{"name": "T1", "costs": [14, 16, 9]}, ...],
      "edges": [{"src": 0, "dst": 1, "cost": 18.0}, ...]
    }

Schedules serialize to a flat record list (one per placed copy) plus the
makespan, which is what external plotting / Gantt tooling wants.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "schedule_to_dict",
    "save_schedule",
]

_FORMAT = "repro-taskgraph"
_SCHEDULE_FORMAT = "repro-schedule"
_VERSION = 1

PathLike = Union[str, pathlib.Path]


def graph_to_dict(graph: TaskGraph) -> Dict:
    """Serialize a task graph to plain JSON-compatible data."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "n_procs": graph.n_procs,
        "tasks": [
            {"name": graph.name(t), "costs": [float(c) for c in graph.cost_row(t)]}
            for t in graph.tasks()
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "cost": e.cost} for e in graph.edges()
        ],
    }


def graph_from_dict(data: Dict) -> TaskGraph:
    """Rebuild a task graph from :func:`graph_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    graph = TaskGraph(int(data["n_procs"]))
    for task in data["tasks"]:
        graph.add_task(task["costs"], name=task.get("name"))
    for edge in data["edges"]:
        graph.add_edge(int(edge["src"]), int(edge["dst"]), float(edge["cost"]))
    return graph


def save_graph(graph: TaskGraph, path: PathLike) -> None:
    """Write a graph to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: PathLike) -> TaskGraph:
    """Read a graph from a JSON file."""
    return graph_from_dict(json.loads(pathlib.Path(path).read_text()))


def schedule_to_dict(schedule: Schedule) -> Dict:
    """Serialize a finished schedule (all copies, flat records)."""
    records = []
    for timeline in schedule.timelines:
        for slot in timeline.slots():
            records.append(
                {
                    "task": slot.task,
                    "name": schedule.graph.name(slot.task),
                    "proc": timeline.proc,
                    "start": slot.start,
                    "finish": slot.end,
                    "duplicate": slot.duplicate,
                }
            )
    records.sort(key=lambda r: (r["start"], r["proc"], r["task"]))
    return {
        "format": _SCHEDULE_FORMAT,
        "version": _VERSION,
        "n_procs": schedule.graph.n_procs,
        "makespan": schedule.makespan,
        "records": records,
    }


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    """Write a schedule to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))

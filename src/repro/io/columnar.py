"""Columnar result store: framed, fixed-dtype record batches.

Row-wise JSONL (the ``chunks.jsonl`` run ledger) is the right shape for
a handful of chunks per figure: human-readable, append-only, trivially
crash-safe.  It is the wrong shape for a million-instance campaign --
every replication pays a ``json.loads`` plus per-value Python float
handling on the merge path.  This module stores the same information as
**record batches**: each completed campaign task appends one frame
holding a fixed-dtype structured array (one float64 column per
scheduler, one row per replication), so the merge path reads raw
little-endian doubles straight into numpy and never parses text.

The file format keeps the ledger's two load-bearing properties:

append-only
    A writer only ever appends whole frames and fsyncs each one; bytes
    already on disk are never rewritten, so concurrent readers (status,
    merge) can scan a live file.

torn-tail tolerant
    Every frame carries its payload length and a CRC-32 over its meta +
    payload bytes.  Reading stops at the first incomplete or corrupt
    frame -- a ``kill -9`` mid-append loses exactly the frame in
    flight.  :meth:`ColumnarWriter.append` additionally *truncates* the
    torn tail before resuming, so a killed-and-resumed shard file is
    byte-identical to one written in a single run (no timestamps or
    other nondeterminism ever lands in the file).

Layout::

    file   := MAGIC u32(header_len) header_json frame*
    frame  := FRAME_MAGIC u32(meta_len) u32(payload_len)
              u32(crc32(meta_json + payload)) meta_json payload

``header_json`` describes the store (schema tag plus ``groups``: the
column names of every record group, e.g. one group per sweep);
``meta_json`` says what one frame holds (its group plus caller keys
like task id and replication range); ``payload`` is the structured
array's bytes (little-endian float64 columns).

Arrow / Parquet: when :mod:`pyarrow` is imported successfully the
*merged* results can additionally be exported as a Parquet table
(:func:`write_table`).  The shard files themselves always use this
pure-numpy framing -- Parquet has no appendable, fsync-per-batch,
truncate-and-resume story, and the bit-identical resume guarantee must
not depend on an optional dependency.  Without pyarrow,
:func:`write_table` falls back to an ``.npz`` archive of the same
columns.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "COLUMNAR_SCHEMA",
    "MAGIC",
    "FRAME_MAGIC",
    "have_arrow",
    "record_dtype",
    "records_as_matrix",
    "Frame",
    "ColumnarWriter",
    "read_header",
    "scan_frames",
    "read_frame_payload",
    "iter_batches",
    "write_table",
]

PathLike = Union[str, pathlib.Path]

COLUMNAR_SCHEMA = "repro.columnar/1"
MAGIC = b"RPROCOL1\n"
FRAME_MAGIC = b"FRM1"

#: frame header: magic + u32 meta_len + u32 payload_len + u32 crc
_FRAME_HEAD = struct.Struct("<III")
_FRAME_HEAD_LEN = len(FRAME_MAGIC) + _FRAME_HEAD.size


def have_arrow() -> bool:
    """True when :mod:`pyarrow` imports (Parquet export available)."""
    try:  # pragma: no cover - depends on the environment
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True  # pragma: no cover - depends on the environment


def record_dtype(columns: Sequence[str]) -> np.dtype:
    """The fixed dtype of one record group: float64 per column."""
    if not columns:
        raise ValueError("a record group needs at least one column")
    if len(set(columns)) != len(columns):
        raise ValueError(f"duplicate column names: {list(columns)}")
    return np.dtype([(str(name), "<f8") for name in columns])


def records_as_matrix(records: np.ndarray) -> np.ndarray:
    """View a uniform-float64 structured array as a ``(rows, k)`` matrix."""
    k = len(records.dtype.names)
    return records.view(np.float64).reshape(len(records), k)


@dataclass(frozen=True)
class Frame:
    """One scanned record batch: its meta plus where its payload lives."""

    meta: Dict[str, object]
    payload_offset: int
    payload_len: int

    @property
    def rows(self) -> int:
        return int(self.meta["rows"])


def _header_bytes(header: Dict[str, object]) -> bytes:
    doc = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return doc.encode("utf-8")


class ColumnarWriter:
    """Append-only writer of one columnar store file.

    ``header["groups"]`` maps group names to column lists; every frame
    appended via :meth:`write_batch` names its group and must match
    that group's dtype exactly.  Each frame is flushed and fsynced
    before the call returns, mirroring the chunk ledger's durability
    contract.
    """

    def __init__(self, fh, header: Dict[str, object], path: PathLike) -> None:
        self._fh = fh
        self.path = pathlib.Path(path)
        self.header = header
        self._dtypes = {
            name: record_dtype(cols)
            for name, cols in header.get("groups", {}).items()
        }

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(
        cls, path: PathLike, groups: Dict[str, Sequence[str]]
    ) -> "ColumnarWriter":
        """Start a fresh store; refuses to clobber an existing file."""
        path = pathlib.Path(path)
        if path.exists():
            raise FileExistsError(
                f"columnar store {path} already exists; append to it with "
                "ColumnarWriter.append"
            )
        header = {
            "schema": COLUMNAR_SCHEMA,
            "groups": {name: list(cols) for name, cols in groups.items()},
        }
        blob = _header_bytes(header)
        path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(path, "x+b")
        fh.write(MAGIC + struct.pack("<I", len(blob)) + blob)
        fh.flush()
        os.fsync(fh.fileno())
        return cls(fh, header, path)

    @classmethod
    def append(
        cls, path: PathLike, groups: Optional[Dict[str, Sequence[str]]] = None
    ) -> Tuple["ColumnarWriter", List[Frame]]:
        """Re-open a store for appending; returns the completed frames.

        The torn tail (an incomplete or corrupt trailing frame, left by
        a crash mid-append) is **truncated away** before the writer
        resumes, so re-emitting the lost batches reproduces the
        uninterrupted file byte for byte.  A missing file is created
        fresh (``groups`` required then).
        """
        path = pathlib.Path(path)
        if not path.exists():
            if groups is None:
                raise FileNotFoundError(
                    f"columnar store {path} does not exist and no groups "
                    "were given to create it"
                )
            return cls.create(path, groups), []
        header, frames, valid_end = scan_frames(path)
        fh = open(path, "r+b")
        fh.truncate(valid_end)
        fh.seek(valid_end)
        return cls(fh, header, path), frames

    def close(self) -> None:
        """Close the underlying handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appending -------------------------------------------------------
    def write_batch(self, meta: Dict[str, object], records: np.ndarray) -> None:
        """Append one record batch durably.

        ``meta`` must be JSON-able and name a ``group`` from the
        header; ``rows`` is stamped from the array.  Determinism
        matters: meta serializes with sorted keys and the payload is
        the array's raw bytes, so identical inputs produce identical
        frames -- the property shard resume relies on.
        """
        group = meta.get("group")
        dtype = self._dtypes.get(group)
        if dtype is None:
            known = ", ".join(self._dtypes) or "(none)"
            raise ValueError(
                f"unknown record group {group!r}; header groups: {known}"
            )
        if records.dtype != dtype:
            raise ValueError(
                f"records dtype {records.dtype} does not match group "
                f"{group!r} dtype {dtype}"
            )
        meta = dict(meta)
        meta["rows"] = int(len(records))
        meta_blob = _header_bytes(meta)
        payload = np.ascontiguousarray(records).tobytes()
        crc = zlib.crc32(meta_blob + payload)
        self._fh.write(
            FRAME_MAGIC
            + _FRAME_HEAD.pack(len(meta_blob), len(payload), crc)
            + meta_blob
            + payload
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _read_file_header(fh) -> Tuple[Dict[str, object], int]:
    head = fh.read(len(MAGIC) + 4)
    if len(head) < len(MAGIC) + 4 or not head.startswith(MAGIC):
        raise ValueError(f"{getattr(fh, 'name', '<file>')}: not a columnar store")
    (header_len,) = struct.unpack("<I", head[len(MAGIC):])
    blob = fh.read(header_len)
    if len(blob) < header_len:
        raise ValueError(f"{getattr(fh, 'name', '<file>')}: truncated header")
    header = json.loads(blob.decode("utf-8"))
    if header.get("schema") != COLUMNAR_SCHEMA:
        raise ValueError(
            f"unsupported columnar schema {header.get('schema')!r} "
            f"(expected {COLUMNAR_SCHEMA!r})"
        )
    return header, len(MAGIC) + 4 + header_len


def read_header(path: PathLike) -> Dict[str, object]:
    """The store's header document (schema tag + record groups)."""
    with open(path, "rb") as fh:
        header, _ = _read_file_header(fh)
    return header


def scan_frames(path: PathLike) -> Tuple[Dict[str, object], List[Frame], int]:
    """Walk every intact frame; returns ``(header, frames, valid_end)``.

    ``valid_end`` is the file offset just past the last intact frame --
    everything after it is a torn tail (incomplete write or CRC
    mismatch) and is ignored, exactly like the chunk ledger's reader.
    """
    frames: List[Frame] = []
    with open(path, "rb") as fh:
        header, offset = _read_file_header(fh)
        fh.seek(0, os.SEEK_END)
        end = fh.tell()
        fh.seek(offset)
        while True:
            if offset + _FRAME_HEAD_LEN > end:
                break
            head = fh.read(_FRAME_HEAD_LEN)
            if not head.startswith(FRAME_MAGIC):
                break
            meta_len, payload_len, crc = _FRAME_HEAD.unpack(
                head[len(FRAME_MAGIC):]
            )
            body_end = offset + _FRAME_HEAD_LEN + meta_len + payload_len
            if body_end > end:
                break
            blob = fh.read(meta_len + payload_len)
            if zlib.crc32(blob) != crc:
                break
            try:
                meta = json.loads(blob[:meta_len].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            frames.append(
                Frame(
                    meta=meta,
                    payload_offset=offset + _FRAME_HEAD_LEN + meta_len,
                    payload_len=payload_len,
                )
            )
            offset = body_end
    return header, frames, offset


def read_frame_payload(fh, frame: Frame, dtype: np.dtype) -> np.ndarray:
    """Read one scanned frame's records from an open binary handle."""
    fh.seek(frame.payload_offset)
    payload = fh.read(frame.payload_len)
    if len(payload) != frame.payload_len:
        raise ValueError(
            f"frame payload truncated at offset {frame.payload_offset}"
        )
    return np.frombuffer(payload, dtype=dtype)


def iter_batches(
    path: PathLike, group: Optional[str] = None
) -> Iterator[Tuple[Dict[str, object], np.ndarray]]:
    """Stream ``(meta, records)`` for every intact frame of a store.

    Memory-bounded: one frame's payload is resident at a time.
    ``group`` filters to one record group.
    """
    header, frames, _ = scan_frames(path)
    dtypes = {
        name: record_dtype(cols)
        for name, cols in header.get("groups", {}).items()
    }
    with open(path, "rb") as fh:
        for frame in frames:
            name = frame.meta.get("group")
            if group is not None and name != group:
                continue
            yield frame.meta, read_frame_payload(fh, frame, dtypes[name])


# ----------------------------------------------------------------------
# merged-table export (Arrow/Parquet when available, .npz fallback)
# ----------------------------------------------------------------------
def write_table(
    path: PathLike, columns: Dict[str, np.ndarray]
) -> pathlib.Path:
    """Write a merged result table; backend picked by extension + environment.

    ``.parquet`` requires :mod:`pyarrow` (raise a clear error without
    it); any other extension -- and the recommended default ``.npz`` --
    uses numpy's archive format, which needs nothing beyond the baked-in
    toolchain.  Returns the path actually written.
    """
    path = pathlib.Path(path)
    lengths = {name: len(arr) for name, arr in columns.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"ragged table columns: {lengths}")
    if path.suffix == ".parquet":
        if not have_arrow():
            raise ValueError(
                f"cannot write {path}: pyarrow is not installed "
                "(use a .npz path for the pure-numpy fallback)"
            )
        import pyarrow as pa  # pragma: no cover - optional dependency
        import pyarrow.parquet as pq  # pragma: no cover

        table = pa.table(  # pragma: no cover
            {name: pa.array(arr) for name, arr in columns.items()}
        )
        pq.write_table(table, path)  # pragma: no cover
        return path  # pragma: no cover
    np.savez(path, **columns)
    # np.savez appends .npz when the suffix is missing; report reality
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")

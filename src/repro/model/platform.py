"""Physical platform / workflow descriptions (Definitions 1 and 2).

The schedulers consume an abstract :class:`~repro.model.task_graph.TaskGraph`
whose costs are already *times*.  This module provides the physical layer
underneath it: a :class:`Platform` of CPUs with clock frequencies and a full
crossbar of link bandwidths, plus a :class:`Workflow` expressed in
*instructions* and *bytes*.  :func:`compile_workflow` divides instructions by
frequency (Definition 1) and data volume by bandwidth (Definition 2) to
produce the ``TaskGraph`` the heuristics operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph

__all__ = ["Platform", "Workflow", "compile_workflow"]


class Platform:
    """A fully connected heterogeneous computing environment.

    Parameters
    ----------
    frequencies:
        Clock frequency of each CPU (Hz, or any consistent rate unit).
    bandwidth:
        Either a scalar (uniform link bandwidth between every CPU pair)
        or a full ``(p, p)`` symmetric matrix.  The diagonal is ignored:
        same-CPU transfers are free (Definition 2).
    """

    def __init__(
        self,
        frequencies: Sequence[float],
        bandwidth: float | np.ndarray = 1.0,
    ) -> None:
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.ndim != 1 or freqs.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D sequence")
        if np.any(freqs <= 0):
            raise ValueError("frequencies must be positive")
        self._freqs = freqs
        p = freqs.size
        if np.isscalar(bandwidth):
            if bandwidth <= 0:  # type: ignore[operator]
                raise ValueError("bandwidth must be positive")
            bw = np.full((p, p), float(bandwidth))  # type: ignore[arg-type]
        else:
            bw = np.asarray(bandwidth, dtype=float)
            if bw.shape != (p, p):
                raise ValueError(f"bandwidth matrix must be ({p}, {p})")
            if not np.allclose(bw, bw.T):
                raise ValueError("bandwidth matrix must be symmetric")
            off_diag = bw[~np.eye(p, dtype=bool)]
            if off_diag.size and np.any(off_diag <= 0):
                raise ValueError("off-diagonal bandwidths must be positive")
        np.fill_diagonal(bw, np.inf)  # same CPU: infinitely fast, cost 0
        self._bw = bw

    @property
    def n_procs(self) -> int:
        return self._freqs.size

    @property
    def frequencies(self) -> np.ndarray:
        view = self._freqs.view()
        view.flags.writeable = False
        return view

    def frequency(self, proc: int) -> float:
        """Clock frequency of one CPU."""
        return float(self._freqs[proc])

    def bandwidth(self, a: int, b: int) -> float:
        """Link bandwidth between CPUs ``a`` and ``b`` (inf when a == b)."""
        return float(self._bw[a, b])

    def min_bandwidth(self) -> float:
        """Slowest inter-CPU link -- the conservative rate used when a
        data volume must be converted to a time before placement is known."""
        p = self.n_procs
        if p == 1:
            return np.inf
        return float(self._bw[~np.eye(p, dtype=bool)].min())

    def mean_bandwidth(self) -> float:
        """Average inter-CPU link bandwidth."""
        p = self.n_procs
        if p == 1:
            return np.inf
        return float(self._bw[~np.eye(p, dtype=bool)].mean())

    @classmethod
    def uniform(cls, n_procs: int, frequency: float = 1.0, bandwidth: float = 1.0) -> "Platform":
        """A homogeneous platform -- useful as a degenerate test case."""
        return cls([frequency] * n_procs, bandwidth)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Platform(n_procs={self.n_procs})"


@dataclass
class Workflow:
    """A machine-independent workflow: instruction counts and data volumes."""

    instructions: List[float] = field(default_factory=list)
    names: List[str] = field(default_factory=list)
    data: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def add_task(self, instructions: float, name: Optional[str] = None) -> int:
        """Add a task by instruction count; returns its id."""
        if instructions < 0:
            raise ValueError("instruction count must be >= 0")
        tid = len(self.instructions)
        self.instructions.append(float(instructions))
        self.names.append(name if name is not None else f"T{tid + 1}")
        return tid

    def add_edge(self, src: int, dst: int, data_volume: float) -> None:
        """Add a dependency shipping ``data_volume`` bytes."""
        n = len(self.instructions)
        if not (0 <= src < n and 0 <= dst < n):
            raise KeyError(f"unknown task in edge ({src}, {dst})")
        if data_volume < 0:
            raise ValueError("data volume must be >= 0")
        if (src, dst) in self.data:
            raise ValueError(f"duplicate edge ({src}, {dst})")
        self.data[(src, dst)] = float(data_volume)

    @property
    def n_tasks(self) -> int:
        return len(self.instructions)


def compile_workflow(workflow: Workflow, platform: Platform) -> TaskGraph:
    """Lower a physical :class:`Workflow` onto a :class:`Platform`.

    Execution time of task ``i`` on CPU ``p`` is
    ``instructions[i] / frequency[p]`` (Definition 1).  Edge communication
    cost is ``data / mean_bandwidth`` -- the paper assumes a fully
    connected contention-free network, so the placement-independent edge
    cost uses the mean inter-CPU bandwidth (the usual convention of HEFT
    and its successors; for a uniform-bandwidth platform this is exact).
    """
    graph = TaskGraph(platform.n_procs)
    freqs = platform.frequencies
    for tid in range(workflow.n_tasks):
        graph.add_task(
            workflow.instructions[tid] / freqs, name=workflow.names[tid]
        )
    mean_bw = platform.mean_bandwidth()
    for (src, dst), volume in workflow.data.items():
        cost = 0.0 if np.isinf(mean_bw) else volume / mean_bw
        graph.add_edge(src, dst, cost)
    return graph

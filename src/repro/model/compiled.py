"""Compiled array form of a :class:`TaskGraph` plus its artifact cache.

A paired-comparison sweep runs *every* scheduler in the set on the same
random instance.  The object graph (:class:`~repro.model.task_graph.TaskGraph`
with Python list-of-lists adjacency and a dict of edge costs) is
convenient to build and mutate, but each scheduler independently paid to
re-derive the same flat quantities from it: the ``(n, p)`` cost matrix,
per-task parent/child arrays, upward/downward ranks, PEFT's OCT table,
and the SLR denominator.  :class:`CompiledGraph` is the frozen CSR view
of one graph that every consumer shares:

* ``w`` -- the read-only ``(n, p)`` computation-cost matrix,
* ``succ_indptr``/``succ_ids``/``succ_costs`` and the predecessor
  mirror -- CSR adjacency with the edge costs in parallel arrays, edge
  order per node identical to the ``TaskGraph`` insertion order,
* topological order, entry/exit ids, and
* a lazy **artifact cache**: upward rank, downward rank, mean/std cost
  vectors, the OCT table, the CP_MIN lower bound and the best
  sequential time are each computed at most once per instance and then
  shared by HEFT/CPOP/PEFT/Lookahead/DHEFT/SDBATS and the metrics.

Rank kernels run level-batched over the CSR arrays with
``np.maximum.reduceat`` instead of per-node Python loops.  Every kernel
is bit-identical to the reference recursion in
:mod:`repro.model.ranking`: float64 ``min``/``max`` reductions are
order-independent, and each kernel preserves the reference's addition
order (``comm + rank``, ``(rank + w) + comm``, ...) term for term.

Compiled views are cached on the graph through its version-keyed
derived cache, so mutating the graph invalidates the compiled form
automatically.  Whether consumers route through the layer at all is a
field of the active :class:`~repro.runtime.context.RunContext`
(``compiled=True`` by default): the differential tests and the
throughput benchmark flip it to pit the two paths against each other on
identical inputs, and the parallel sweep runner ships it to workers so
every start method agrees.  :func:`use_compiled` survives as a thin
deprecated shim over the context.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph
from repro.runtime.context import activate, current_context

__all__ = [
    "CompiledGraph",
    "compile_graph",
    "compiled_enabled",
    "use_compiled",
]


def compiled_enabled() -> bool:
    """True when consumers should route through the compiled layer.

    Reads the active :class:`~repro.runtime.context.RunContext` -- no
    process-global switch; worker processes see whatever context was
    shipped to them.
    """
    return current_context().compiled


@contextmanager
def use_compiled(enabled: bool) -> Iterator[None]:
    """Scoped override of the compiled-layer switch.

    .. deprecated::
        Thin shim over ``activate(current_context().with_(compiled=...))``
        kept for existing callers; new code should derive and activate a
        :class:`~repro.runtime.context.RunContext` instead.

    ``use_compiled(False)`` reproduces the pre-compiled code paths
    exactly (per-run ``cost_matrix()`` copies, scalar rank recursions,
    dict-based parent walks) -- the oracle the differential suite and
    ``benchmarks/bench_compile_cache.py`` compare against.
    """
    from repro.runtime.deprecation import warn_once

    warn_once(
        "model.compiled.use_compiled",
        "use_compiled() is deprecated; activate a RunContext with "
        "compiled=... instead (activate(current_context()"
        ".with_(compiled=...)))",
    )
    with activate(current_context().with_(compiled=bool(enabled))):
        yield


def compile_graph(graph: TaskGraph) -> "CompiledGraph":
    """The compiled view of ``graph``, built once per graph version.

    Cached through :meth:`TaskGraph.derived`, so every scheduler and
    metric asking for the same (unmutated) graph receives the same
    :class:`CompiledGraph` instance -- and with it the shared artifact
    cache.
    """
    return graph.derived("compiled_graph", lambda: CompiledGraph(graph))


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


def _ragged_indices(
    starts: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(flat gather indices, reduceat segment offsets) for CSR slices.

    ``starts[j] .. starts[j] + counts[j]`` concatenated for every ``j``;
    ``offsets[j]`` is where segment ``j`` begins in the flat result.
    """
    offsets = np.zeros(len(counts), dtype=np.intp)
    np.cumsum(counts[:-1], out=offsets[1:])
    total = int(counts.sum())
    flat = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.intp)
    return flat, offsets


class CompiledGraph:
    """Frozen CSR arrays + lazy artifact cache for one ``TaskGraph``.

    Do not construct directly in scheduler code; go through
    :func:`compile_graph` so the instance (and its artifacts) are shared
    across the scheduler set.
    """

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        n, p = graph.n_tasks, graph.n_procs
        self.n_tasks = n
        self.n_procs = p
        costs = graph._costs
        self.w = _readonly(
            np.array(costs, dtype=float) if n else np.zeros((0, p))
        )

        # CSR adjacency; per-node edge order matches TaskGraph insertion
        # order so flat reductions see the same operand sequence as the
        # reference loops.
        comm = graph._comm
        self.succ_indptr, self.succ_ids, self.succ_costs = self._csr(
            graph._succ, comm, forward=True
        )
        self.pred_indptr, self.pred_ids, self.pred_costs = self._csr(
            graph._pred, comm, forward=False
        )

        topo = graph.topological_order()
        self._topo_tuple = topo
        self.topo = _readonly(np.asarray(topo, dtype=np.intp))
        position = np.empty(n, dtype=np.intp)
        position[self.topo] = np.arange(n, dtype=np.intp)
        self.topo_position = _readonly(position)
        self.entry_ids = _readonly(
            np.asarray(graph.entry_tasks(), dtype=np.intp)
        )
        self.exit_ids = _readonly(np.asarray(graph.exit_tasks(), dtype=np.intp))

        # plain-Python mirrors for the scalar hot loops (list indexing
        # beats ndarray scalar indexing on the small per-task slices the
        # EFT engines touch)
        self.w_rows: List[List[float]] = self.w.tolist()
        pred_ids_list = self.pred_ids.tolist()
        pred_costs_list = self.pred_costs.tolist()
        ptr = self.pred_indptr.tolist()
        self.pred_lists: List[Tuple[List[int], List[float]]] = [
            (pred_ids_list[ptr[t] : ptr[t + 1]], pred_costs_list[ptr[t] : ptr[t + 1]])
            for t in range(n)
        ]

        self._artifacts: Dict[object, object] = {}
        self._parent_arrays: Dict[
            Tuple[int, Optional[int]],
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ] = {}
        self._up_batches_cache: Optional[List[Tuple]] = None
        self._down_batches_cache: Optional[List[Tuple]] = None

    @staticmethod
    def _csr(adjacency, comm, forward):
        n = len(adjacency)
        indptr = np.zeros(n + 1, dtype=np.intp)
        if n:
            np.cumsum(
                np.fromiter(
                    (len(row) for row in adjacency), dtype=np.intp, count=n
                ),
                out=indptr[1:],
            )
        # flat edge-major comprehensions: one pass instead of per-node
        # extend calls; per-node edge order is the row order, unchanged
        if forward:
            ids = [other for row in adjacency for other in row]
            costs = [
                comm[(node, other)]
                for node, row in enumerate(adjacency)
                for other in row
            ]
        else:
            ids = [other for row in adjacency for other in row]
            costs = [
                comm[(other, node)]
                for node, row in enumerate(adjacency)
                for other in row
            ]
        return (
            _readonly(indptr),
            _readonly(np.asarray(ids, dtype=np.intp)),
            _readonly(np.asarray(costs, dtype=float)),
        )

    # ------------------------------------------------------------------
    # adjacency views
    # ------------------------------------------------------------------
    def succ_slice(self, task: int) -> Tuple[np.ndarray, np.ndarray]:
        """(child ids, edge costs) of ``task`` as read-only views."""
        lo, hi = self.succ_indptr[task], self.succ_indptr[task + 1]
        return self.succ_ids[lo:hi], self.succ_costs[lo:hi]

    def pred_slice(self, task: int) -> Tuple[np.ndarray, np.ndarray]:
        """(parent ids, edge costs) of ``task`` as read-only views."""
        lo, hi = self.pred_indptr[task], self.pred_indptr[task + 1]
        return self.pred_ids[lo:hi], self.pred_costs[lo:hi]

    def parent_arrays(
        self, task: int, entry: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(ids, costs, ids sans entry, costs sans entry) for one task.

        The shape the :class:`~repro.core.engine.EFTEngine` keys its
        arrival expressions on; cached here so every engine built over
        the same instance shares one resolution pass.
        """
        key = (task, entry)
        cached = self._parent_arrays.get(key)
        if cached is None:
            ids, costs = self.pred_slice(task)
            if entry is not None and ids.size and bool((ids == entry).any()):
                keep = ids != entry
                ids_ne, costs_ne = ids[keep], costs[keep]
            else:
                ids_ne, costs_ne = ids, costs
            cached = (ids, costs, ids_ne, costs_ne)
            self._parent_arrays[key] = cached
        return cached

    def entry_comm_vector(self, entry: int) -> np.ndarray:
        """Dense ``entry -> child`` communication costs (0 elsewhere)."""

        def build() -> np.ndarray:
            out = np.zeros(self.n_tasks)
            ids, costs = self.succ_slice(entry)
            out[ids] = costs
            return _readonly(out)

        return self._artifact(("entry_comm", entry), build)

    # ------------------------------------------------------------------
    # artifact cache
    # ------------------------------------------------------------------
    def _artifact(self, key, builder):
        if key not in self._artifacts:
            self._artifacts[key] = builder()
        return self._artifacts[key]

    def mean_costs(self) -> np.ndarray:
        """Eq. (1) for every task (read-only, cached)."""
        return self._artifact(
            "mean", lambda: _readonly(self.w.mean(axis=1))
        )

    def std_costs(self, ddof: int = 1) -> np.ndarray:
        """Per-task execution-time std over CPUs (read-only, cached)."""

        def build() -> np.ndarray:
            if self.n_procs <= ddof:
                return _readonly(np.zeros(self.n_tasks))
            return _readonly(self.w.std(axis=1, ddof=ddof))

        return self._artifact(("std", ddof), build)

    def upward_rank(self, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """HEFT's upward rank; cached for the default mean weights."""
        if weights is None:
            return self._artifact(
                "rank_up",
                lambda: _readonly(self._upward_kernel(self.mean_costs())),
            )
        return self._upward_kernel(np.asarray(weights, dtype=float))

    def downward_rank(self, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """CPOP's downward rank; cached for the default mean weights."""
        if weights is None:
            return self._artifact(
                "rank_down",
                lambda: _readonly(self._downward_kernel(self.mean_costs())),
            )
        return self._downward_kernel(np.asarray(weights, dtype=float))

    def oct_table(self) -> np.ndarray:
        """PEFT's Optimistic Cost Table (read-only, cached)."""
        return self._artifact(
            "oct_table", lambda: _readonly(self._oct_kernel())
        )

    def oct_rank(self) -> np.ndarray:
        """PEFT priority: per-task mean of the OCT row (cached)."""
        return self._artifact(
            "oct_rank", lambda: _readonly(self.oct_table().mean(axis=1))
        )

    def cp_min_bound(self) -> float:
        """Eq. 10 denominator: longest min-cost chain (cached)."""
        return self._artifact("cp_min", self._cp_min_kernel)

    def sequential_time(self) -> float:
        """Eq. 11 numerator: best single-CPU column sum (cached)."""
        return self._artifact(
            "sequential",
            lambda: float(self.w.sum(axis=0).min())
            if self.n_tasks
            else 0.0,
        )

    # ------------------------------------------------------------------
    # level batches for the vectorized rank kernels
    # ------------------------------------------------------------------
    def _up_batches(self) -> List[Tuple]:
        """Nodes grouped by height above the sinks, with flat CSR slices.

        Batch ``h`` holds every node whose longest hop-path to a sink is
        ``h`` (so all its successors live in strictly lower batches and
        ``h >= 1`` nodes always have at least one successor -- reduceat
        segments are never empty).  Each entry is ``(nodes, flat, offsets,
        counts)``: gather ``succ_ids[flat]`` / ``succ_costs[flat]`` and
        reduce per node at ``offsets``.
        """
        if self._up_batches_cache is None:
            self._up_batches_cache = self._level_batches(
                self.succ_indptr, self.succ_ids, reverse=True
            )
        return self._up_batches_cache

    def _down_batches(self) -> List[Tuple]:
        """Nodes grouped by depth below the entries (predecessor CSR)."""
        if self._down_batches_cache is None:
            self._down_batches_cache = self._level_batches(
                self.pred_indptr, self.pred_ids, reverse=False
            )
        return self._down_batches_cache

    def _level_batches(self, indptr, ids, reverse: bool) -> List[Tuple]:
        n = self.n_tasks
        ptr = indptr.tolist()
        flat_ids = ids.tolist()
        level = [0] * n
        order = reversed(self._topo_tuple) if reverse else self._topo_tuple
        for t in order:
            lo, hi = ptr[t], ptr[t + 1]
            if lo != hi:
                level[t] = 1 + max(level[s] for s in flat_ids[lo:hi])
        buckets: List[List[int]] = [[] for _ in range(max(level, default=0) + 1)]
        for t, h in enumerate(level):
            buckets[h].append(t)
        batches: List[Tuple] = []
        for nodes in buckets[1:]:
            nodes_arr = np.asarray(nodes, dtype=np.intp)
            starts = indptr[nodes_arr]
            counts = indptr[nodes_arr + 1] - starts
            flat, offsets = _ragged_indices(starts, counts)
            batches.append((nodes_arr, flat, offsets, counts))
        return batches

    # ------------------------------------------------------------------
    # rank kernels (bit-identical to the scalar recursions)
    # ------------------------------------------------------------------
    def _upward_kernel(self, wts: np.ndarray) -> np.ndarray:
        # sinks: rank = w + 0.0 (the scalar loop's best stays 0.0)
        rank = wts + 0.0
        ids, costs = self.succ_ids, self.succ_costs
        for nodes, flat, offsets, _ in self._up_batches():
            candidates = costs[flat] + rank[ids[flat]]
            best = np.maximum.reduceat(candidates, offsets)
            rank[nodes] = wts[nodes] + np.maximum(best, 0.0)
        return rank

    def _downward_kernel(self, wts: np.ndarray) -> np.ndarray:
        rank = np.zeros(self.n_tasks)
        ids, costs = self.pred_ids, self.pred_costs
        for nodes, flat, offsets, _ in self._down_batches():
            preds = ids[flat]
            candidates = rank[preds] + wts[preds] + costs[flat]
            best = np.maximum.reduceat(candidates, offsets)
            rank[nodes] = np.maximum(best, 0.0)
        return rank

    def _oct_kernel(self) -> np.ndarray:
        n, p = self.n_tasks, self.n_procs
        w = self.w
        table = np.zeros((n, p))
        ids, costs = self.succ_ids, self.succ_costs
        for nodes, flat, offsets, _ in self._up_batches():
            succ = ids[flat]
            base = table[succ] + w[succ]
            with_comm = base + costs[flat][:, None]
            global_min = with_comm.min(axis=1)
            per_p = np.minimum(global_min[:, None], base)
            rows = np.maximum.reduceat(per_p, offsets, axis=0)
            np.maximum(rows, 0.0, out=rows)
            table[nodes] = rows
        return table

    def _cp_min_kernel(self) -> float:
        if not self.n_tasks:
            return float(-np.inf)
        min_costs = self.w.min(axis=1)
        dist = np.full(self.n_tasks, -np.inf)
        dist[self.entry_ids] = min_costs[self.entry_ids]
        ids = self.pred_ids
        for nodes, flat, offsets, counts in self._down_batches():
            # reference order: (dist[pred] + comm) + node_weight, comm=0.0
            candidates = (dist[ids[flat]] + 0.0) + np.repeat(
                min_costs[nodes], counts
            )
            dist[nodes] = np.maximum.reduceat(candidates, offsets)
        return float(dist.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGraph(n_tasks={self.n_tasks}, "
            f"n_edges={len(self.succ_ids)}, n_procs={self.n_procs}, "
            f"artifacts={sorted(map(str, self._artifacts))})"
        )

"""Level decomposition of a task graph.

The paper distributes the ``v`` tasks of a workflow over ``k`` precedence
levels (Section III); tasks on the same level are independent and may run
in parallel.  The level of a task is the length (in hops) of the longest
path from any entry task -- the standard "as soon as possible" depth, which
is also what PETS's level-sort phase uses.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.task_graph import TaskGraph

__all__ = ["task_levels", "level_decomposition", "graph_height", "graph_width"]


def task_levels(graph: TaskGraph) -> List[int]:
    """Longest-hop-path depth of every task (entry tasks are level 0)."""
    levels = [0] * graph.n_tasks
    for task in graph.topological_order():
        for succ in graph.successors(task):
            if levels[task] + 1 > levels[succ]:
                levels[succ] = levels[task] + 1
    return levels


def level_decomposition(graph: TaskGraph) -> List[Tuple[int, ...]]:
    """Tasks grouped by level, in ascending level order."""
    levels = task_levels(graph)
    if not levels:
        return []
    buckets: Dict[int, List[int]] = {}
    for task, level in enumerate(levels):
        buckets.setdefault(level, []).append(task)
    return [tuple(buckets[k]) for k in sorted(buckets)]


def graph_height(graph: TaskGraph) -> int:
    """Number of levels ``k`` of the workflow."""
    levels = task_levels(graph)
    return (max(levels) + 1) if levels else 0


def graph_width(graph: TaskGraph) -> int:
    """Maximum number of mutually independent tasks on one level."""
    decomposition = level_decomposition(graph)
    return max((len(level) for level in decomposition), default=0)

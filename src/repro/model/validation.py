"""Structural validation of task graphs.

Schedulers assume a well-formed problem instance: a DAG (acyclic), every
cost finite and non-negative, and -- after normalization -- a unique entry
and exit.  ``validate_task_graph`` checks all of it and reports *every*
violation at once, which makes generator bugs much easier to diagnose than
a fail-fast assertion would.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.model.task_graph import TaskGraph

__all__ = ["ValidationError", "validate_task_graph", "is_connected_to_entry"]


class ValidationError(ValueError):
    """Raised when a task graph violates the model's structural contract."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def _is_acyclic(graph: TaskGraph) -> bool:
    try:
        graph.topological_order()
        return True
    except ValueError:
        return False


def is_connected_to_entry(graph: TaskGraph) -> bool:
    """True when every task is reachable from some entry task."""
    if graph.n_tasks == 0:
        return True
    seen = [False] * graph.n_tasks
    stack = list(graph.entry_tasks())
    for t in stack:
        seen[t] = True
    while stack:
        t = stack.pop()
        for s in graph.successors(t):
            if not seen[s]:
                seen[s] = True
                stack.append(s)
    return all(seen)


def validate_task_graph(
    graph: TaskGraph,
    require_single_entry: bool = False,
    require_single_exit: bool = False,
    require_connected: bool = True,
) -> None:
    """Raise :class:`ValidationError` listing every structural problem."""
    problems: List[str] = []
    if graph.n_tasks == 0:
        raise ValidationError(["graph has no tasks"])

    if not _is_acyclic(graph):
        problems.append("graph contains a cycle")

    w = graph.cost_matrix()
    if not np.all(np.isfinite(w)):
        problems.append("non-finite computation cost")
    if np.any(w < 0):
        problems.append("negative computation cost")

    for edge in graph.edges():
        if edge.cost < 0 or not np.isfinite(edge.cost):
            problems.append(
                f"edge ({edge.src}, {edge.dst}) has invalid cost {edge.cost}"
            )

    entries = graph.entry_tasks()
    exits = graph.exit_tasks()
    if not entries and _is_acyclic(graph):
        problems.append("graph has no entry task")
    if not exits and _is_acyclic(graph):
        problems.append("graph has no exit task")
    if require_single_entry and len(entries) != 1:
        problems.append(f"expected a single entry task, found {len(entries)}")
    if require_single_exit and len(exits) != 1:
        problems.append(f"expected a single exit task, found {len(exits)}")

    if require_connected and _is_acyclic(graph) and not is_connected_to_entry(graph):
        problems.append("some tasks are unreachable from the entry tasks")

    if problems:
        raise ValidationError(problems)

"""The central DAG data structure shared by every scheduler and generator.

A :class:`TaskGraph` couples three things:

* the precedence DAG ``G = (V, E)`` (Section III of the paper),
* the ``n x p`` computation-cost matrix ``W`` (Definition 1), and
* the per-edge communication costs ``C`` (Definition 2).

Tasks are dense integer ids ``0 .. n-1``.  The structure is built
incrementally (``add_task`` / ``add_edge``) and exposes cached derived
views (topological order, predecessors, entry/exit tasks) that are
invalidated automatically on mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TaskGraph", "Edge"]


@dataclass(frozen=True)
class Edge:
    """A precedence-constrained data transfer between two tasks."""

    src: int
    dst: int
    cost: float

    def __iter__(self) -> Iterator[float]:
        return iter((self.src, self.dst, self.cost))


class TaskGraph:
    """Directed acyclic task graph with heterogeneous execution costs.

    Parameters
    ----------
    n_procs:
        Number of CPUs in the heterogeneous computing environment. The
        computation-cost matrix ``W`` has one column per CPU.
    names:
        Optional human-readable task names (useful for real-world
        workflows such as Montage where tasks have job types).
    """

    def __init__(self, n_procs: int) -> None:
        if n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        self._n_procs = int(n_procs)
        self._costs: List[np.ndarray] = []
        self._names: List[str] = []
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []
        self._comm: Dict[Tuple[int, int], float] = {}
        self._version = 0
        self._cache: Dict[str, object] = {}
        self._cache_version = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, costs: Sequence[float], name: Optional[str] = None) -> int:
        """Add a task with its per-CPU execution costs; returns the task id."""
        row = np.asarray(costs, dtype=float)
        if row.shape != (self._n_procs,):
            raise ValueError(
                f"expected {self._n_procs} costs, got shape {row.shape}"
            )
        if np.any(row < 0) or not np.all(np.isfinite(row)):
            raise ValueError(f"costs must be finite and non-negative: {row}")
        tid = len(self._costs)
        self._costs.append(row)
        self._names.append(name if name is not None else f"T{tid + 1}")
        self._succ.append([])
        self._pred.append([])
        self._version += 1
        return tid

    def add_edge(self, src: int, dst: int, cost: float) -> None:
        """Add a dependency ``src -> dst`` with communication cost ``cost``.

        The cost is the time to ship the edge's data between *distinct*
        CPUs; schedulers treat it as zero when both endpoints land on the
        same CPU (Definition 2).
        """
        self._check_task(src)
        self._check_task(dst)
        if src == dst:
            raise ValueError(f"self-loop on task {src}")
        if cost < 0 or not np.isfinite(cost):
            raise ValueError(f"communication cost must be finite and >= 0: {cost}")
        if (src, dst) in self._comm:
            raise ValueError(f"duplicate edge ({src}, {dst})")
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._comm[(src, dst)] = float(cost)
        self._version += 1

    def _check_task(self, tid: int) -> None:
        if not 0 <= tid < len(self._costs):
            raise KeyError(f"unknown task id {tid}")

    @classmethod
    def _bulk(
        cls,
        n_procs: int,
        rows: Sequence[np.ndarray],
        names: Optional[Sequence[str]],
        edge_src: Sequence[int],
        edge_dst: Sequence[int],
        edge_costs: Sequence[float],
    ) -> "TaskGraph":
        """Trusted bulk constructor (package-internal).

        Skips the per-element validation of ``add_task``/``add_edge``;
        callers (the generator, ``normalized``, ``scaled_comm``)
        guarantee float64 ``(n_procs,)`` cost rows, valid acyclic edges
        and Python-float communication costs.  Edge order defines the
        same ``_succ``/``_pred``/``_comm`` insertion order the
        incremental path would produce.
        """
        graph = cls(n_procs)
        graph._costs = list(rows)
        n = len(graph._costs)
        graph._names = (
            list(names) if names is not None else [f"T{i + 1}" for i in range(n)]
        )
        succ: List[List[int]] = [[] for _ in range(n)]
        pred: List[List[int]] = [[] for _ in range(n)]
        comm: Dict[Tuple[int, int], float] = {}
        for src, dst, cost in zip(edge_src, edge_dst, edge_costs):
            succ[src].append(dst)
            pred[dst].append(src)
            comm[(src, dst)] = cost
        graph._succ = succ
        graph._pred = pred
        graph._comm = comm
        graph._version += 1
        return graph

    @classmethod
    def from_arrays(
        cls,
        costs: np.ndarray,
        edges: Iterable[Tuple[int, int, float]],
        names: Optional[Sequence[str]] = None,
    ) -> "TaskGraph":
        """Build a graph from an ``(n, p)`` cost matrix and an edge list."""
        costs = np.asarray(costs, dtype=float)
        if costs.ndim != 2:
            raise ValueError("costs must be a 2-D (n_tasks, n_procs) array")
        graph = cls(costs.shape[1])
        for i, row in enumerate(costs):
            graph.add_task(row, name=None if names is None else names[i])
        for src, dst, cost in edges:
            graph.add_edge(int(src), int(dst), float(cost))
        return graph

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._costs)

    @property
    def n_procs(self) -> int:
        return self._n_procs

    @property
    def n_edges(self) -> int:
        return len(self._comm)

    def tasks(self) -> range:
        """Iterable of task ids (0 .. n_tasks-1)."""
        return range(self.n_tasks)

    def procs(self) -> range:
        """Iterable of CPU indices (0 .. n_procs-1)."""
        return range(self._n_procs)

    def name(self, tid: int) -> str:
        """Human-readable task name."""
        self._check_task(tid)
        return self._names[tid]

    def cost(self, tid: int, proc: int) -> float:
        """Execution time of ``tid`` on CPU ``proc`` -- ``W(v_i, m_p)``."""
        return float(self._costs[tid][proc])

    def cost_row(self, tid: int) -> np.ndarray:
        """The task's execution-time vector across all CPUs (read-only)."""
        self._check_task(tid)
        row = self._costs[tid]
        row.flags.writeable = False
        return row

    def cost_matrix(self) -> np.ndarray:
        """The full ``(n_tasks, n_procs)`` matrix ``W`` as a fresh array."""
        if self.n_tasks == 0:
            return np.zeros((0, self._n_procs))
        return np.vstack(self._costs)

    def successors(self, tid: int) -> Tuple[int, ...]:
        """Direct children of ``tid``."""
        self._check_task(tid)
        return tuple(self._succ[tid])

    def predecessors(self, tid: int) -> Tuple[int, ...]:
        """Direct parents of ``tid``."""
        self._check_task(tid)
        return tuple(self._pred[tid])

    def out_degree(self, tid: int) -> int:
        """Number of children."""
        return len(self._succ[tid])

    def in_degree(self, tid: int) -> int:
        """Number of parents."""
        return len(self._pred[tid])

    def has_edge(self, src: int, dst: int) -> bool:
        """True when the dependency ``src -> dst`` exists."""
        return (src, dst) in self._comm

    def comm_cost(self, src: int, dst: int) -> float:
        """Inter-CPU communication cost of edge ``src -> dst``."""
        try:
            return self._comm[(src, dst)]
        except KeyError:
            raise KeyError(f"no edge ({src}, {dst})") from None

    def edges(self) -> Iterator[Edge]:
        """Iterate every dependency as an :class:`Edge`."""
        for (src, dst), cost in self._comm.items():
            yield Edge(src, dst, cost)

    # ------------------------------------------------------------------
    # cached derived views
    # ------------------------------------------------------------------
    def _derived(self, key: str, builder) -> object:
        if self._cache_version != self._version:
            self._cache.clear()
            self._cache_version = self._version
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def derived(self, key: str, builder) -> object:
        """Version-keyed cache for values derived from this graph.

        ``builder()`` runs at most once per graph version; any mutation
        (``add_task``/``add_edge``) invalidates every cached value.  The
        compiled layer (:func:`repro.model.compiled.compile_graph`)
        stores its per-instance artifact cache here so all schedulers
        running on the same instance share it.
        """
        return self._derived(key, builder)

    def topological_order(self) -> Tuple[int, ...]:
        """Kahn topological order; raises ``ValueError`` on a cycle."""

        def build() -> Tuple[int, ...]:
            indeg = [len(p) for p in self._pred]
            stack = [t for t in self.tasks() if indeg[t] == 0]
            order: List[int] = []
            while stack:
                t = stack.pop()
                order.append(t)
                for s in self._succ[t]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        stack.append(s)
            if len(order) != self.n_tasks:
                raise ValueError("task graph contains a cycle")
            return tuple(order)

        return self._derived("topo", build)  # type: ignore[return-value]

    def entry_tasks(self) -> Tuple[int, ...]:
        """Tasks with no parents."""
        return self._derived(
            "entries",
            lambda: tuple(t for t in self.tasks() if not self._pred[t]),
        )  # type: ignore[return-value]

    def exit_tasks(self) -> Tuple[int, ...]:
        """Tasks with no children."""
        return self._derived(
            "exits",
            lambda: tuple(t for t in self.tasks() if not self._succ[t]),
        )  # type: ignore[return-value]

    @property
    def entry_task(self) -> int:
        """The unique entry task; raises if the graph has several."""
        entries = self.entry_tasks()
        if len(entries) != 1:
            raise ValueError(
                f"graph has {len(entries)} entry tasks; call normalized() first"
            )
        return entries[0]

    @property
    def exit_task(self) -> int:
        """The unique exit task; raises if the graph has several."""
        exits = self.exit_tasks()
        if len(exits) != 1:
            raise ValueError(
                f"graph has {len(exits)} exit tasks; call normalized() first"
            )
        return exits[0]

    # ------------------------------------------------------------------
    # normalization (pseudo entry / exit tasks, Section III)
    # ------------------------------------------------------------------
    def normalized(self) -> "TaskGraph":
        """Return a graph with a single entry and a single exit task.

        Multi-entry / multi-exit graphs gain a *pseudo task* with zero
        computation cost connected with zero communication cost, exactly
        as the paper's Section III prescribes.  Graphs that are already
        single-entry/single-exit are returned as a structural copy.
        """
        entries = self.entry_tasks()
        exits = self.exit_tasks()
        rows = list(self._costs)
        names = list(self._names)
        edge_src: List[int] = []
        edge_dst: List[int] = []
        edge_costs: List[float] = []
        for (src, dst), cost in self._comm.items():
            edge_src.append(src)
            edge_dst.append(dst)
            edge_costs.append(cost)
        if len(entries) > 1:
            pseudo = len(rows)
            rows.append(np.zeros(self._n_procs))
            names.append("pseudo_entry")
            for t in entries:
                edge_src.append(pseudo)
                edge_dst.append(t)
                edge_costs.append(0.0)
        if len(exits) > 1:
            pseudo = len(rows)
            rows.append(np.zeros(self._n_procs))
            names.append("pseudo_exit")
            for t in exits:
                edge_src.append(t)
                edge_dst.append(pseudo)
                edge_costs.append(0.0)
        return TaskGraph._bulk(
            self._n_procs, rows, names, edge_src, edge_dst, edge_costs
        )

    # ------------------------------------------------------------------
    # conversions / misc
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (costs become attributes)."""
        import networkx as nx

        g = nx.DiGraph()
        for tid in self.tasks():
            g.add_node(tid, name=self._names[tid], costs=self._costs[tid].copy())
        for (src, dst), cost in self._comm.items():
            g.add_edge(src, dst, cost=cost)
        return g

    def scaled_comm(self, factor: float) -> "TaskGraph":
        """Copy of the graph with every communication cost multiplied.

        Handy for CCR sweeps over a fixed topology (Figs 7, 10, 13).
        """
        if factor < 0 or not np.isfinite(factor):
            raise ValueError("factor must be finite and >= 0")
        edge_src = [src for (src, _) in self._comm]
        edge_dst = [dst for (_, dst) in self._comm]
        edge_costs = [cost * factor for cost in self._comm.values()]
        return TaskGraph._bulk(
            self._n_procs,
            list(self._costs),
            list(self._names),
            edge_src,
            edge_dst,
            edge_costs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph(n_tasks={self.n_tasks}, n_edges={self.n_edges}, "
            f"n_procs={self._n_procs})"
        )

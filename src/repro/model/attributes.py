"""Scalar attributes of the scheduling problem (Definitions 1-9).

These are the primitive quantities every list scheduler builds on: mean
execution time (Eq. 1), placement-aware communication cost (Eq. 2) and the
sample standard deviation used by the HDLTS penalty value (Eq. 8) and by
SDBATS ranks.  Schedule-state-dependent quantities (Ready/EST/EFT, Eqs. 5-7)
live with the timeline substrate in :mod:`repro.schedule`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.compiled import compile_graph, compiled_enabled
from repro.model.task_graph import TaskGraph

__all__ = [
    "mean_execution_time",
    "mean_execution_times",
    "communication_cost",
    "sample_std",
    "std_execution_times",
]


def mean_execution_time(graph: TaskGraph, task: int) -> float:
    """Mean of a task's execution time over all CPUs -- Eq. (1)."""
    return float(graph.cost_row(task).mean())


def mean_execution_times(graph: TaskGraph) -> np.ndarray:
    """Vector of Eq. (1) values for every task.

    Compiled layer enabled: computed once per graph instance and
    returned as a shared read-only array.
    """
    if graph.n_tasks == 0:
        return np.zeros(0)
    if compiled_enabled():
        return compile_graph(graph).mean_costs()
    return graph.cost_matrix().mean(axis=1)


def std_execution_times(graph: TaskGraph, ddof: int = 1) -> np.ndarray:
    """Per-task standard deviation of execution time across CPUs.

    SDBATS keys its upward rank on this heterogeneity measure.  With a
    single CPU the deviation is defined as zero.
    """
    if graph.n_tasks == 0:
        return np.zeros(0)
    if compiled_enabled():
        return compile_graph(graph).std_costs(ddof=ddof)
    w = graph.cost_matrix()
    if graph.n_procs <= ddof:
        return np.zeros(graph.n_tasks)
    return w.std(axis=1, ddof=ddof)


def communication_cost(
    graph: TaskGraph,
    src: int,
    dst: int,
    src_proc: Optional[int] = None,
    dst_proc: Optional[int] = None,
) -> float:
    """Placement-aware communication cost -- Eq. (2).

    When both endpoints are mapped to the same CPU the cost collapses to
    zero; when either placement is unknown (``None``) the full inter-CPU
    cost is returned (the pessimistic pre-placement estimate).
    """
    if src_proc is not None and src_proc == dst_proc:
        return 0.0
    return graph.comm_cost(src, dst)


def sample_std(values: np.ndarray) -> float:
    """Sample standard deviation (ddof=1) -- the PV convention, Eq. (8).

    Verified against every penalty value in the paper's Table I trace
    (see DESIGN.md).  Degenerates to 0.0 for a single value so that a
    1-CPU platform still yields a total order.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size <= 1:
        return 0.0
    return float(arr.std(ddof=1))

"""Graph transformations: transitive reduction and edge statistics.

Random layered generators (ours included, and the one the paper
describes) can emit *redundant* edges -- dependencies already implied by
a longer path.  Redundant edges never change which schedules are
feasible, but they do change EFT arithmetic (a direct edge carries a
communication cost the transitive path might beat), inflate rank
computations and slow every scheduler down.  ``transitive_reduction``
removes every edge whose endpoints stay connected without it, keeping
costs of surviving edges untouched.

Note the semantic caveat, preserved deliberately: removing a redundant
edge also removes its *communication cost*, so schedules of the reduced
graph may legally start tasks earlier.  The reduction is therefore an
explicit modelling choice (exposed as a utility and a generator option),
never applied silently.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.model.task_graph import TaskGraph

__all__ = ["transitive_reduction", "redundant_edges"]


def _reachable_without(
    graph: TaskGraph, src: int, dst: int, skip: Tuple[int, int]
) -> bool:
    """Is ``dst`` reachable from ``src`` ignoring the edge ``skip``?"""
    stack = [
        s
        for s in graph.successors(src)
        if (src, s) != skip
    ]
    seen: Set[int] = set(stack)
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


def redundant_edges(graph: TaskGraph) -> List[Tuple[int, int]]:
    """Edges implied by a longer path (removable without changing
    the precedence relation)."""
    return [
        (edge.src, edge.dst)
        for edge in graph.edges()
        if _reachable_without(graph, edge.src, edge.dst, (edge.src, edge.dst))
    ]


def transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """A copy of ``graph`` with every redundant edge removed.

    The result has the same reachability relation (hence the same set
    of precedence-feasible schedules) with the minimum edge set.  Edge
    costs of surviving edges are preserved.
    """
    redundant = set(redundant_edges(graph))
    reduced = TaskGraph(graph.n_procs)
    for task in graph.tasks():
        reduced.add_task(graph.cost_row(task), name=graph.name(task))
    for edge in graph.edges():
        if (edge.src, edge.dst) not in redundant:
            reduced.add_edge(edge.src, edge.dst, edge.cost)
    return reduced

"""Workflow / platform model substrate.

This package provides the static application-workflow model of the paper's
Section III: a DAG of tasks with a per-(task, CPU) computation-cost matrix
``W`` and per-edge communication costs, plus the heterogeneous-platform model
(Definitions 1-2) that compiles a *physical* workflow (instruction counts,
data volumes) against a CPU/bandwidth description into the abstract cost
model every scheduler consumes.
"""

from repro.model.task_graph import TaskGraph, Edge
from repro.model.compiled import (
    CompiledGraph,
    compile_graph,
    compiled_enabled,
    use_compiled,
)
from repro.model.platform import Platform, Workflow, compile_workflow
from repro.model.attributes import (
    mean_execution_time,
    mean_execution_times,
    communication_cost,
    sample_std,
)
from repro.model.levels import level_decomposition, graph_height, graph_width
from repro.model.ranking import (
    upward_rank,
    downward_rank,
    optimistic_cost_table,
)
from repro.model.validation import ValidationError, validate_task_graph
from repro.model.reduction import transitive_reduction, redundant_edges
from repro.model.profile import GraphProfile, graph_profile

__all__ = [
    "TaskGraph",
    "Edge",
    "CompiledGraph",
    "compile_graph",
    "compiled_enabled",
    "use_compiled",
    "Platform",
    "Workflow",
    "compile_workflow",
    "mean_execution_time",
    "mean_execution_times",
    "communication_cost",
    "sample_std",
    "level_decomposition",
    "graph_height",
    "graph_width",
    "upward_rank",
    "downward_rank",
    "optimistic_cost_table",
    "ValidationError",
    "validate_task_graph",
    "transitive_reduction",
    "redundant_edges",
    "GraphProfile",
    "graph_profile",
]

"""Workload characterization: the DAG-shape metrics of this literature.

Experiment write-ups in the HEFT/PEFT/HDLTS lineage describe workloads
with a standard vocabulary -- realized CCR, parallelism, edge density,
critical-path dominance.  :func:`graph_profile` computes all of it for
any :class:`~repro.model.task_graph.TaskGraph`, so generated and
real-world workloads can be compared on the same axes (and generator
targets can be verified: the tests check that requested CCR/alpha/beta
actually materialize).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.critical_path import cp_min_lower_bound
from repro.model.levels import graph_height, graph_width
from repro.model.task_graph import TaskGraph

__all__ = ["GraphProfile", "graph_profile"]


@dataclass(frozen=True)
class GraphProfile:
    """Shape and cost statistics of one workload."""

    n_tasks: int
    n_edges: int
    n_procs: int
    height: int
    width: int
    #: mean out-degree over non-exit tasks (the generator's `density`)
    density: float
    #: realized communication-to-computation ratio
    ccr: float
    #: mean over tasks of (max - min) / mean cost -- realized `beta`-like spread
    heterogeneity: float
    mean_computation: float
    mean_communication: float
    #: min-cost critical path over total min-cost work: 1/n (fully
    #: parallel) .. 1.0 (a pure chain); higher = more serial
    serialism: float
    #: mean level width over CPU count -- >1 means the platform can be kept busy
    parallelism: float

    def format(self) -> str:
        """Aligned text block (used by ``repro generate``-style output)."""
        return "\n".join(
            [
                f"tasks/edges/CPUs  {self.n_tasks} / {self.n_edges} / {self.n_procs}",
                f"height x width    {self.height} x {self.width}",
                f"density           {self.density:.2f} (mean out-degree)",
                f"realized CCR      {self.ccr:.2f}",
                f"heterogeneity     {self.heterogeneity:.2f} (mean cost spread)",
                f"serialism         {self.serialism:.2f} (CP share of total work)",
                f"parallelism       {self.parallelism:.2f} (mean width / CPUs)",
            ]
        )


def graph_profile(graph: TaskGraph) -> GraphProfile:
    """Compute the full shape/cost profile of a workload."""
    if graph.n_tasks == 0:
        raise ValueError("cannot profile an empty graph")
    w = graph.cost_matrix()
    means = w.mean(axis=1)
    comm = np.array([e.cost for e in graph.edges()]) if graph.n_edges else np.zeros(0)

    non_exit = [t for t in graph.tasks() if graph.out_degree(t) > 0]
    density = (
        float(np.mean([graph.out_degree(t) for t in non_exit]))
        if non_exit
        else 0.0
    )
    mean_comp = float(means.mean())
    mean_comm = float(comm.mean()) if comm.size else 0.0
    ccr = mean_comm / mean_comp if mean_comp > 0 else 0.0

    nonzero = means > 1e-12
    if nonzero.any():
        spread = (w.max(axis=1) - w.min(axis=1))[nonzero] / means[nonzero]
        heterogeneity = float(spread.mean())
    else:
        heterogeneity = 0.0

    total_min_work = float(w.min(axis=1).sum())
    serialism = (
        cp_min_lower_bound(graph) / total_min_work if total_min_work > 0 else 1.0
    )

    height = graph_height(graph)
    parallelism = (graph.n_tasks / height) / graph.n_procs if height else 0.0

    return GraphProfile(
        n_tasks=graph.n_tasks,
        n_edges=graph.n_edges,
        n_procs=graph.n_procs,
        height=height,
        width=graph_width(graph),
        density=density,
        ccr=ccr,
        heterogeneity=heterogeneity,
        mean_computation=mean_comp,
        mean_communication=mean_comm,
        serialism=serialism,
        parallelism=parallelism,
    )

"""Static rank functions shared by the baseline list schedulers.

``upward_rank`` / ``downward_rank`` are the HEFT/CPOP recursions (Topcuoglu
et al., TPDS 2002) parameterized by the per-task node weight, so SDBATS can
reuse the same recursion with the standard deviation of the cost row instead
of its mean.  ``optimistic_cost_table`` is PEFT's OCT (Arabnejad & Barbosa,
TPDS 2014).

Each function dispatches to the level-batched CSR kernels of
:mod:`repro.model.compiled` when the compiled layer is enabled (the
default): ranks computed with default weights are then cached per graph
instance, so every scheduler of a paired-comparison replication shares
one pass.  Cached arrays are returned read-only.  The ``*_reference``
variants keep the original per-node recursions -- the differential
suite asserts the two are bit-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.attributes import mean_execution_times
from repro.model.compiled import compile_graph, compiled_enabled
from repro.model.task_graph import TaskGraph

__all__ = [
    "upward_rank",
    "downward_rank",
    "optimistic_cost_table",
    "oct_rank",
    "upward_rank_reference",
    "downward_rank_reference",
    "optimistic_cost_table_reference",
]

NodeWeights = Optional[np.ndarray]


def _node_weights(graph: TaskGraph, weights: NodeWeights) -> np.ndarray:
    if weights is None:
        return mean_execution_times(graph)
    arr = np.asarray(weights, dtype=float)
    if arr.shape != (graph.n_tasks,):
        raise ValueError(
            f"weights must have shape ({graph.n_tasks},), got {arr.shape}"
        )
    return arr


def upward_rank(graph: TaskGraph, weights: NodeWeights = None) -> np.ndarray:
    """Upward rank: ``rank_u(i) = w(i) + max_j (c(i,j) + rank_u(j))``.

    ``weights`` defaults to the mean execution time (HEFT); pass
    ``std_execution_times(graph)`` for the SDBATS variant.  Exit tasks
    have rank equal to their own weight.  With default weights the
    vector is computed once per graph instance and shared (read-only).
    """
    if compiled_enabled():
        compiled = compile_graph(graph)
        if weights is None:
            return compiled.upward_rank()
        return compiled.upward_rank(_node_weights(graph, weights))
    return upward_rank_reference(graph, weights)


def upward_rank_reference(
    graph: TaskGraph, weights: NodeWeights = None
) -> np.ndarray:
    """Per-node recursion for :func:`upward_rank` (bit-identity oracle)."""
    w = _node_weights(graph, weights)
    rank = np.zeros(graph.n_tasks)
    for task in reversed(graph.topological_order()):
        best = 0.0
        for succ in graph.successors(task):
            candidate = graph.comm_cost(task, succ) + rank[succ]
            if candidate > best:
                best = candidate
        rank[task] = w[task] + best
    return rank


def downward_rank(graph: TaskGraph, weights: NodeWeights = None) -> np.ndarray:
    """Downward rank: ``rank_d(i) = max_j (rank_d(j) + w(j) + c(j,i))``
    over predecessors ``j``; entry tasks have rank 0 (CPOP)."""
    if compiled_enabled():
        compiled = compile_graph(graph)
        if weights is None:
            return compiled.downward_rank()
        return compiled.downward_rank(_node_weights(graph, weights))
    return downward_rank_reference(graph, weights)


def downward_rank_reference(
    graph: TaskGraph, weights: NodeWeights = None
) -> np.ndarray:
    """Per-node recursion for :func:`downward_rank` (bit-identity oracle)."""
    w = _node_weights(graph, weights)
    rank = np.zeros(graph.n_tasks)
    for task in graph.topological_order():
        best = 0.0
        for pred in graph.predecessors(task):
            candidate = rank[pred] + w[pred] + graph.comm_cost(pred, task)
            if candidate > best:
                best = candidate
        rank[task] = best
    return rank


def optimistic_cost_table(graph: TaskGraph) -> np.ndarray:
    """PEFT's Optimistic Cost Table.

    ``OCT(i, p)`` is the optimistic remaining path length from task ``i``
    (excluding ``i`` itself) to the exit, assuming each descendant picks
    its best CPU::

        OCT(i, p) = max_{j in succ(i)} min_q [ OCT(j, q) + w(j, q)
                                               + (c(i, j) if q != p else 0) ]

    Exit tasks have an all-zero row.  Compiled layer enabled: computed
    once per graph instance and shared (read-only).
    """
    if compiled_enabled():
        return compile_graph(graph).oct_table()
    return optimistic_cost_table_reference(graph)


def optimistic_cost_table_reference(graph: TaskGraph) -> np.ndarray:
    """Per-node recursion for :func:`optimistic_cost_table` (oracle)."""
    n, p = graph.n_tasks, graph.n_procs
    table = np.zeros((n, p))
    w = graph.cost_matrix()
    for task in reversed(graph.topological_order()):
        succs = graph.successors(task)
        if not succs:
            continue
        row = np.zeros(p)
        for succ in succs:
            # cost of running succ on each CPU q, given task is on CPU p:
            # base(q) = OCT(succ, q) + w(succ, q); add c(task, succ) unless q == p.
            base = table[succ] + w[succ]
            comm = graph.comm_cost(task, succ)
            # For each p, min over q of base(q) + comm*(q != p)
            with_comm = base + comm
            global_min = with_comm.min()
            # choosing q == p drops the comm term
            per_p = np.minimum(global_min, base)
            np.maximum(row, per_p, out=row)
        table[task] = row
    return table


def oct_rank(graph: TaskGraph, table: Optional[np.ndarray] = None) -> np.ndarray:
    """PEFT priority: average of the task's OCT row over CPUs."""
    if table is None:
        if compiled_enabled():
            return compile_graph(graph).oct_rank()
        table = optimistic_cost_table_reference(graph)
    return table.mean(axis=1)

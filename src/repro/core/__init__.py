"""HDLTS -- the paper's primary contribution.

Heterogeneous Dynamic List Task Scheduling (Section IV): a dynamic ready
list (the Independent Task Queue) re-prioritized every step by the penalty
value (sample standard deviation of the task's EFT vector across CPUs),
min-EFT CPU selection, and effective entry-task duplication (Algorithm 1).
"""

from repro.core.base import Scheduler, SchedulingResult
from repro.core.engine import EFTEngine
from repro.core.hdlts import HDLTS, PriorityRule
from repro.core.itq import IndependentTaskQueue
from repro.core.duplication import entry_duplication_plan, DuplicationDecision
from repro.core.trace import TraceStep, format_trace

__all__ = [
    "Scheduler",
    "SchedulingResult",
    "EFTEngine",
    "HDLTS",
    "PriorityRule",
    "IndependentTaskQueue",
    "entry_duplication_plan",
    "DuplicationDecision",
    "TraceStep",
    "format_trace",
]

"""The Independent Task Queue (ITQ).

The paper's dynamic ready list: a task enters the ITQ the moment its last
parent is mapped, and leaves when it is mapped itself.  Priorities are
*not* stored here -- HDLTS recomputes them from the platform state on
every step -- so the ITQ is a plain dependency-counting frontier with
deterministic iteration order (ascending task id, which is also the
tie-break order for equal penalty values).
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.model.task_graph import TaskGraph

__all__ = ["IndependentTaskQueue"]


class IndependentTaskQueue:
    """Dependency-counting ready frontier over a task graph."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        self._remaining = [graph.in_degree(t) for t in graph.tasks()]
        self._ready: Set[int] = {
            t for t in graph.tasks() if self._remaining[t] == 0
        }
        self._done: Set[int] = set()

    def __len__(self) -> int:
        return len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready)

    def __contains__(self, task: int) -> bool:
        return task in self._ready

    def __iter__(self) -> Iterator[int]:
        """Ready tasks in ascending id order (deterministic)."""
        return iter(sorted(self._ready))

    def ready_tasks(self) -> List[int]:
        """The current independent tasks, ascending id."""
        return sorted(self._ready)

    def complete(self, task: int) -> List[int]:
        """Mark ``task`` mapped; returns the tasks that became independent."""
        if task not in self._ready:
            raise ValueError(
                f"task {task} is not independent (ready set: {sorted(self._ready)})"
            )
        self._ready.remove(task)
        self._done.add(task)
        released: List[int] = []
        # hot path: read the adjacency list directly instead of paying
        # successors()'s bounds check and defensive tuple copy per call
        for succ in self.graph._succ[task]:
            self._remaining[succ] -= 1
            if self._remaining[succ] == 0:
                self._ready.add(succ)
                released.append(succ)
            elif self._remaining[succ] < 0:  # pragma: no cover - invariant
                raise RuntimeError(f"task {succ} released twice")
        return released

    @property
    def n_completed(self) -> int:
        return len(self._done)

    def all_mapped(self) -> bool:
        """True when every task has been completed."""
        return len(self._done) == self.graph.n_tasks

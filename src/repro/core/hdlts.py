"""Heterogeneous Dynamic List Task Scheduling (HDLTS) -- Algorithm 2.

The scheduler keeps the paper's three pillars separable so each can be
ablated:

* ``duplicate_entry`` -- pillar 1, effective entry-task duplication
  (Algorithm 1, :mod:`repro.core.duplication`);
* the dynamic ITQ -- pillar 2, only precedence-satisfied tasks are
  prioritized, and priorities are recomputed from live platform state at
  every step (:mod:`repro.core.itq`);
* ``priority`` -- pillar 3, the penalty value PV = sample standard
  deviation of the task's EFT vector over the CPUs (Eq. 8); alternative
  rules are provided for the ablation benchmarks.

Two interchangeable execution paths implement the identical algorithm:

* ``engine="fast"`` (the default) runs on the incremental vectorized
  EFT engine (:mod:`repro.core.engine`): one persistent
  ``(n_tasks x n_procs)`` ready-time matrix updated only where the last
  commit could have changed it (the released tasks' rows, and -- because
  a commit on CPU ``p`` may close Algorithm 1's duplication window there
  -- the entry children's ``p`` column), vectorized arrival computation,
  and a batch insertion-gap scan;
* ``engine="reference"`` is the original loop-per-parent/CPU
  implementation, kept as the differential-testing oracle.

The two paths are enforced to be **bit-identical** (same assignments,
same trace, same counters) by the test suite.  Semantics are pinned to
the paper's Table I worked example -- see DESIGN.md; the full trace is
reproduced bit-exactly by the test suite.
"""

from __future__ import annotations

import bisect
import enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.base import Scheduler
from repro.core.duplication import entry_duplication_plan
from repro.core.engine import EFTEngine
from repro.core.itq import IndependentTaskQueue
from repro.core.trace import TraceRecorder, TraceStep
from repro.model.task_graph import TaskGraph
from repro.runtime.context import resolve_engine
from repro.schedule.schedule import Schedule

__all__ = ["HDLTS", "PriorityRule"]


class PriorityRule(str, enum.Enum):
    """Task-selection rule applied to the ITQ each step."""

    #: the paper's penalty value: sample std (ddof=1) of the EFT vector
    PENALTY_VALUE = "pv"
    #: spread of the EFT vector (max - min): a cheaper heterogeneity proxy
    EFT_RANGE = "range"
    #: largest mean EFT first (schedule the globally slowest task early)
    MEAN_EFT = "mean_eft"
    #: smallest best-case EFT first (pure greedy; a weak strawman)
    MIN_EFT_FIRST = "min_eft"
    #: HEFT's mean-cost upward rank, applied to the dynamic ready list --
    #: isolates pillar 2 (the ITQ) from pillar 3 (the PV formula): this
    #: is "dynamic HEFT" with global downstream awareness
    UPWARD_RANK = "rank_u"


class HDLTS(Scheduler):
    """The paper's scheduler.

    Parameters
    ----------
    duplicate_entry:
        Enable Algorithm 1 (effective entry-task duplication).
    use_insertion:
        Search idle gaps for the EST instead of appending after
        ``Avail`` (the paper's trace uses append; insertion is an
        extension used by the ablation study).
    priority:
        Task-selection rule; defaults to the paper's penalty value.
    record_trace:
        Keep a per-step :class:`~repro.core.trace.TraceStep` record
        (costs memory on big graphs; required to print Table I).
    engine:
        ``"fast"`` (incremental vectorized engine) or ``"reference"``
        (the original per-parent/CPU loops); ``None`` (the default)
        defers to the active :class:`~repro.runtime.context.RunContext`
        (``"fast"`` unless overridden).  Both produce bit-identical
        schedules; see docs/performance.md.
    """

    name = "HDLTS"

    def __init__(
        self,
        duplicate_entry: bool = True,
        use_insertion: bool = False,
        priority: PriorityRule = PriorityRule.PENALTY_VALUE,
        record_trace: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        engine = resolve_engine(engine)
        self.duplicate_entry = duplicate_entry
        self.use_insertion = use_insertion
        self.priority = PriorityRule(priority)
        self.record_trace = record_trace
        self.engine = engine
        self.last_trace: Optional[List[TraceStep]] = None

    # ------------------------------------------------------------------
    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Run Algorithm 2 on ``graph`` (single-entry required)."""
        entry = graph.entry_task  # raises for multi-entry graphs
        if self.priority is PriorityRule.UPWARD_RANK:
            from repro.model.ranking import upward_rank

            self._rank_u = upward_rank(graph)

        # trace recording is just one subscriber of the decision events;
        # a JSONL sink or a test listens to the very same stream.
        bus = obs.get_bus()
        recorder: Optional[TraceRecorder] = None
        unsubscribe = None
        if self.record_trace:
            recorder = TraceRecorder(scheduler=self.name)
            unsubscribe = bus.subscribe(recorder, topics=(TraceRecorder.TOPIC,))
        try:
            if self.engine == "reference":
                schedule = self._build_reference(graph, entry, bus)
            else:
                schedule = self._build_fast(graph, entry, bus)
        finally:
            if unsubscribe is not None:
                unsubscribe()

        self.last_trace = recorder.steps if recorder is not None else None
        return schedule

    # ------------------------------------------------------------------
    # fast path: incremental vectorized EFT engine
    # ------------------------------------------------------------------
    def _build_fast(self, graph: TaskGraph, entry: int, bus) -> Schedule:
        n_tasks, n_procs = graph.n_tasks, graph.n_procs
        schedule = Schedule(graph)
        itq = IndependentTaskQueue(graph)
        engine = EFTEngine(
            schedule, entry=entry, hypothetical_entry_dup=self.duplicate_entry
        )
        w = engine.w
        avail = engine.avail
        timelines = schedule.timelines
        insertion = self.use_insertion
        entry_children = set(graph.successors(entry))
        # the paper's PV rule gets a hand-expanded sample-std kernel
        # below (same ufunc sequence numpy's ``std`` runs, an order of
        # magnitude less call overhead); every other rule goes through
        # ``_priorities`` unchanged
        pv_rule = (
            self.priority is PriorityRule.PENALTY_VALUE and n_procs > 1
        )
        # counter keys, built once: the hot loop increments thousands of
        # times and f-string assembly would dominate the disabled path
        c_eft = f"{self.name}/eft_evaluations"
        c_scan = f"{self.name}/insertion_scans"
        c_rows = f"{self.name}/ready_rows_recomputed"
        c_cols = f"{self.name}/entry_child_col_refreshes"
        c_decide = f"{self.name}/decisions"
        c_dup_yes = f"{self.name}/duplication_accepted"
        c_dup_no = f"{self.name}/duplication_rejected"

        # the persistent ready-time matrix (Definition 5 per CPU,
        # including the hypothetical entry duplicate of Algorithm 1);
        # rows are valid only for tasks currently in the ITQ
        ready = np.zeros((n_tasks, n_procs))
        # for entry children: the stable non-entry parents' component,
        # so a dirty-column refresh only recombines the entry arrival
        non_entry = np.zeros((n_tasks, n_procs))
        # insertion mode: persistent EST matrix.  A row depends only on
        # the task's ready row and the per-CPU timelines, so a commit on
        # CPU ``p`` invalidates exactly column ``p`` (plus the released
        # tasks' fresh rows) -- one batch gap scan per step instead of
        # |ITQ| x CPUs scalar scans.
        est_mat = np.zeros((n_tasks, n_procs)) if insertion else None

        # the ITQ frontier as a sorted id list (ascending id is the
        # reference tie-break order) and its entry-children subset
        ready_ids: List[int] = []
        pending_entry: List[int] = []

        def refresh_row(task: int) -> None:
            if task in entry_children:
                non_entry[task] = engine._ready_row(task, True)
                np.maximum(
                    non_entry[task],
                    engine.entry_arrival_vector(task),
                    out=ready[task],
                )
            else:
                ready[task] = engine._ready_row(task, False)
            if insertion:
                row = ready[task]
                costs = w[task]
                dest = est_mat[task]
                for q in range(n_procs):
                    dest[q] = timelines[q].earliest_start_fast(
                        row[q], costs[q], insertion=True
                    )

        for task in itq.ready_tasks():
            ready_ids.append(task)
            if task in entry_children:
                pending_entry.append(task)
            refresh_row(task)

        step = 0
        rl_arr = np.array(ready_ids, dtype=np.intp)
        while ready_ids:
            step += 1
            with obs.phase("eft_vector"):
                if insertion:
                    est = est_mat[rl_arr]
                    obs.count(c_scan, est.size)
                else:
                    est = np.maximum(ready[rl_arr], avail[None, :])
                # est is a fresh array either way (fancy indexing
                # copies), so the add can run in place: same ufunc,
                # same operand order, one allocation less per step
                eft = est
                eft += w[rl_arr]
                obs.count(c_eft, eft.size)

            if pv_rule:
                # eft.std(axis=1, ddof=1) expanded into the identical
                # ufunc sequence (bit-equal results, ~2.5x cheaper)
                mean = np.add.reduce(eft, axis=1, keepdims=True)
                mean /= n_procs
                dev = eft - mean
                dev *= dev
                var = np.add.reduce(dev, axis=1)
                var /= n_procs - 1
                priorities = np.sqrt(var)
            else:
                priorities = self._priorities(eft, ready_ids)
            index = int(priorities.argmax())  # first max -> lowest task id
            task = ready_ids[index]
            proc = int(eft[index].argmin())  # first min -> lowest CPU

            duplicated_on: Tuple[int, ...] = ()
            if (
                self.duplicate_entry
                and task != entry
                and task in entry_children
            ):
                with obs.phase("duplication_check"):
                    duplicate, arrival = engine.entry_plan(task, proc)
                    if duplicate:
                        engine.notify(
                            schedule.place(entry, proc, 0.0, duplicate=True)
                        )
                        duplicated_on = (proc,)
                if duplicate:
                    obs.count(c_dup_yes)
                    if bus.active:
                        bus.emit(
                            "scheduler.duplication",
                            scheduler=self.name,
                            step=step,
                            child=task,
                            proc=proc,
                            arrival=arrival,
                        )
                else:
                    obs.count(c_dup_no)

            # the committed start comes from live state; the ready matrix
            # cell already equals it (a materialized duplicate realizes
            # exactly the hypothetical arrival the cell was built from)
            with obs.phase("commit"):
                timeline = timelines[proc]
                cost = float(w[task, proc])
                r = float(ready[task, proc])
                if insertion:
                    start = timeline.earliest_start_fast(
                        r, cost, insertion=True
                    )
                else:
                    # append mode: earliest_start_fast reduces to
                    # max(ready, Avail) on the chosen CPU
                    avail_p = timeline._max_end
                    start = r if r > avail_p else avail_p
                # w mirrors the graph's cost table bit-for-bit, so the
                # duration pass-through skips place()'s own lookup
                assignment = schedule.place(task, proc, start, cost)
                engine.notify(assignment)
            obs.count(c_decide)

            if bus.active:
                bus.emit(
                    "scheduler.decision",
                    scheduler=self.name,
                    step=step,
                    ready_tasks=tuple(ready_ids),
                    priorities=tuple(float(v) for v in priorities),
                    selected=task,
                    eft=tuple(float(v) for v in eft[index]),
                    chosen_proc=proc,
                    start=assignment.start,
                    finish=assignment.finish,
                    duplicated_on=duplicated_on,
                )

            with obs.phase("ready_update"):
                released = itq.complete(task)
                del ready_ids[index]
                if task in entry_children:
                    pending_entry.remove(task)
                for fresh in released:
                    bisect.insort(ready_ids, fresh)
                    if fresh in entry_children:
                        bisect.insort(pending_entry, fresh)
                    refresh_row(fresh)

                # the commit (and any duplicate) only touched ``proc``;
                # the hypothetical-duplication window of pending entry
                # children may have changed there, so refresh that
                # dirty column (their non-entry component is immutable).
                if pending_entry:
                    arrivals = engine.entry_arrival_column(
                        pending_entry, proc
                    )
                    ready[pending_entry, proc] = np.maximum(
                        arrivals, non_entry[pending_entry, proc]
                    )
                rl_arr = np.fromiter(
                    ready_ids, dtype=np.intp, count=len(ready_ids)
                )
                if insertion and ready_ids:
                    # CPU ``proc``'s timeline changed (and the pending
                    # entry children's ready column with it): one batch
                    # gap scan re-derives the whole EST column
                    with obs.phase("insertion_scan"):
                        est_mat[rl_arr, proc] = timelines[
                            proc
                        ].earliest_start_batch(
                            ready[rl_arr, proc], w[rl_arr, proc],
                            insertion=True,
                        )
            obs.count(c_rows, len(released))
            obs.count(c_cols, len(pending_entry))
        return schedule

    # ------------------------------------------------------------------
    # reference path: the original per-parent/CPU loops (the oracle)
    # ------------------------------------------------------------------
    def _build_reference(self, graph: TaskGraph, entry: int, bus) -> Schedule:
        n_procs = graph.n_procs
        schedule = Schedule(graph)
        itq = IndependentTaskQueue(graph)
        w = graph.cost_matrix()
        avail = np.zeros(n_procs)
        entry_children = set(graph.successors(entry))

        # cached per-task ready-time vectors (Definition 5 per CPU,
        # including the hypothetical entry duplicate of Algorithm 1)
        ready_rows: Dict[int, np.ndarray] = {}

        def compute_ready_row(task: int) -> np.ndarray:
            row = np.zeros(n_procs)
            for parent in graph.predecessors(task):
                if parent == entry:
                    for proc in range(n_procs):
                        arrival = entry_duplication_plan(
                            schedule, entry, task, proc, self.duplicate_entry
                        ).arrival
                        if arrival > row[proc]:
                            row[proc] = arrival
                else:
                    comm = graph.comm_cost(parent, task)
                    copies = schedule.copies(parent)
                    for proc in range(n_procs):
                        arrival = min(
                            c.finish + (0.0 if c.proc == proc else comm)
                            for c in copies
                        )
                        if arrival > row[proc]:
                            row[proc] = arrival
            return row

        for task in itq.ready_tasks():
            ready_rows[task] = compute_ready_row(task)

        step = 0
        while itq:
            step += 1
            ready_list = itq.ready_tasks()
            with obs.phase("eft_vector"):
                ready_mat = np.array([ready_rows[t] for t in ready_list])
                w_ready = w[ready_list]
                if self.use_insertion:
                    with obs.phase("insertion_scan"):
                        est = np.empty_like(ready_mat)
                        for i, task in enumerate(ready_list):
                            for proc in range(n_procs):
                                est[i, proc] = schedule.timelines[
                                    proc
                                ].earliest_start(
                                    ready_mat[i, proc],
                                    w_ready[i, proc],
                                    insertion=True,
                                )
                    obs.count(f"{self.name}/insertion_scans", est.size)
                else:
                    est = np.maximum(ready_mat, avail[None, :])
                eft = est + w_ready
                obs.count(f"{self.name}/eft_evaluations", eft.size)

            priorities = self._priorities(eft, ready_list)
            index = int(np.argmax(priorities))  # first max -> lowest task id
            task = ready_list[index]
            proc = int(np.argmin(eft[index]))  # first min -> lowest CPU

            duplicated_on: Tuple[int, ...] = ()
            if (
                self.duplicate_entry
                and task != entry
                and task in entry_children
            ):
                with obs.phase("duplication_check"):
                    plan = entry_duplication_plan(schedule, entry, task, proc)
                    if plan.duplicate:
                        schedule.place(entry, proc, 0.0, duplicate=True)
                        duplicated_on = (proc,)
                if plan.duplicate:
                    obs.count(f"{self.name}/duplication_accepted")
                    if bus.active:
                        bus.emit(
                            "scheduler.duplication",
                            scheduler=self.name,
                            step=step,
                            child=task,
                            proc=proc,
                            arrival=plan.arrival,
                        )
                else:
                    obs.count(f"{self.name}/duplication_rejected")

            # recompute the committed start from live state (the
            # materialized duplicate is now a real copy)
            with obs.phase("commit"):
                ready = schedule.ready_time(task, proc)
                start = schedule.timelines[proc].earliest_start(
                    ready, w[task, proc], insertion=self.use_insertion
                )
                assignment = schedule.place(task, proc, start)
                avail[proc] = schedule.timelines[proc].avail
            obs.count(f"{self.name}/decisions")

            if bus.active:
                bus.emit(
                    "scheduler.decision",
                    scheduler=self.name,
                    step=step,
                    ready_tasks=tuple(ready_list),
                    priorities=tuple(float(v) for v in priorities),
                    selected=task,
                    eft=tuple(float(v) for v in eft[index]),
                    chosen_proc=proc,
                    start=assignment.start,
                    finish=assignment.finish,
                    duplicated_on=duplicated_on,
                )

            with obs.phase("ready_update"):
                rows_recomputed = 0
                col_refreshes = 0
                for released in itq.complete(task):
                    ready_rows[released] = compute_ready_row(released)
                    rows_recomputed += 1
                ready_rows.pop(task, None)

                # the commit (and any duplicate) only touched ``proc``;
                # the hypothetical-duplication window of pending entry
                # children may have changed there, so refresh that column.
                for pending in itq:
                    if pending in entry_children:
                        arrival = entry_duplication_plan(
                            schedule, entry, pending, proc, self.duplicate_entry
                        ).arrival
                        ready_rows[pending][proc] = max(
                            arrival,
                            self._non_entry_ready(
                                schedule, pending, proc, entry
                            ),
                        )
                        col_refreshes += 1
            obs.count(f"{self.name}/ready_rows_recomputed", rows_recomputed)
            obs.count(
                f"{self.name}/entry_child_col_refreshes", col_refreshes
            )
        return schedule

    # ------------------------------------------------------------------
    def _non_entry_ready(
        self, schedule: Schedule, task: int, proc: int, entry: int
    ) -> float:
        """Ready contribution on ``proc`` from the non-entry parents."""
        graph = schedule.graph
        best = 0.0
        for parent in graph.predecessors(task):
            if parent == entry:
                continue
            arrival = schedule.arrival_time(parent, task, proc)
            if arrival > best:
                best = arrival
        return best

    def _priorities(self, eft: np.ndarray, ready_list=None) -> np.ndarray:
        """Apply the configured priority rule to the ITQ's EFT matrix."""
        if self.priority is PriorityRule.UPWARD_RANK:
            return self._rank_u[ready_list]
        if self.priority is PriorityRule.PENALTY_VALUE:
            if eft.shape[1] <= 1:
                return np.zeros(eft.shape[0])
            return eft.std(axis=1, ddof=1)
        if self.priority is PriorityRule.EFT_RANGE:
            return eft.max(axis=1) - eft.min(axis=1)
        if self.priority is PriorityRule.MEAN_EFT:
            return eft.mean(axis=1)
        if self.priority is PriorityRule.MIN_EFT_FIRST:
            return -eft.min(axis=1)
        raise AssertionError(f"unhandled priority rule {self.priority}")

"""Heterogeneous Dynamic List Task Scheduling (HDLTS) -- Algorithm 2.

The scheduler keeps the paper's three pillars separable so each can be
ablated:

* ``duplicate_entry`` -- pillar 1, effective entry-task duplication
  (Algorithm 1, :mod:`repro.core.duplication`);
* the dynamic ITQ -- pillar 2, only precedence-satisfied tasks are
  prioritized, and priorities are recomputed from live platform state at
  every step (:mod:`repro.core.itq`);
* ``priority`` -- pillar 3, the penalty value PV = sample standard
  deviation of the task's EFT vector over the CPUs (Eq. 8); alternative
  rules are provided for the ablation benchmarks.

Semantics are pinned to the paper's Table I worked example -- see
DESIGN.md; the full trace is reproduced bit-exactly by the test suite.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.base import Scheduler
from repro.core.duplication import entry_duplication_plan
from repro.core.itq import IndependentTaskQueue
from repro.core.trace import TraceRecorder, TraceStep
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["HDLTS", "PriorityRule"]


class PriorityRule(str, enum.Enum):
    """Task-selection rule applied to the ITQ each step."""

    #: the paper's penalty value: sample std (ddof=1) of the EFT vector
    PENALTY_VALUE = "pv"
    #: spread of the EFT vector (max - min): a cheaper heterogeneity proxy
    EFT_RANGE = "range"
    #: largest mean EFT first (schedule the globally slowest task early)
    MEAN_EFT = "mean_eft"
    #: smallest best-case EFT first (pure greedy; a weak strawman)
    MIN_EFT_FIRST = "min_eft"
    #: HEFT's mean-cost upward rank, applied to the dynamic ready list --
    #: isolates pillar 2 (the ITQ) from pillar 3 (the PV formula): this
    #: is "dynamic HEFT" with global downstream awareness
    UPWARD_RANK = "rank_u"


class HDLTS(Scheduler):
    """The paper's scheduler.

    Parameters
    ----------
    duplicate_entry:
        Enable Algorithm 1 (effective entry-task duplication).
    use_insertion:
        Search idle gaps for the EST instead of appending after
        ``Avail`` (the paper's trace uses append; insertion is an
        extension used by the ablation study).
    priority:
        Task-selection rule; defaults to the paper's penalty value.
    record_trace:
        Keep a per-step :class:`~repro.core.trace.TraceStep` record
        (costs memory on big graphs; required to print Table I).
    """

    name = "HDLTS"

    def __init__(
        self,
        duplicate_entry: bool = True,
        use_insertion: bool = False,
        priority: PriorityRule = PriorityRule.PENALTY_VALUE,
        record_trace: bool = False,
    ) -> None:
        self.duplicate_entry = duplicate_entry
        self.use_insertion = use_insertion
        self.priority = PriorityRule(priority)
        self.record_trace = record_trace
        self.last_trace: Optional[List[TraceStep]] = None

    # ------------------------------------------------------------------
    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Run Algorithm 2 on ``graph`` (single-entry required)."""
        entry = graph.entry_task  # raises for multi-entry graphs
        n_procs = graph.n_procs
        if self.priority is PriorityRule.UPWARD_RANK:
            from repro.model.ranking import upward_rank

            self._rank_u = upward_rank(graph)
        schedule = Schedule(graph)
        itq = IndependentTaskQueue(graph)
        w = graph.cost_matrix()
        avail = np.zeros(n_procs)
        entry_children = set(graph.successors(entry))

        # cached per-task ready-time vectors (Definition 5 per CPU,
        # including the hypothetical entry duplicate of Algorithm 1)
        ready_rows: Dict[int, np.ndarray] = {}

        def compute_ready_row(task: int) -> np.ndarray:
            row = np.zeros(n_procs)
            for parent in graph.predecessors(task):
                if parent == entry:
                    for proc in range(n_procs):
                        arrival = entry_duplication_plan(
                            schedule, entry, task, proc, self.duplicate_entry
                        ).arrival
                        if arrival > row[proc]:
                            row[proc] = arrival
                else:
                    comm = graph.comm_cost(parent, task)
                    copies = schedule.copies(parent)
                    for proc in range(n_procs):
                        arrival = min(
                            c.finish + (0.0 if c.proc == proc else comm)
                            for c in copies
                        )
                        if arrival > row[proc]:
                            row[proc] = arrival
            return row

        # trace recording is just one subscriber of the decision events;
        # a JSONL sink or a test listens to the very same stream.
        bus = obs.get_bus()
        recorder: Optional[TraceRecorder] = None
        unsubscribe = None
        if self.record_trace:
            recorder = TraceRecorder(scheduler=self.name)
            unsubscribe = bus.subscribe(recorder, topics=(TraceRecorder.TOPIC,))

        try:
            for task in itq.ready_tasks():
                ready_rows[task] = compute_ready_row(task)

            step = 0
            while itq:
                step += 1
                ready_list = itq.ready_tasks()
                with obs.phase("eft_vector"):
                    ready_mat = np.array([ready_rows[t] for t in ready_list])
                    w_ready = w[ready_list]
                    if self.use_insertion:
                        with obs.phase("insertion_scan"):
                            est = np.empty_like(ready_mat)
                            for i, task in enumerate(ready_list):
                                for proc in range(n_procs):
                                    est[i, proc] = schedule.timelines[
                                        proc
                                    ].earliest_start(
                                        ready_mat[i, proc],
                                        w_ready[i, proc],
                                        insertion=True,
                                    )
                        obs.count(f"{self.name}/insertion_scans", est.size)
                    else:
                        est = np.maximum(ready_mat, avail[None, :])
                    eft = est + w_ready
                    obs.count(f"{self.name}/eft_evaluations", eft.size)

                priorities = self._priorities(eft, ready_list)
                index = int(np.argmax(priorities))  # first max -> lowest task id
                task = ready_list[index]
                proc = int(np.argmin(eft[index]))  # first min -> lowest CPU

                duplicated_on: Tuple[int, ...] = ()
                if (
                    self.duplicate_entry
                    and task != entry
                    and task in entry_children
                ):
                    with obs.phase("duplication_check"):
                        plan = entry_duplication_plan(schedule, entry, task, proc)
                        if plan.duplicate:
                            schedule.place(entry, proc, 0.0, duplicate=True)
                            duplicated_on = (proc,)
                    if plan.duplicate:
                        obs.count(f"{self.name}/duplication_accepted")
                        if bus.active:
                            bus.emit(
                                "scheduler.duplication",
                                scheduler=self.name,
                                step=step,
                                child=task,
                                proc=proc,
                                arrival=plan.arrival,
                            )
                    else:
                        obs.count(f"{self.name}/duplication_rejected")

                # recompute the committed start from live state (the
                # materialized duplicate is now a real copy)
                with obs.phase("commit"):
                    ready = schedule.ready_time(task, proc)
                    start = schedule.timelines[proc].earliest_start(
                        ready, w[task, proc], insertion=self.use_insertion
                    )
                    assignment = schedule.place(task, proc, start)
                    avail[proc] = schedule.timelines[proc].avail
                obs.count(f"{self.name}/decisions")

                if bus.active:
                    bus.emit(
                        "scheduler.decision",
                        scheduler=self.name,
                        step=step,
                        ready_tasks=tuple(ready_list),
                        priorities=tuple(float(v) for v in priorities),
                        selected=task,
                        eft=tuple(float(v) for v in eft[index]),
                        chosen_proc=proc,
                        start=assignment.start,
                        finish=assignment.finish,
                        duplicated_on=duplicated_on,
                    )

                with obs.phase("ready_update"):
                    released_count = 0
                    for released in itq.complete(task):
                        ready_rows[released] = compute_ready_row(released)
                        released_count += 1
                    ready_rows.pop(task, None)

                    # the commit (and any duplicate) only touched ``proc``;
                    # the hypothetical-duplication window of pending entry
                    # children may have changed there, so refresh that column.
                    for pending in itq:
                        if pending in entry_children:
                            arrival = entry_duplication_plan(
                                schedule, entry, pending, proc, self.duplicate_entry
                            ).arrival
                            ready_rows[pending][proc] = max(
                                arrival,
                                self._non_entry_ready(
                                    schedule, pending, proc, entry
                                ),
                            )
                            released_count += 1
                obs.count(f"{self.name}/ready_row_updates", released_count)
        finally:
            if unsubscribe is not None:
                unsubscribe()

        self.last_trace = recorder.steps if recorder is not None else None
        return schedule

    # ------------------------------------------------------------------
    def _non_entry_ready(
        self, schedule: Schedule, task: int, proc: int, entry: int
    ) -> float:
        """Ready contribution on ``proc`` from the non-entry parents."""
        graph = schedule.graph
        best = 0.0
        for parent in graph.predecessors(task):
            if parent == entry:
                continue
            arrival = schedule.arrival_time(parent, task, proc)
            if arrival > best:
                best = arrival
        return best

    def _priorities(self, eft: np.ndarray, ready_list=None) -> np.ndarray:
        """Apply the configured priority rule to the ITQ's EFT matrix."""
        if self.priority is PriorityRule.UPWARD_RANK:
            return self._rank_u[ready_list]
        if self.priority is PriorityRule.PENALTY_VALUE:
            if eft.shape[1] <= 1:
                return np.zeros(eft.shape[0])
            return eft.std(axis=1, ddof=1)
        if self.priority is PriorityRule.EFT_RANGE:
            return eft.max(axis=1) - eft.min(axis=1)
        if self.priority is PriorityRule.MEAN_EFT:
            return eft.mean(axis=1)
        if self.priority is PriorityRule.MIN_EFT_FIRST:
            return -eft.min(axis=1)
        raise AssertionError(f"unhandled priority rule {self.priority}")

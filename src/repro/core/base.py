"""Scheduler interface shared by HDLTS and every baseline.

A scheduler maps a :class:`~repro.model.task_graph.TaskGraph` to a complete
:class:`~repro.schedule.schedule.Schedule`.  Results are wrapped in
:class:`SchedulingResult` so experiments can carry the algorithm name, the
optional step trace and timing metadata alongside the schedule itself.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.core.trace import TraceStep

__all__ = ["Scheduler", "SchedulingResult"]


@dataclass
class SchedulingResult:
    """A completed scheduling run."""

    schedule: Schedule
    scheduler: str
    wall_time: float = 0.0
    trace: Optional[List[TraceStep]] = None
    extras: dict = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def n_duplicates(self) -> int:
        return len(self.schedule.duplicates())


class Scheduler(abc.ABC):
    """Abstract list scheduler.

    Subclasses implement :meth:`build_schedule`; callers normally use
    :meth:`run`, which also validates single-entry requirements, times the
    run and wraps the result.
    """

    #: human-readable algorithm name (class attribute on subclasses)
    name: str = "scheduler"

    #: whether the algorithm requires a single entry (and exit) task.
    requires_single_entry: bool = True
    requires_single_exit: bool = False

    @abc.abstractmethod
    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Produce a complete schedule for ``graph``."""

    def prepare(self, graph: TaskGraph) -> TaskGraph:
        """Normalize the graph if the algorithm needs it.

        Multi-entry/exit graphs are wrapped with zero-cost pseudo tasks
        (Section III) when the algorithm requires a unique entry/exit.
        """
        entries = graph.entry_tasks()
        exits = graph.exit_tasks()
        needs_norm = (self.requires_single_entry and len(entries) != 1) or (
            self.requires_single_exit and len(exits) != 1
        )
        return graph.normalized() if needs_norm else graph

    def run(self, graph: TaskGraph) -> SchedulingResult:
        """Schedule ``graph`` and return a timed, named result.

        The run executes inside an observability phase named after the
        algorithm, so inner ``with phase(...)`` timers nest under e.g.
        ``HDLTS/eft_vector``, publishes one ``scheduler.run`` event when
        anything subscribes to the bus, and opens a ``scheduler.run``
        span when tracing is on (:mod:`repro.obs.spans`).
        """
        prepared = self.prepare(graph)
        started = time.perf_counter()
        with obs.span("scheduler.run", name=self.name) as sp:
            with obs.phase(self.name):
                schedule = self.build_schedule(prepared)
            sp.set(
                n_tasks=prepared.n_tasks,
                n_procs=prepared.n_procs,
                makespan=schedule.makespan,
            )
        elapsed = time.perf_counter() - started
        obs.count(f"{self.name}/runs")
        bus = obs.get_bus()
        if bus.active:
            bus.emit(
                "scheduler.run",
                scheduler=self.name,
                n_tasks=prepared.n_tasks,
                n_procs=prepared.n_procs,
                makespan=schedule.makespan,
                wall_s=elapsed,
            )
        trace = getattr(self, "last_trace", None)
        return SchedulingResult(
            schedule=schedule,
            scheduler=self.name,
            wall_time=elapsed,
            trace=trace,
        )

    def __call__(self, graph: TaskGraph) -> SchedulingResult:
        return self.run(graph)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"

"""Incremental vectorized EFT engine shared by HDLTS and the baselines.

Every list scheduler in this repository evaluates the same kernel at
each decision: *when can task ``t`` start on CPU ``p`` given the
schedule built so far?* (Definitions 5-7).  The reference
implementations answer it with Python loops over ``parents x copies x
CPUs``; this engine answers it from persistent per-task arrays that are
updated incrementally as assignments are committed:

* ``local_finish[t, p]`` -- earliest finish of a copy of ``t`` *on*
  CPU ``p`` (``inf`` when none), and ``best_finish[t]`` -- earliest
  finish of any copy.  The arrival of the edge ``t -> c`` on CPU ``p``
  (Definition 5) is then one vectorized expression::

      arrival(t, c) = minimum(local_finish[t], best_finish[t] + comm(t, c))

  which is exactly ``min over copies of finish + (0 | comm)`` because
  communication costs are non-negative.
* ``avail[p]`` -- Definition 3, mirrored from the timelines.
* a per-CPU memo of Algorithm 1's entry-duplication window test
  (``fits(0, W(entry, p))``), invalidated only when CPU ``p``'s
  timeline actually changes, so the hypothetical-duplicate arrival of
  the entry's output is evaluated once per (child, CPU) *invalidation*
  instead of once per scheduling step.

Copies are immutable once committed, so an arrival computed from these
arrays is bit-identical to the reference loops: ``min``/``max`` over
the same float64 values reassociate freely, and ``best_finish + comm``
equals ``min over copies of (finish + comm)`` exactly because IEEE
addition of a common non-negative term is monotone.

The engine is advisory: it never mutates the :class:`Schedule`.  Feed
it every committed :class:`~repro.schedule.schedule.Assignment` through
:meth:`notify` (construction ingests whatever is already placed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.model.compiled import compile_graph, compiled_enabled
from repro.schedule.schedule import Assignment, Schedule
from repro.schedule.timeline import _EPS, Slot

__all__ = ["EFTEngine", "StaticEFTEngine"]


class EFTEngine:
    """Incremental EFT evaluation state for one schedule under construction.

    Parameters
    ----------
    schedule:
        The schedule being built; existing assignments are ingested.
    entry:
        The graph's entry task, required for the Algorithm-1 aware
        queries (:meth:`entry_arrival_vector`, :meth:`entry_plan`).
    hypothetical_entry_dup:
        When True, entry arrivals account for a *hypothetical* entry
        duplicate wherever Algorithm 1 would still accept one (HDLTS
        pillar 1); when False they use committed copies only.
    """

    def __init__(
        self,
        schedule: Schedule,
        entry: Optional[int] = None,
        hypothetical_entry_dup: bool = False,
    ) -> None:
        self.schedule = schedule
        graph = schedule.graph
        self.graph = graph
        n, p = graph.n_tasks, graph.n_procs
        # compiled layer: share the instance's read-only cost matrix and
        # CSR parent arrays instead of rebuilding them per engine
        compiled = compile_graph(graph) if compiled_enabled() else None
        self._compiled = compiled
        self.w = compiled.w if compiled is not None else graph.cost_matrix()
        self.local_finish = np.full((n, p), np.inf)
        self.best_finish = np.full(n, np.inf)
        self.avail = np.zeros(p)
        self.entry = entry
        self.hypothetical_entry_dup = bool(hypothetical_entry_dup)
        # Algorithm-1 window memo: does a duplicate still fit over
        # [0, W(entry, p))?  Recomputed lazily per dirty CPU.
        self._dup_fits = np.zeros(p, dtype=bool)
        self._dup_dirty = np.ones(p, dtype=bool)
        # per-task (parent ids, edge costs, ids sans entry, costs sans
        # entry), resolved once per task
        self._parents: List[
            Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
        ] = [None] * n
        # entry -> child communication costs, pre-resolved for the
        # per-step dirty-column refresh
        if entry is not None and compiled is not None:
            self._entry_comm = compiled.entry_comm_vector(entry)
        else:
            self._entry_comm = np.zeros(n)
            if entry is not None:
                for child in graph.successors(entry):
                    self._entry_comm[child] = graph.comm_cost(entry, child)
        # ingest whatever is already committed (order-free: notify is
        # all min/max updates), without scanning the full task set
        for assignment in schedule.assignments():
            self.notify(assignment)
        for duplicate in schedule.duplicates():
            self.notify(duplicate)

    # ------------------------------------------------------------------
    # state maintenance
    # ------------------------------------------------------------------
    def notify(self, assignment: Assignment) -> None:
        """Fold a committed assignment into the incremental arrays."""
        task, proc, finish = assignment.task, assignment.proc, assignment.finish
        if finish < self.local_finish[task, proc]:
            self.local_finish[task, proc] = finish
        if finish < self.best_finish[task]:
            self.best_finish[task] = finish
        self.avail[proc] = self.schedule.timelines[proc].avail
        self._dup_dirty[proc] = True

    def _parent_arrays(
        self, task: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        cached = self._parents[task]
        if cached is None:
            if self._compiled is not None:
                cached = self._compiled.parent_arrays(task, self.entry)
                self._parents[task] = cached
                return cached
            parents = self.graph.predecessors(task)
            ids = np.array(parents, dtype=np.intp)
            comms = np.array(
                [self.graph.comm_cost(q, task) for q in parents]
            )
            if self.entry is not None and self.entry in parents:
                keep = ids != self.entry
                ids_ne, comms_ne = ids[keep], comms[keep]
            else:
                ids_ne, comms_ne = ids, comms
            cached = (ids, comms, ids_ne, comms_ne)
            self._parents[task] = cached
        return cached

    # ------------------------------------------------------------------
    # Definition 5: data arrival / ready times
    # ------------------------------------------------------------------
    def arrival_vector(self, parent: int, child: int) -> np.ndarray:
        """Arrival of the edge ``parent -> child`` data on every CPU."""
        if not np.isfinite(self.best_finish[parent]):
            raise ValueError(f"parent {parent} of {child} is not scheduled")
        comm = self.graph.comm_cost(parent, child)
        return np.minimum(
            self.local_finish[parent], self.best_finish[parent] + comm
        )

    def ready_vector(self, task: int, exclude_entry: bool = False) -> np.ndarray:
        """Definition 5 on every CPU: when the task's inputs are present.

        ``exclude_entry=True`` drops the entry parent's contribution
        (HDLTS recombines it with the hypothetical-duplicate arrival).
        """
        all_ids, _, ids_ne, comms_ne = self._parent_arrays(task)
        parents = ids_ne if exclude_entry else all_ids
        if parents.size:
            best = self.best_finish[parents]
            if not np.all(np.isfinite(best)):
                missing = int(parents[np.argmax(~np.isfinite(best))])
                raise ValueError(
                    f"parent {missing} of {task} is not scheduled"
                )
        return self._ready_row(task, exclude_entry)

    def _ready_row(self, task: int, exclude_entry: bool) -> np.ndarray:
        """:meth:`ready_vector` without the scheduled-parents check.

        The HDLTS hot loop only asks about tasks the ITQ has released,
        whose parents are committed by construction.
        """
        ids, comms, ids_ne, comms_ne = self._parent_arrays(task)
        if exclude_entry:
            ids, comms = ids_ne, comms_ne
        if not ids.size:
            return np.zeros(self.graph.n_procs)
        arrivals = np.minimum(
            self.local_finish[ids], (self.best_finish[ids] + comms)[:, None]
        )
        return np.maximum(arrivals.max(axis=0), 0.0)

    # ------------------------------------------------------------------
    # Algorithm 1: hypothetical entry duplication
    # ------------------------------------------------------------------
    def _dup_window_free(self) -> np.ndarray:
        """Per-CPU: an entry duplicate at time 0 still fits (memoized)."""
        if self._dup_dirty.any():
            entry = self.entry
            for proc in np.flatnonzero(self._dup_dirty):
                self._dup_fits[proc] = self.schedule.timelines[proc].fits(
                    0.0, self.w[entry, proc]
                )
            self._dup_dirty[:] = False
        return self._dup_fits

    def entry_arrival_vector(self, child: int) -> np.ndarray:
        """Entry-output arrival on every CPU, hypothetical dup included."""
        assert self.entry is not None, "engine built without an entry task"
        via_network = self.arrival_vector(self.entry, child)
        if not self.hypothetical_entry_dup:
            return via_network
        w_entry = self.w[self.entry]
        dup_ok = self._dup_window_free() & np.isinf(
            self.local_finish[self.entry]
        )
        return np.where(
            dup_ok & (w_entry < via_network), w_entry, via_network
        )

    def entry_arrival_column(
        self, children: Sequence[int], proc: int
    ) -> np.ndarray:
        """Entry-output arrival on one CPU for a batch of children."""
        assert self.entry is not None
        entry = self.entry
        comms = self._entry_comm[np.asarray(children, dtype=np.intp)]
        via = np.minimum(
            self.local_finish[entry, proc], self.best_finish[entry] + comms
        )
        if not self.hypothetical_entry_dup:
            return via
        if not (
            self._dup_window_free()[proc]
            and np.isinf(self.local_finish[entry, proc])
        ):
            return via
        w_entry = self.w[entry, proc]
        return np.where(w_entry < via, w_entry, via)

    def entry_plan(self, child: int, proc: int) -> Tuple[bool, float]:
        """Algorithm 1 for one (child, CPU) pair: (duplicate?, arrival).

        Matches :func:`repro.core.duplication.entry_duplication_plan`
        decision-for-decision against the live schedule.
        """
        assert self.entry is not None
        entry = self.entry
        comm = self.graph.comm_cost(entry, child)
        via = min(
            float(self.local_finish[entry, proc]),
            float(self.best_finish[entry]) + comm,
        )
        if not self.hypothetical_entry_dup:
            return False, via
        if np.isfinite(self.local_finish[entry, proc]):
            return False, via  # a copy is already local
        if not self._dup_window_free()[proc]:
            return False, via
        dup_finish = float(self.w[entry, proc])
        if dup_finish < via:
            return True, dup_finish
        return False, via

    # ------------------------------------------------------------------
    # EST / EFT for the static-list baselines
    # ------------------------------------------------------------------
    def est_eft(
        self, task: int, insertion: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(EST, EFT) of ``task`` on every CPU against the live schedule."""
        ready = self.ready_vector(task)
        costs = self.w[task]
        timelines = self.schedule.timelines
        starts = np.array(
            [
                timelines[proc].earliest_start_fast(
                    float(ready[proc]), float(costs[proc]), insertion
                )
                for proc in range(len(timelines))
            ]
        )
        return starts, starts + costs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = int(np.isfinite(self.best_finish).sum())
        return f"EFTEngine(placed={placed}/{self.graph.n_tasks})"


_INF = float("inf")


class StaticEFTEngine:
    """Scalar EFT engine for the static-list baselines (compiled path).

    The static baselines (HEFT, PETS, PEFT, SDBATS, ...) issue exactly
    one query shape: ``est_eft(task)`` across *all* CPUs for a task
    whose parents are already committed, with small fan-in.  At that
    scale numpy's per-call dispatch overhead exceeds the arithmetic, so
    this engine walks the compiled graph's plain-Python list mirrors
    with float scalars instead.  Every value is bit-identical to
    :class:`EFTEngine`: the same IEEE-754 float64 operations run in the
    same order (``min``/``max`` reductions are order-free, and the
    single ``best_finish + comm`` addition per parent is preserved).

    Like :class:`EFTEngine` it is advisory -- feed committed
    assignments through :meth:`notify`; construction ingests whatever
    the schedule already holds (SDBATS pre-places entry duplicates).
    """

    def __init__(
        self, schedule: Schedule, compiled: Optional[object] = None
    ) -> None:
        self.schedule = schedule
        graph = schedule.graph
        self.graph = graph
        self.compiled = (
            compiled if compiled is not None else compile_graph(graph)
        )
        n = graph.n_tasks
        self._n_procs = graph.n_procs
        self._timelines = schedule.timelines
        # shared read-only mirrors -- never mutated by the engine
        self._w_rows = self.compiled.w_rows
        self._parents = self.compiled.pred_lists
        # per-task local-finish rows materialize on first commit (None
        # == no copy anywhere == a row of +inf)
        self.local_finish: List[Optional[List[float]]] = [None] * n
        self.best_finish: List[float] = [_INF] * n
        # ingest whatever is already committed (order-free: notify is
        # all min/max updates), without scanning the full task set
        for assignment in schedule.assignments():
            self.notify(assignment)
        for duplicate in schedule.duplicates():
            self.notify(duplicate)

    def notify(self, assignment: Assignment) -> None:
        """Fold a committed assignment into the incremental state."""
        task, proc, finish = assignment.task, assignment.proc, assignment.finish
        row = self.local_finish[task]
        if row is None:
            row = self.local_finish[task] = [_INF] * self._n_procs
        if finish < row[proc]:
            row[proc] = finish
        if finish < self.best_finish[task]:
            self.best_finish[task] = finish

    def ready_vector(self, task: int) -> List[float]:
        """Definition 5 on every CPU: when the task's inputs are present."""
        parents, comms = self._parents[task]
        n_procs = self._n_procs
        ready = [0.0] * n_procs
        if parents:
            best_finish = self.best_finish
            local_finish = self.local_finish
            for parent, comm in zip(parents, comms):
                via = best_finish[parent] + comm
                row = local_finish[parent]
                if row is None:
                    # no committed copy: arrival is ``via`` (= +inf)
                    # on every CPU
                    for q in range(n_procs):
                        if via > ready[q]:
                            ready[q] = via
                    continue
                for q in range(n_procs):
                    arrival = row[q]
                    if via < arrival:
                        arrival = via
                    if arrival > ready[q]:
                        ready[q] = arrival
            if ready[0] == _INF:
                # an unscheduled parent's +inf arrival floods every CPU
                missing = next(
                    p for p in parents if best_finish[p] == _INF
                )
                raise ValueError(
                    f"parent {missing} of {task} is not scheduled"
                )
        return ready

    def est_eft(
        self, task: int, insertion: bool = True
    ) -> Tuple[List[float], List[float]]:
        """(EST, EFT) of ``task`` on every CPU against the live schedule."""
        ready = self.ready_vector(task)
        costs = self._w_rows[task]
        starts: List[float] = []
        finishes: List[float] = []
        for q, timeline in enumerate(self._timelines):
            cost = costs[q]
            start = timeline.earliest_start_fast(ready[q], cost, insertion)
            starts.append(start)
            finishes.append(start + cost)
        return starts, finishes

    def place_best(
        self,
        task: int,
        insertion: bool = True,
        objective=None,
    ) -> Assignment:
        """Fused :func:`~repro.baselines.common.place_min_eft` hot path.

        One pass over the CPUs computes EST/EFT and runs the selection
        loop in place -- the same scalar operations, comparisons and
        1e-12 strict-improvement tie-break as the generic helper, one
        call frame instead of four.  Commits the winner and folds it
        back into the engine state.
        """
        ready = self.ready_vector(task)
        costs = self._w_rows[task]
        best_proc = -1
        best_score = _INF
        best_start = 0.0
        q = 0
        for timeline in self._timelines:
            cost = costs[q]
            r = ready[q]
            if r >= timeline._max_end and cost > _EPS and timeline._ends_monotone:
                # the task becomes ready at or after this CPU's last
                # finish: the gap scan's bisect lands past every end and
                # earliest_start_fast returns the ready time unchanged
                start = r
            else:
                start = timeline.earliest_start_fast(r, cost, insertion)
            finish = start + cost
            score = objective(q, finish) if objective is not None else finish
            if score < best_score - 1e-12:
                best_score = score
                best_proc = q
                best_start = start
            q += 1
        obs.scoped_count("eft_evaluations", self._n_procs)
        obs.scoped_count("decisions")
        # inline commit: statics only place fresh primary copies, so
        # this is Schedule.place minus the duplicate branch, with the
        # duration read from the mirror row (exactly float(W[t, p]))
        schedule = self.schedule
        if task in schedule._primary:
            raise ValueError(f"task {task} already has a primary assignment")
        duration = costs[best_proc]
        timeline = self._timelines[best_proc]
        end = best_start + duration
        if duration > _EPS and best_start >= timeline._max_end:
            # Timeline.reserve's append-at-end fast path, inlined (same
            # proof: no overlap possible, (start, end) sorts last, the
            # end list stays non-decreasing)
            timeline._slots.append(Slot(best_start, end, task, False))
            timeline._keys.append((best_start, end))
            timeline._starts.append(best_start)
            timeline._ends.append(end)
            timeline._max_end = end
            timeline._busy += duration
            timeline._gap_cache = None
        else:
            timeline.reserve(task, best_start, duration)
        assignment = Assignment(task, best_proc, best_start, end)
        schedule._primary[task] = assignment
        self.notify(assignment)
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = sum(1 for f in self.best_finish if f < _INF)
        return f"StaticEFTEngine(placed={placed}/{self.graph.n_tasks})"

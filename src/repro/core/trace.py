"""Step-by-step trace records (the paper's Table I).

HDLTS (and, for uniformity, any scheduler that opts in) can record one
:class:`TraceStep` per mapping decision: the ready set, the priority of
every ready task, the selected task, its EFT on every CPU and the chosen
CPU.  :func:`format_trace` renders the exact layout of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TraceStep", "format_trace"]


@dataclass(frozen=True)
class TraceStep:
    """One row of the Table I trace."""

    step: int
    ready_tasks: Tuple[int, ...]
    priorities: Tuple[float, ...]
    selected: int
    eft: Tuple[float, ...]
    chosen_proc: int
    start: float
    finish: float
    duplicated_on: Tuple[int, ...] = ()

    def priority_of(self, task: int) -> float:
        """Priority this step assigned to ``task`` (must be ready)."""
        return self.priorities[self.ready_tasks.index(task)]


def format_trace(
    trace: Sequence[TraceStep],
    names: Optional[Dict[int, str]] = None,
    precision: int = 1,
) -> str:
    """Render a trace in the layout of the paper's Table I."""

    def name(task: int) -> str:
        return names[task] if names else f"T{task + 1}"

    rows: List[List[str]] = []
    n_procs = len(trace[0].eft) if trace else 0
    header = ["Step", "Ready Tasks", "Penalty Values", "Selected"] + [
        f"EFT P{p + 1}" for p in range(n_procs)
    ]
    for record in trace:
        ready = ", ".join(name(t) for t in record.ready_tasks)
        pvs = ", ".join(f"{v:.{precision}f}" for v in record.priorities)
        eft = [f"{v:g}" for v in record.eft]
        rows.append([str(record.step), ready, pvs, name(record.selected)] + eft)

    widths = [
        max(len(header[c]), max((len(r[c]) for r in rows), default=0))
        for c in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(header), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)

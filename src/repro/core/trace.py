"""Step-by-step trace records (the paper's Table I).

Schedulers publish one ``scheduler.decision`` event per mapping decision
on the observability bus (:mod:`repro.obs`); :class:`TraceRecorder` is
the bus subscriber that turns those events back into :class:`TraceStep`
records -- the Table-I printer is just one listener among several (a
JSONL sink, the metrics layer, a test) rather than a special case wired
into each scheduler.

:func:`format_trace` renders the exact layout of Table I; pass
``extended=True`` to also see the fields each step records beyond the
paper's columns -- the chosen CPU's EFT (marked ``*``), the committed
start/finish interval, and which CPUs received an entry duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TraceStep", "TraceRecorder", "format_trace"]


@dataclass(frozen=True)
class TraceStep:
    """One row of the Table I trace."""

    step: int
    ready_tasks: Tuple[int, ...]
    priorities: Tuple[float, ...]
    selected: int
    eft: Tuple[float, ...]
    chosen_proc: int
    start: float
    finish: float
    duplicated_on: Tuple[int, ...] = ()

    def priority_of(self, task: int) -> float:
        """Priority this step assigned to ``task`` (must be ready)."""
        return self.priorities[self.ready_tasks.index(task)]


class TraceRecorder:
    """Event-bus subscriber collecting ``scheduler.decision`` events.

    Subscribe it (typically with ``topics=("scheduler.decision",)``) and
    read :attr:`steps` afterwards.  ``scheduler`` restricts recording to
    one scheduler's events when several run under the same bus.
    """

    #: the bus topic this recorder understands
    TOPIC = "scheduler.decision"

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self.scheduler = scheduler
        self.steps: List[TraceStep] = []

    def __call__(self, event) -> None:
        if event.name != self.TOPIC:
            return
        payload = event.payload
        if self.scheduler is not None and payload.get("scheduler") != self.scheduler:
            return
        self.steps.append(
            TraceStep(
                step=payload["step"],
                ready_tasks=tuple(payload["ready_tasks"]),
                priorities=tuple(payload["priorities"]),
                selected=payload["selected"],
                eft=tuple(payload["eft"]),
                chosen_proc=payload["chosen_proc"],
                start=payload["start"],
                finish=payload["finish"],
                duplicated_on=tuple(payload.get("duplicated_on", ())),
            )
        )


def format_trace(
    trace: Sequence[TraceStep],
    names: Optional[Dict[int, str]] = None,
    precision: int = 1,
    extended: bool = False,
) -> str:
    """Render a trace in the layout of the paper's Table I.

    The default columns are byte-identical to the paper's table.  With
    ``extended=True`` the chosen CPU's EFT is marked with ``*`` and
    Start/Finish columns are appended, plus a Dup column whenever any
    step materialized an entry duplicate.
    """

    def name(task: int) -> str:
        return names[task] if names else f"T{task + 1}"

    def proc_name(proc: int) -> str:
        return f"P{proc + 1}"

    rows: List[List[str]] = []
    n_procs = len(trace[0].eft) if trace else 0
    any_dup = extended and any(step.duplicated_on for step in trace)
    header = ["Step", "Ready Tasks", "Penalty Values", "Selected"] + [
        f"EFT P{p + 1}" for p in range(n_procs)
    ]
    if extended:
        header += ["Start", "Finish"]
        if any_dup:
            header.append("Dup")
    for record in trace:
        ready = ", ".join(name(t) for t in record.ready_tasks)
        pvs = ", ".join(f"{v:.{precision}f}" for v in record.priorities)
        if extended:
            eft = [
                f"{v:g}*" if p == record.chosen_proc else f"{v:g}"
                for p, v in enumerate(record.eft)
            ]
        else:
            eft = [f"{v:g}" for v in record.eft]
        row = [str(record.step), ready, pvs, name(record.selected)] + eft
        if extended:
            row += [f"{record.start:g}", f"{record.finish:g}"]
            if any_dup:
                row.append(
                    ", ".join(proc_name(p) for p in record.duplicated_on)
                )
        rows.append(row)

    widths = [
        max(len(header[c]), max((len(r[c]) for r in rows), default=0))
        for c in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(header), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)

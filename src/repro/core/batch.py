"""Batched multi-DAG scheduling kernel: one array program per batch.

A figure sweep's replication loop runs the same scheduler on many
independent random instances that usually share one *shape*: the graph
structure (CSR adjacency) is identical and only the cost draws differ.
The scalar path pays full Python dispatch per instance; this module
packs a whole replication batch of same-shape compiled instances
(:class:`~repro.model.compiled.CompiledGraph`) into struct-of-arrays
``(batch, n, p)`` tensors and runs the schedulers as vectorized sweeps
over the leading batch axis:

* the rank kernels (mean/std costs, upward rank, OCT) are the
  level-``reduceat`` kernels of :mod:`repro.model.compiled` with a
  batch axis in front -- per-lane bit-identical because every reduction
  runs along a per-lane axis;
* the static-priority baselines (HEFT, PEFT, SDBATS and their
  registered ablations) compute per-lane task orders up front and then
  place one task per lane per step in lockstep, with a vectorized
  timeline gap scan (:class:`_BatchTimelines`) replicating
  ``ProcessorTimeline.earliest_start_fast`` and the 1e-12
  strict-improvement CPU selection of ``StaticEFTEngine.place_best``;
* HDLTS runs a batched ready-list step: the union of the lanes' ITQ
  frontiers is compacted into one ``(batch, |union|, p)`` EFT block per
  step, the penalty-value kernel and the argmax/argmin selections run
  per lane, and Algorithm 1's entry-duplication window test reduces to
  a ``first_start >= W(entry, p) - eps`` comparison (exact under the
  :func:`hdlts_dup_batchable` instance gate).

Everything here is **bit-identical** to the scalar compiled path: the
same IEEE-754 float64 operations run in the same order per lane
(``min``/``max`` reductions are order-free; additions are preserved
term for term).  The differential suite asserts schedule-level equality
for every batchable registry scheduler; the sweep harness
(:mod:`repro.experiments.harness`) falls back to the scalar path for
anything this module does not cover.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hdlts import PriorityRule
from repro.model.compiled import CompiledGraph, _ragged_indices
from repro.schedule.schedule import Schedule
from repro.schedule.timeline import _EPS

__all__ = [
    "BATCHABLE",
    "BatchResult",
    "CompiledBatch",
    "batchable_schedulers",
    "hdlts_dup_batchable",
    "instance_batchable",
    "max_lanes",
    "run_batch",
    "same_shape",
    "shape_key",
]


# ----------------------------------------------------------------------
# scheduler configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _StaticConfig:
    """One static-list baseline as the batch kernel sees it."""

    obs_name: str  # Scheduler.name (counter prefix), not the registry key
    rank: str  # "mean" | "std" | "oct"
    insertion: bool = True
    sdbats: bool = False  # entry pre-placement (primary + mirrors)
    duplicate_entry: bool = True  # SDBATS only
    peft: bool = False  # OCT objective + dynamic-heap order


@dataclass(frozen=True)
class _DynamicConfig:
    """One HDLTS variant (append mode) as the batch kernel sees it."""

    obs_name: str
    priority: PriorityRule
    duplicate_entry: bool


#: registry name -> batch kernel configuration.  Schedulers absent here
#: (PETS, CPOP, ``HDLTS-insertion``, ``engine="reference"`` variants,
#: ...) always take the scalar path.
_CONFIGS: Dict[str, object] = {
    "HEFT": _StaticConfig("HEFT", rank="mean", insertion=True),
    "HEFT-noinsertion": _StaticConfig("HEFT", rank="mean", insertion=False),
    "PEFT": _StaticConfig("PEFT", rank="oct", insertion=True, peft=True),
    "SDBATS": _StaticConfig(
        "SDBATS", rank="std", insertion=True, sdbats=True, duplicate_entry=True
    ),
    "SDBATS-nodup": _StaticConfig(
        "SDBATS", rank="std", insertion=True, sdbats=True, duplicate_entry=False
    ),
    "HDLTS": _DynamicConfig(
        "HDLTS", PriorityRule.PENALTY_VALUE, duplicate_entry=True
    ),
    "HDLTS-nodup": _DynamicConfig(
        "HDLTS", PriorityRule.PENALTY_VALUE, duplicate_entry=False
    ),
    "HDLTS-range": _DynamicConfig(
        "HDLTS", PriorityRule.EFT_RANGE, duplicate_entry=True
    ),
    "HDLTS-meaneft": _DynamicConfig(
        "HDLTS", PriorityRule.MEAN_EFT, duplicate_entry=True
    ),
    "HDLTS-greedy": _DynamicConfig(
        "HDLTS", PriorityRule.MIN_EFT_FIRST, duplicate_entry=True
    ),
    "HDLTS-rank": _DynamicConfig(
        "HDLTS", PriorityRule.UPWARD_RANK, duplicate_entry=True
    ),
}

#: registry names the batch kernel covers
BATCHABLE = frozenset(_CONFIGS)


def batchable_schedulers() -> List[str]:
    """Registry names the batched kernel can run (insertion order)."""
    return list(_CONFIGS)


def shape_key(compiled: CompiledGraph) -> Tuple:
    """Hashable structural identity of one compiled instance.

    Two instances share a shape exactly when their CSR successor
    structure (and so their predecessor mirror, topological order,
    entry/exit sets and level batches) is identical -- only the cost
    draws may differ.
    """
    return (
        compiled.n_tasks,
        compiled.n_procs,
        compiled.succ_indptr.tobytes(),
        compiled.succ_ids.tobytes(),
    )


def same_shape(a: CompiledGraph, b: CompiledGraph) -> bool:
    """Do two compiled instances share one structural shape?

    Equivalent to ``shape_key(a) == shape_key(b)`` without serializing
    either CSR structure: two int compares, then ``np.array_equal``
    over the successor arrays (identity-short-circuited -- instances
    drawn from one generator config usually share the very same
    arrays).  Group-by-representative callers use this to avoid
    re-hashing CSR bytes per instance; ``shape_key`` remains the
    hashable form for dict-keyed caches.
    """
    return (
        a.n_tasks == b.n_tasks
        and a.n_procs == b.n_procs
        and (
            a.succ_indptr is b.succ_indptr
            or np.array_equal(a.succ_indptr, b.succ_indptr)
        )
        and (
            a.succ_ids is b.succ_ids
            or np.array_equal(a.succ_ids, b.succ_ids)
        )
    )


def max_lanes(n_tasks: int, n_procs: int) -> int:
    """Soft cap on lanes per sub-batch (bounds the (B, n, p) tensors)."""
    cells = max(1, n_tasks * n_procs)
    return max(1, min(1024, 2_000_000 // cells))


def hdlts_dup_batchable(compiled: CompiledGraph) -> bool:
    """True when Algorithm 1's window test batches exactly for this instance.

    The batched kernel replaces ``timeline.fits(0, W(entry, p))`` with
    ``first_start[p] >= W(entry, p) - eps``.  The two agree whenever
    every slot on a CPU without an entry copy starts strictly after
    ``eps``, which holds when every entry cost exceeds ``eps`` (all
    finish times then inherit ``BF(entry) > eps``).  A normalized
    pseudo entry (all-zero cost row and all-zero outgoing comm) is also
    exact: the duplication test ``W(entry, p) < arrival`` is then
    constantly false on both paths.  Anything else falls back.
    """
    entry = int(compiled.entry_ids[0])
    w_entry = compiled.w[entry]
    if bool((w_entry > _EPS).all()):
        return True
    if bool((w_entry == 0.0).all()):
        _, costs = compiled.succ_slice(entry)
        return not costs.size or bool((costs == 0.0).all())
    return False


def instance_batchable(
    compiled: CompiledGraph, schedulers: Sequence[str]
) -> bool:
    """Can this instance ride the batch kernel for all ``schedulers``?

    Requires a single entry task (the harness normalizes instances
    before compiling) and, when any requested scheduler is an HDLTS
    variant with entry duplication, the :func:`hdlts_dup_batchable`
    window-test gate.
    """
    if compiled.entry_ids.size != 1:
        return False
    needs_gate = any(
        isinstance(cfg, _DynamicConfig) and cfg.duplicate_entry
        for cfg in (_CONFIGS.get(name) for name in schedulers)
        if cfg is not None
    )
    return hdlts_dup_batchable(compiled) if needs_gate else True


# ----------------------------------------------------------------------
# the packed batch
# ----------------------------------------------------------------------
class CompiledBatch:
    """Struct-of-arrays view of same-shape compiled instances.

    Structure arrays (CSR adjacency, topo order, level batches) are
    shared with the first instance's :class:`CompiledGraph`; per-lane
    data (costs, edge costs) is stacked along a leading batch axis.
    Rank kernels mirror the compiled graph's level-``reduceat`` kernels
    with the extra axis and cache their results per batch.
    """

    def __init__(self, instances: Sequence[CompiledGraph]) -> None:
        if not instances:
            raise ValueError("batch needs at least one instance")
        base = instances[0]
        for other in instances[1:]:
            if not same_shape(base, other):
                raise ValueError("all batch instances must share one shape")
        if base.entry_ids.size != 1:
            raise ValueError("batch instances must have a single entry task")
        self.instances: Tuple[CompiledGraph, ...] = tuple(instances)
        self.base = base
        self.n_lanes = len(self.instances)
        self.n_tasks = base.n_tasks
        self.n_procs = base.n_procs
        self.entry = int(base.entry_ids[0])
        # per-lane data planes
        self.W = np.stack([g.w for g in self.instances])  # (B, n, p)
        self.succ_costs_b = np.stack(
            [g.succ_costs for g in self.instances]
        )  # (B, E)
        self.pred_costs_b = np.stack(
            [g.pred_costs for g in self.instances]
        )  # (B, E)
        # dense entry -> child communication per lane
        ids, _ = base.succ_slice(self.entry)
        self.entry_comm_b = np.zeros((self.n_lanes, self.n_tasks))
        lo, hi = base.succ_indptr[self.entry], base.succ_indptr[self.entry + 1]
        self.entry_comm_b[:, ids] = self.succ_costs_b[:, lo:hi]
        # entry-stripped predecessor CSR (HDLTS entry-children rows)
        keep = base.pred_ids != self.entry
        counts = np.diff(base.pred_indptr)
        stripped = np.zeros(self.n_tasks, dtype=np.intp)
        if len(keep):
            # per-task count of kept predecessor edges
            owner = np.repeat(np.arange(self.n_tasks), counts)
            np.add.at(stripped, owner[keep], 1)
        self.ne_indptr = np.zeros(self.n_tasks + 1, dtype=np.intp)
        np.cumsum(stripped, out=self.ne_indptr[1:])
        self.ne_ids = base.pred_ids[keep]
        self.ne_costs_b = self.pred_costs_b[:, keep]
        self._cache: Dict[str, np.ndarray] = {}

    @property
    def label(self) -> str:
        """Short human-readable shape tag for spans and logs."""
        key = shape_key(self.base)
        digest = zlib.crc32(key[2] + key[3]) & 0xFFFFFFFF
        return f"n{self.n_tasks}p{self.n_procs}-{digest:08x}"

    # ------------------------------------------------------------------
    # batched rank kernels (per-lane bit-identical to CompiledGraph's)
    # ------------------------------------------------------------------
    def _cached(self, key: str, builder):
        out = self._cache.get(key)
        if out is None:
            out = self._cache[key] = builder()
        return out

    def mean_costs(self) -> np.ndarray:
        """(B, n) per-lane Eq. (1) mean execution times."""
        return self._cached("mean", lambda: self.W.mean(axis=2))

    def std_costs(self, ddof: int = 1) -> np.ndarray:
        """(B, n) per-lane execution-time std over CPUs."""

        def build() -> np.ndarray:
            if self.n_procs <= ddof:
                return np.zeros((self.n_lanes, self.n_tasks))
            return self.W.std(axis=2, ddof=ddof)

        return self._cached(f"std{ddof}", build)

    def upward_rank(self, weights: np.ndarray) -> np.ndarray:
        """(B, n) upward rank from per-lane node weights ``(B, n)``."""
        rank = weights + 0.0
        ids = self.base.succ_ids
        costs = self.succ_costs_b
        for nodes, flat, offsets, _ in self.base._up_batches():
            candidates = costs[:, flat] + rank[:, ids[flat]]
            best = np.maximum.reduceat(candidates, offsets, axis=1)
            rank[:, nodes] = weights[:, nodes] + np.maximum(best, 0.0)
        return rank

    def mean_upward_rank(self) -> np.ndarray:
        """HEFT's rank (cached): upward rank over mean costs."""
        return self._cached(
            "rank_mean", lambda: self.upward_rank(self.mean_costs())
        )

    def std_upward_rank(self) -> np.ndarray:
        """SDBATS's rank (cached): upward rank over std costs."""
        return self._cached(
            "rank_std", lambda: self.upward_rank(self.std_costs())
        )

    def oct_table(self) -> np.ndarray:
        """(B, n, p) PEFT Optimistic Cost Table per lane (cached)."""

        def build() -> np.ndarray:
            n, p = self.n_tasks, self.n_procs
            table = np.zeros((self.n_lanes, n, p))
            ids = self.base.succ_ids
            costs = self.succ_costs_b
            for nodes, flat, offsets, _ in self.base._up_batches():
                succ = ids[flat]
                base = table[:, succ, :] + self.W[:, succ, :]
                with_comm = base + costs[:, flat, None]
                global_min = with_comm.min(axis=2)
                per_p = np.minimum(global_min[..., None], base)
                rows = np.maximum.reduceat(per_p, offsets, axis=1)
                np.maximum(rows, 0.0, out=rows)
                table[:, nodes, :] = rows
            return table

        return self._cached("oct_table", build)

    def oct_rank(self) -> np.ndarray:
        """(B, n) PEFT priority: per-lane OCT row means (cached)."""
        return self._cached(
            "oct_rank", lambda: self.oct_table().mean(axis=2)
        )


# ----------------------------------------------------------------------
# batched per-CPU timelines (statics only; HDLTS append needs none)
# ----------------------------------------------------------------------
class _BatchTimelines:
    """SoA mirror of one :class:`ProcessorTimeline` per (lane, CPU).

    ``starts``/``ends`` are ``(B, p, S)`` slot arrays padded with
    ``+inf`` past ``counts``; slots are kept sorted by ``(start, end)``
    exactly like the scalar timeline's key list.  The insertion gap
    scan vectorizes ``earliest_start_fast``'s monotone-ends loop; the
    shapes where that proof does not hold (eps-scale durations, a lane
    knocked non-monotone by a boundary point slot) fall back to a
    faithful per-lane port of the scalar ``earliest_start``/``fits``.
    """

    def __init__(self, n_lanes: int, n_procs: int, capacity: int) -> None:
        capacity = max(4, capacity)
        self.n_lanes = n_lanes
        self.n_procs = n_procs
        # flat (lane * p + CPU, S) layout: one fancy index on axis 0
        # reaches a contiguous row, which is much cheaper than the 2-D
        # advanced indexing a (B, p, S) layout would force per step
        self.starts = np.full((n_lanes * n_procs, capacity), np.inf)
        self.ends = np.full((n_lanes * n_procs, capacity), np.inf)
        # derived rows kept in sync by ``insert`` (touched rows only),
        # saving two full-slab passes per gap scan: ``starts + _EPS``
        # and the one-right-shifted ends (gap predecessors)
        self.starts_eps = np.full((n_lanes * n_procs, capacity), np.inf)
        self.prev_ends = np.full((n_lanes * n_procs, capacity), np.inf)
        self.prev_ends[:, 0] = 0.0
        self.counts = np.zeros(n_lanes * n_procs, dtype=np.intp)
        self.max_end = np.zeros((n_lanes, n_procs))
        self.monotone = np.ones(n_lanes * n_procs, dtype=bool)
        # hot width: max slot count over all (lane, CPU) rows.  Every
        # column past it is an untouched +inf pad, so the vectorized
        # scans slice to ``hot + 1`` (one pad column -- the guaranteed
        # append-fallback slot) instead of sweeping the full capacity.
        self.hot = 0
        self._alloc_scratch()
        self._row_id = np.arange(n_lanes * n_procs)
        # per-row slot-list cache for the scalar fallback (a bad row is
        # re-queried every step but mutated only when an insert lands
        # on it); version counters invalidate on write
        self._version = np.zeros(n_lanes * n_procs, dtype=np.int64)
        self._fallback_cache: Dict[int, Tuple[int, list, list]] = {}

    def _alloc_scratch(self) -> None:
        shape = self.starts.shape
        self._sf2 = np.empty(shape)
        self._sf3 = np.empty(shape)
        self._sb1 = np.empty(shape, dtype=bool)
        self._sb2 = np.empty(shape, dtype=bool)

    def _ensure_capacity(self) -> None:
        capacity = self.starts.shape[1]
        needed = self.hot + 3
        if needed <= capacity:
            return
        grow = max(needed, 2 * capacity)
        pad = grow - capacity
        shape = (self.starts.shape[0], pad)
        self.starts = np.concatenate(
            [self.starts, np.full(shape, np.inf)], axis=1
        )
        self.ends = np.concatenate(
            [self.ends, np.full(shape, np.inf)], axis=1
        )
        self.starts_eps = np.concatenate(
            [self.starts_eps, np.full(shape, np.inf)], axis=1
        )
        self.prev_ends = np.concatenate(
            [self.prev_ends, np.full(shape, np.inf)], axis=1
        )
        self._alloc_scratch()

    # ------------------------------------------------------------------
    def earliest_start(
        self, ready: np.ndarray, dur: np.ndarray, insertion: bool
    ) -> np.ndarray:
        """(B, p) earliest starts, bit-identical to the scalar engine."""
        if not insertion:
            return np.maximum(ready, self.max_end)
        # slice to the hot window: the fullest row's first pad column is
        # ``hot``, so every row keeps its append-fallback pad in view.
        # All arithmetic lands in preallocated scratch rows -- these
        # temporaries are large enough that fresh allocations would go
        # through mmap (and its page faults) on every step
        w = self.hot + 1
        n_rows = self.n_lanes * self.n_procs
        ends = self.ends[:, :w]
        ready_f = ready.reshape(n_rows, 1)
        dur_f = dur.reshape(n_rows, 1)
        gap = self._sf2[:, :w]
        fit = self._sf3[:, :w]
        feasible = self._sb1[:, :w]
        open_ = self._sb2[:, :w]
        np.maximum(ready_f, self.prev_ends[:, :w], out=gap)
        np.add(gap, dur_f, out=fit)
        np.less_equal(fit, self.starts_eps[:, :w], out=feasible)
        np.greater(ends, ready_f, out=open_)
        feasible &= open_
        # the first pad slot (starts/ends = +inf past counts) is always
        # feasible with gap = max(ready, max_end): exactly the scalar
        # append-after-everything fallback, so argmax needs no miss case
        idx = feasible.argmax(axis=1)
        out = gap[self._row_id, idx].reshape(self.n_lanes, self.n_procs)
        bad = (~self.monotone).reshape(self.n_lanes, self.n_procs) | (
            dur <= _EPS
        )
        if bad.any():
            for b, q in zip(*np.nonzero(bad)):
                out[b, q] = self._scalar_earliest(
                    int(b) * self.n_procs + int(q),
                    float(ready[b, q]),
                    float(dur[b, q]),
                )
        return out

    def _scalar_earliest(
        self, row: int, ready: float, duration: float
    ) -> float:
        """Port of ``ProcessorTimeline.earliest_start`` (insertion)."""
        count = int(self.counts[row])
        avail = float(self.max_end.reshape(-1)[row])
        if not count:
            return max(ready, avail)
        version = int(self._version[row])
        cached = self._fallback_cache.get(row)
        if cached is not None and cached[0] == version:
            starts, ends = cached[1], cached[2]
        else:
            starts = self.starts[row, :count].tolist()
            ends = self.ends[row, :count].tolist()
            self._fallback_cache[row] = (version, starts, ends)

        def fits(lo_t: float, hi_t: float) -> bool:
            if lo_t < -_EPS:
                return False
            if hi_t - lo_t <= _EPS:
                return not any(
                    s < lo_t < e - _EPS for s, e in zip(starts, ends)
                )
            lo = bisect_right(starts, lo_t)
            hi = bisect_left(starts, hi_t - _EPS)
            if lo < hi:
                return False
            j = hi
            while j > 0:
                c_start, c_end = starts[j - 1], ends[j - 1]
                j -= 1
                if c_end - c_start <= _EPS:
                    continue
                return c_end <= lo_t + _EPS
            return True

        first = bisect_right(ends, ready)
        prev_end = ends[first - 1] if first > 0 else 0.0
        for idx in range(first, count):
            gap_start = max(ready, prev_end)
            if gap_start + duration <= starts[idx] + _EPS and fits(
                gap_start, gap_start + duration
            ):
                return gap_start
            prev_end = max(prev_end, ends[idx])
        fallback = max(ready, prev_end)
        if fits(fallback, fallback + duration):
            return fallback
        return max(ready, avail)

    # ------------------------------------------------------------------
    def insert(
        self,
        lanes: np.ndarray,
        procs: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
    ) -> None:
        """Reserve ``[start, end)`` on each (lane, CPU) pair.

        Pairs must be distinct within one call.  Mirrors
        ``ProcessorTimeline.reserve``: sorted ``(start, end)`` insertion
        position, monotone-ends break detection, ``max_end`` update.
        """
        if not len(lanes):
            return
        self._ensure_capacity()
        rows = lanes * self.n_procs + procs
        # hot window + 1 shift column: rows hold at most ``hot`` slots,
        # so the shifted row fits in ``hot + 1`` columns and one pad
        # column keeps the write-back from touching live data
        w = min(self.hot + 2, self.starts.shape[1])
        row_s = self.starts[rows, :w]  # (K, w) gather copies
        row_e = self.ends[rows, :w]
        count = self.counts[rows]
        # bisect_right on the (start, end) key list
        pos = (row_s < start[:, None]).sum(axis=1) + (
            (row_s == start[:, None]) & (row_e <= end[:, None])
        ).sum(axis=1)
        col = np.arange(w)
        shifted_s = np.empty_like(row_s)
        shifted_s[:, 0] = row_s[:, 0]
        shifted_s[:, 1:] = row_s[:, :-1]
        shifted_e = np.empty_like(row_e)
        shifted_e[:, 0] = row_e[:, 0]
        shifted_e[:, 1:] = row_e[:, :-1]
        at = col[None, :] == pos[:, None]
        before = col[None, :] < pos[:, None]
        new_s = np.where(before, row_s, np.where(at, start[:, None], shifted_s))
        new_e = np.where(before, row_e, np.where(at, end[:, None], shifted_e))
        # monotone break (old row values; the +inf pads make the right
        # test vacuous for appends, matching reserve's append fast path)
        ar = np.arange(len(lanes))
        prev_e = row_e[ar, np.maximum(pos - 1, 0)]
        next_e = row_e[ar, pos]
        broke = ((pos > 0) & (prev_e > end)) | (end > next_e)
        self.monotone[rows] &= ~broke
        self._version[rows] += 1
        self.starts[rows, :w] = new_s
        self.ends[rows, :w] = new_e
        # keep the derived scan rows in sync (capacity >= hot + 3 after
        # _ensure_capacity, so the w + 1 shift column always exists)
        self.starts_eps[rows, :w] = new_s + _EPS
        self.prev_ends[rows, 1 : w + 1] = new_e
        self.counts[rows] = count + 1
        self.hot = max(self.hot, int(count.max()) + 1)
        self.max_end[lanes, procs] = np.maximum(
            self.max_end[lanes, procs], end
        )


# ----------------------------------------------------------------------
# shared ragged helpers
# ----------------------------------------------------------------------
def _gather_ready(
    indptr: np.ndarray,
    ids: np.ndarray,
    costs_b: np.ndarray,
    fin_of: np.ndarray,
    proc_of: np.ndarray,
    best_finish: np.ndarray,
    b_idx: np.ndarray,
    t_idx: np.ndarray,
    n_procs: int,
) -> np.ndarray:
    """(K, p) Definition-5 ready rows for (lane, task) pairs.

    Per pair: ``max over parents of min(LF[parent], BF[parent] + comm)``
    floored at 0 -- bit-identical to ``StaticEFTEngine.ready_vector`` /
    ``EFTEngine._ready_row`` (min/max reductions are order-free and the
    single ``BF + comm`` addition per parent edge is preserved).

    Parents here are single-copy tasks (never the duplicable entry), so
    ``LF[parent]`` is ``fin_of`` on ``proc_of`` and ``+inf`` elsewhere:
    the arrival row is ``via`` everywhere except the parent's own CPU,
    where ``min(fin, via) == fin`` exactly (``via = fin + comm >= fin``).
    """
    starts = indptr[t_idx]
    counts = indptr[t_idx + 1] - starts
    out = np.zeros((len(t_idx), n_procs))
    if not len(t_idx) or int(counts.sum()) == 0:
        return out
    flat, offsets = _ragged_indices(starts, counts)
    b_of = np.repeat(b_idx, counts)
    parents = ids[flat]
    via = best_finish[b_of, parents] + costs_b[b_of, flat]
    arrivals = np.repeat(via, n_procs).reshape(-1, n_procs)
    arrivals[np.arange(via.size), proc_of[b_of, parents]] = fin_of[
        b_of, parents
    ]
    nonzero = counts > 0
    seg = np.maximum.reduceat(arrivals, offsets[nonzero], axis=0)
    out[nonzero] = np.maximum(seg, 0.0)
    return out


def _select_min_score(
    scores_by_proc: List[np.ndarray], starts_by_proc: List[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The baselines' CPU pick: strict 1e-12 improvement, low CPU wins.

    A sequential loop over CPUs with vectorized lane updates -- the
    exact comparison sequence of ``place_min_eft``/``place_best``
    (which is *not* a plain argmin: an eps-scale improvement on a later
    CPU does not displace an earlier winner).
    """
    n_lanes = len(scores_by_proc[0])
    best_score = np.full(n_lanes, np.inf)
    best_proc = np.full(n_lanes, -1, dtype=np.intp)
    best_start = np.zeros(n_lanes)
    for q, (score, start) in enumerate(zip(scores_by_proc, starts_by_proc)):
        better = score < best_score - 1e-12
        best_score = np.where(better, score, best_score)
        best_proc = np.where(better, q, best_proc)
        best_start = np.where(better, start, best_start)
    return best_proc, best_start, best_score


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """Outcome of one batched scheduler run over a :class:`CompiledBatch`.

    ``makespans[lane]`` is bit-identical to the scalar compiled path's
    ``Schedule.makespan`` for the same instance.  ``counters`` holds
    the same per-scheduler observability totals the scalar runs would
    have produced (``NAME/eft_evaluations``, ``NAME/decisions``,
    ``NAME/runs``, HDLTS extras); keys follow the scalar key-existence
    semantics (duplication counters appear only when an event fired).
    :meth:`schedule_for` replays a lane's decisions into a full
    :class:`Schedule` for the differential suite.
    """

    scheduler: str
    batch: CompiledBatch
    makespans: np.ndarray
    counters: Dict[str, int]
    tasks: np.ndarray  # (B, steps) commit order
    procs: np.ndarray  # (B, steps)
    starts: np.ndarray  # (B, steps)
    dup_steps: Optional[np.ndarray] = None  # (B, steps) bool, HDLTS
    entry_proc: Optional[np.ndarray] = None  # (B,), SDBATS primary CPU
    entry_dup: Optional[np.ndarray] = None  # (B,) bool, SDBATS mirrors

    def schedule_for(self, lane: int) -> Schedule:
        """Replay lane ``lane`` into a :class:`Schedule` (exact floats)."""
        compiled = self.batch.instances[lane]
        graph = compiled.graph
        entry = self.batch.entry
        schedule = Schedule(graph)
        if self.entry_proc is not None:
            best = int(self.entry_proc[lane])
            schedule.place(entry, best, 0.0)
            if self.entry_dup is not None and bool(self.entry_dup[lane]):
                for proc in graph.procs():
                    if proc != best:
                        schedule.place(entry, proc, 0.0, duplicate=True)
        for k in range(self.tasks.shape[1]):
            proc = int(self.procs[lane, k])
            if self.dup_steps is not None and bool(self.dup_steps[lane, k]):
                schedule.place(entry, proc, 0.0, duplicate=True)
            schedule.place(
                int(self.tasks[lane, k]), proc, float(self.starts[lane, k])
            )
        return schedule


# ----------------------------------------------------------------------
# static-list baselines (HEFT / PEFT / SDBATS) in lockstep
# ----------------------------------------------------------------------
def _static_orders(batch: CompiledBatch, cfg: _StaticConfig) -> np.ndarray:
    """(B, n) per-lane task orders, exactly the scalar derivations."""
    n = batch.n_tasks
    position = batch.base.topo_position
    if cfg.rank == "mean":
        ranks = batch.mean_upward_rank()
    elif cfg.rank == "std":
        ranks = batch.std_upward_rank()
    else:  # "oct": PEFT's dynamic heap order, simulated per lane
        ranks = batch.oct_rank()
        return _peft_orders(batch, ranks)
    # one lexsort over all lanes: with the lane index as the primary
    # (last) key, the stable within-lane order is exactly the per-lane
    # ``np.lexsort((position, -ranks[lane]))`` permutation
    n_lanes = batch.n_lanes
    flat = np.lexsort(
        (
            np.tile(position, n_lanes),
            np.negative(ranks).ravel(),
            np.repeat(np.arange(n_lanes), n),
        )
    )
    return flat.reshape(n_lanes, n) - np.arange(n_lanes)[:, None] * n


def _peft_orders(batch: CompiledBatch, ranks: np.ndarray) -> np.ndarray:
    """PEFT's ready-heap consumption order, all lanes per step.

    The scalar heap pops the ``(-rank, task)`` minimum of the ready
    set: the maximum rank, ties to the lowest task id.  ``argmax`` over
    a row whose non-ready entries are ``-inf`` returns its *first*
    maximum -- the lowest-id maximum -- so one argmax per step across
    all lanes reproduces every lane's pop sequence exactly.
    """
    base = batch.base
    n = batch.n_tasks
    n_lanes = batch.n_lanes
    lanes = np.arange(n_lanes)
    indeg = np.broadcast_to(np.diff(base.pred_indptr), (n_lanes, n)).copy()
    score = np.where(indeg == 0, ranks, -np.inf)
    orders = np.empty((n_lanes, n), dtype=np.intp)
    for k in range(n):
        task = score.argmax(axis=1)
        orders[:, k] = task
        score[lanes, task] = -np.inf
        s0 = base.succ_indptr[task]
        cnt = base.succ_indptr[task + 1] - s0
        if int(cnt.sum()):
            # one task per lane, distinct children: no write conflicts
            flat, _ = _ragged_indices(s0, cnt)
            b_of = np.repeat(lanes, cnt)
            child = base.succ_ids[flat]
            newdeg = indeg[b_of, child] - 1
            indeg[b_of, child] = newdeg
            released = newdeg == 0
            rb, rc = b_of[released], child[released]
            if rb.size:
                score[rb, rc] = ranks[rb, rc]
    return orders


def _run_static(batch: CompiledBatch, name: str, cfg: _StaticConfig) -> BatchResult:
    n_lanes, n, p = batch.n_lanes, batch.n_tasks, batch.n_procs
    entry = batch.entry
    W = batch.W
    base = batch.base
    lanes = np.arange(n_lanes)
    orders = _static_orders(batch, cfg)

    # statics place every task exactly once, so the scalar-engine dense
    # local-finish table collapses to (CPU, finish) scalars per task --
    # except the SDBATS entry, whose mirror copies keep a (B, p) row
    proc_of = np.zeros((n_lanes, n), dtype=np.intp)
    fin_of = np.full((n_lanes, n), np.inf)
    entry_fin = None
    best_finish = np.full((n_lanes, n), np.inf)
    # start small and double: the hot-window slices then stay nearly
    # dense in the slab (a capacity of n + 3 up front would make every
    # ``[:, :w]`` view ~4x strided, which triples the scan cost)
    timelines = _BatchTimelines(n_lanes, p, capacity=8)
    makespan = np.zeros(n_lanes)
    oct_b = batch.oct_table() if cfg.peft else None

    entry_proc = None
    entry_dup = None
    start_step = 0
    if cfg.sdbats:
        if not bool((orders[:, 0] == entry).all()):  # pragma: no cover
            raise AssertionError("entry task must head the static list")
        entry_fin = np.full((n_lanes, p), np.inf)
        entry_proc = W[:, entry, :].argmin(axis=1)
        fin = W[lanes, entry, entry_proc]
        timelines.insert(lanes, entry_proc, np.zeros(n_lanes), fin)
        entry_fin[lanes, entry_proc] = fin
        best_finish[lanes, entry] = fin
        makespan = np.maximum(makespan, fin)  # the entry's primary copy
        entry_dup = np.zeros(n_lanes, dtype=bool)
        if cfg.duplicate_entry:
            entry_dup = W[:, entry, :].max(axis=1) > 0
            for q in range(p):
                mirror = np.flatnonzero(entry_dup & (entry_proc != q))
                if not mirror.size:
                    continue
                fin_q = W[mirror, entry, q]
                timelines.insert(
                    mirror,
                    np.full(mirror.size, q, dtype=np.intp),
                    np.zeros(mirror.size),
                    fin_q,
                )
                entry_fin[mirror, q] = fin_q
                best_finish[mirror, entry] = np.minimum(
                    best_finish[mirror, entry], fin_q
                )
        start_step = 1

    steps = n - start_step
    tasks_rec = orders[:, start_step:].copy()
    procs_rec = np.empty((n_lanes, steps), dtype=np.intp)
    starts_rec = np.empty((n_lanes, steps))

    # The whole (step, lane) -> predecessor-edge gather is known up
    # front (static lists), so build it once, step-major: per step the
    # plan is a contiguous slice of flat edge indices + lane owners,
    # saving the per-step cumsum/repeat of the dynamic ragged helper.
    t_sm = orders.T[start_step:]  # (steps, B)
    costs_sm = W[lanes[None, :], t_sm]  # (steps, B, p) one gather
    oct_sm = oct_b[lanes[None, :], t_sm] if cfg.peft else None
    g_starts = base.pred_indptr[t_sm]
    g_counts = (base.pred_indptr[t_sm + 1] - g_starts).ravel()
    seg = np.zeros(g_counts.size + 1, dtype=np.intp)
    np.cumsum(g_counts, out=seg[1:])
    flat_all = np.repeat(g_starts.ravel() - seg[:-1], g_counts) + np.arange(
        seg[-1]
    )
    lane_all = np.repeat(np.tile(lanes, steps), g_counts)
    parent_all = base.pred_ids[flat_all]
    # only SDBATS mirrors make the entry multi-copy; everywhere else
    # every parent's local-finish row is ``fin_of`` at ``proc_of``
    ent_all = parent_all == entry if cfg.sdbats else None

    for k in range(start_step, n):
        tasks = orders[:, k]
        row0 = (k - start_step) * n_lanes
        lo, hi = seg[row0], seg[row0 + n_lanes]
        bo = lane_all[lo:hi]
        parents = parent_all[lo:hi]
        via = (
            best_finish[bo, parents]
            + batch.pred_costs_b[bo, flat_all[lo:hi]]
        )
        arrivals = np.repeat(via, p).reshape(-1, p)
        if cfg.sdbats:
            em = ent_all[lo:hi]
            ne = np.flatnonzero(~em)
            arrivals[ne, proc_of[bo[ne], parents[ne]]] = fin_of[
                bo[ne], parents[ne]
            ]
            if em.any():
                arrivals[em] = np.minimum(
                    entry_fin[bo[em]], via[em, None]
                )
        else:
            arrivals[np.arange(via.size), proc_of[bo, parents]] = fin_of[
                bo, parents
            ]
        cnts = g_counts[row0 : row0 + n_lanes]
        nz = cnts > 0
        ready = np.zeros((n_lanes, p))
        if hi > lo:
            segmax = np.maximum.reduceat(
                arrivals, seg[row0 : row0 + n_lanes][nz] - lo, axis=0
            )
            ready[nz] = np.maximum(segmax, 0.0)
        costs = costs_sm[k - start_step]  # (B, p)
        est = timelines.earliest_start(ready, costs, cfg.insertion)
        eft = est + costs
        if cfg.peft:
            rows = oct_sm[k - start_step]  # (B, p)
            scores = [eft[:, q] + rows[:, q] for q in range(p)]
        else:
            scores = [eft[:, q] for q in range(p)]
        proc, start, _ = _select_min_score(
            scores, [est[:, q] for q in range(p)]
        )
        dur = costs[lanes, proc]
        fin = start + dur
        timelines.insert(lanes, proc, start, fin)
        # first (and only) placement of each task: direct writes equal
        # the scalar engine's min-with-inf updates bit for bit
        proc_of[lanes, tasks] = proc
        fin_of[lanes, tasks] = fin
        best_finish[lanes, tasks] = fin
        makespan = np.maximum(makespan, fin)
        idx = k - start_step
        procs_rec[:, idx] = proc
        starts_rec[:, idx] = start

    counters = {
        f"{cfg.obs_name}/eft_evaluations": n_lanes * steps * p,
        f"{cfg.obs_name}/decisions": n_lanes * steps,
        f"{cfg.obs_name}/runs": n_lanes,
    }
    return BatchResult(
        scheduler=name,
        batch=batch,
        makespans=makespan,
        counters=counters,
        tasks=tasks_rec,
        procs=procs_rec,
        starts=starts_rec,
        entry_proc=entry_proc,
        entry_dup=entry_dup,
    )


# ----------------------------------------------------------------------
# HDLTS (append mode) with a batched ready-list step
# ----------------------------------------------------------------------
def _run_hdlts(batch: CompiledBatch, name: str, cfg: _DynamicConfig) -> BatchResult:
    n_lanes, n, p = batch.n_lanes, batch.n_tasks, batch.n_procs
    entry = batch.entry
    W = batch.W
    base = batch.base
    lanes = np.arange(n_lanes)
    child_ids, _ = base.succ_slice(entry)
    entry_children = np.zeros(n, dtype=bool)
    entry_children[child_ids] = True
    rule = cfg.priority
    rank_u = (
        batch.upward_rank(batch.mean_costs())
        if rule is PriorityRule.UPWARD_RANK
        else None
    )
    pv_rule = rule is PriorityRule.PENALTY_VALUE and p > 1

    # non-entry tasks are single-copy: their local-finish rows collapse
    # to (CPU, finish) scalars.  Only the entry can gain duplicate
    # copies, so it alone keeps a dense (B, p) local-finish row.
    proc_of = np.zeros((n_lanes, n), dtype=np.intp)
    fin_of = np.full((n_lanes, n), np.inf)
    lf_entry = np.full((n_lanes, p), np.inf)
    best_finish = np.full((n_lanes, n), np.inf)
    # frontier state is task-major (n, B, ...): the per-step union
    # frontier slice ``ready_t[cols]`` is then a contiguous first-axis
    # gather instead of a strided middle-axis one
    ready_t = np.zeros((n, n_lanes, p))
    non_entry_t = np.zeros((n, n_lanes, p))
    W_t = np.ascontiguousarray(W.transpose(1, 0, 2))
    rank_u_t = (
        np.ascontiguousarray(rank_u.T) if rank_u is not None else None
    )
    avail = np.zeros((n_lanes, p))
    first_start = np.full((n_lanes, p), np.inf)
    mask_t = np.zeros((n, n_lanes), dtype=bool)
    indeg = np.broadcast_to(np.diff(base.pred_indptr), (n_lanes, n)).copy()
    makespan = np.zeros(n_lanes)
    # the single entry is the only zero-in-degree task; its ready row is
    # all zeros (no parents), exactly the scalar refresh
    mask_t[entry, :] = True

    tasks_rec = np.empty((n_lanes, n), dtype=np.intp)
    procs_rec = np.empty((n_lanes, n), dtype=np.intp)
    starts_rec = np.empty((n_lanes, n))
    dup_rec = np.zeros((n_lanes, n), dtype=bool)

    c_eft = 0
    c_rows = 0
    c_cols = 0
    dup_yes = 0
    dup_no = 0

    for step in range(n):
        cols = np.flatnonzero(mask_t.any(axis=1))
        sub = mask_t[cols]  # (k, B)
        c_eft += int(sub.sum()) * p
        est = np.maximum(ready_t[cols], avail[None, :, :])
        eft = est + W_t[cols]  # (k, B, p)

        if pv_rule:
            # the scalar fast path's hand-expanded sample-std kernel,
            # one axis deeper: identical ufunc sequence per lane row
            mean = np.add.reduce(eft, axis=2, keepdims=True)
            mean /= p
            dev = eft - mean
            dev *= dev
            var = np.add.reduce(dev, axis=2)
            var /= p - 1
            priorities = np.sqrt(var)
        elif rule is PriorityRule.PENALTY_VALUE:
            priorities = np.zeros((len(cols), n_lanes))
        elif rule is PriorityRule.EFT_RANGE:
            priorities = eft.max(axis=2) - eft.min(axis=2)
        elif rule is PriorityRule.MEAN_EFT:
            priorities = eft.mean(axis=2)
        elif rule is PriorityRule.MIN_EFT_FIRST:
            priorities = -eft.min(axis=2)
        else:  # UPWARD_RANK
            priorities = rank_u_t[cols]

        # lanes see only their own frontier; -inf holes cannot win, so
        # argmax's first-max along the frontier axis is the lane's
        # lowest-id maximum (the scalar tie-break) and argmin picks the
        # lowest CPU
        masked = np.where(sub, priorities, -np.inf)  # (k, B)
        index = masked.argmax(axis=0)
        selected = cols[index]
        lane_eft = eft[index, lanes, :]
        proc = lane_eft.argmin(axis=1)

        if cfg.duplicate_entry:
            cand = (selected != entry) & entry_children[selected]
            if cand.any():
                cb = np.flatnonzero(cand)
                cp = proc[cb]
                w_entry = W[cb, entry, cp]
                comm = batch.entry_comm_b[cb, selected[cb]]
                via = np.minimum(
                    lf_entry[cb, cp],
                    best_finish[cb, entry] + comm,
                )
                window = first_start[cb, cp] >= w_entry - _EPS
                dup = (
                    window
                    & np.isinf(lf_entry[cb, cp])
                    & (w_entry < via)
                )
                dup_yes += int(dup.sum())
                dup_no += int((~dup).sum())
                db = cb[dup]
                if db.size:
                    dp = proc[db]
                    fin = W[db, entry, dp]
                    lf_entry[db, dp] = fin
                    best_finish[db, entry] = np.minimum(
                        best_finish[db, entry], fin
                    )
                    avail[db, dp] = np.maximum(avail[db, dp], fin)
                    first_start[db, dp] = 0.0
                    dup_rec[db, step] = True

        cost = W[lanes, selected, proc]
        r = ready_t[selected, lanes, proc]
        start = np.maximum(r, avail[lanes, proc])
        fin = start + cost
        avail[lanes, proc] = fin
        first_start[lanes, proc] = np.minimum(first_start[lanes, proc], start)
        if step == 0:
            # the single entry is every lane's whole first frontier; its
            # primary copy lands in the dense entry row
            lf_entry[lanes, proc] = fin
        else:
            # first (and only) commit of a single-copy task: direct
            # writes equal the scalar min-with-inf updates bit for bit
            proc_of[lanes, selected] = proc
            fin_of[lanes, selected] = fin
        best_finish[lanes, selected] = np.minimum(
            best_finish[lanes, selected], fin
        )
        makespan = np.maximum(makespan, fin)
        mask_t[selected, lanes] = False
        tasks_rec[:, step] = selected
        procs_rec[:, step] = proc
        starts_rec[:, step] = start

        # release children whose last parent just committed
        s0 = base.succ_indptr[selected]
        scnt = base.succ_indptr[selected + 1] - s0
        if int(scnt.sum()):
            flat, _ = _ragged_indices(s0, scnt)
            b_of = np.repeat(lanes, scnt)
            child = base.succ_ids[flat]
            newdeg = indeg[b_of, child] - 1
            indeg[b_of, child] = newdeg
            released = newdeg == 0
            rb, rc = b_of[released], child[released]
            c_rows += rb.size
            if rb.size:
                mask_t[rc, rb] = True
                is_ec = entry_children[rc]
                ob, oc = rb[~is_ec], rc[~is_ec]
                if ob.size:
                    ready_t[oc, ob, :] = _gather_ready(
                        base.pred_indptr,
                        base.pred_ids,
                        batch.pred_costs_b,
                        fin_of,
                        proc_of,
                        best_finish,
                        ob,
                        oc,
                        p,
                    )
                eb, ec = rb[is_ec], rc[is_ec]
                if eb.size:
                    non_entry_t[ec, eb, :] = _gather_ready(
                        batch.ne_indptr,
                        batch.ne_ids,
                        batch.ne_costs_b,
                        fin_of,
                        proc_of,
                        best_finish,
                        eb,
                        ec,
                        p,
                    )
                    comm = batch.entry_comm_b[eb, ec]
                    via = np.minimum(
                        lf_entry[eb],
                        (best_finish[eb, entry] + comm)[:, None],
                    )
                    if cfg.duplicate_entry:
                        w_entry = W[eb, entry, :]
                        ok = (
                            first_start[eb] >= w_entry - _EPS
                        ) & np.isinf(lf_entry[eb])
                        via = np.where(ok & (w_entry < via), w_entry, via)
                    ready_t[ec, eb, :] = np.maximum(
                        non_entry_t[ec, eb, :], via
                    )

        # the commit (and any duplicate) only touched the chosen CPU:
        # refresh the pending entry children's dirty column there
        # (scan only the entry-child rows; pair order is irrelevant
        # to the independent per-(lane, task) scatter updates)
        pj, pb = np.nonzero(mask_t[child_ids])
        pc = child_ids[pj]
        c_cols += pb.size
        if pb.size:
            pp = proc[pb]
            comm = batch.entry_comm_b[pb, pc]
            via = np.minimum(
                lf_entry[pb, pp], best_finish[pb, entry] + comm
            )
            if cfg.duplicate_entry:
                w_entry = W[pb, entry, pp]
                ok = (first_start[pb, pp] >= w_entry - _EPS) & np.isinf(
                    lf_entry[pb, pp]
                )
                via = np.where(ok & (w_entry < via), w_entry, via)
            ready_t[pc, pb, pp] = np.maximum(via, non_entry_t[pc, pb, pp])

    counters = {
        f"{cfg.obs_name}/eft_evaluations": c_eft,
        f"{cfg.obs_name}/decisions": n_lanes * n,
        f"{cfg.obs_name}/ready_rows_recomputed": c_rows,
        f"{cfg.obs_name}/entry_child_col_refreshes": c_cols,
        f"{cfg.obs_name}/runs": n_lanes,
    }
    # scalar key-existence semantics: duplication counters appear only
    # when at least one accept/reject event fired
    if dup_yes:
        counters[f"{cfg.obs_name}/duplication_accepted"] = dup_yes
    if dup_no:
        counters[f"{cfg.obs_name}/duplication_rejected"] = dup_no
    return BatchResult(
        scheduler=name,
        batch=batch,
        makespans=makespan,
        counters=counters,
        tasks=tasks_rec,
        procs=procs_rec,
        starts=starts_rec,
        dup_steps=dup_rec,
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_batch(batch: CompiledBatch, scheduler: str) -> BatchResult:
    """Run one batchable registry scheduler over a packed batch.

    Raises ``KeyError`` for schedulers the kernel does not cover (check
    :data:`BATCHABLE` first); the caller owns eligibility gating
    (:func:`instance_batchable`) and counter emission.
    """
    cfg = _CONFIGS.get(scheduler)
    if cfg is None:
        raise KeyError(
            f"scheduler {scheduler!r} is not batchable; "
            f"batchable: {sorted(BATCHABLE)}"
        )
    if isinstance(cfg, _StaticConfig):
        return _run_static(batch, scheduler, cfg)
    return _run_hdlts(batch, scheduler, cfg)

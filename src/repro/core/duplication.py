"""Effective entry-task duplication (the paper's Algorithm 1).

The entry task is the only task HDLTS ever duplicates.  A duplicate on
CPU ``k`` executes over ``[0, W(entry, k))`` -- the entry has no inputs, so
a copy can start at time zero wherever that window is still idle.  The
duplicate is *effective* (worth materializing for a child ``t`` being
placed on ``k``) exactly when it delivers the entry's output earlier than
the network can::

    W(entry, k)  <  min over committed copies c of
                       finish(c) + (0 if c is on k else Comm(entry, t))

which is Algorithm 1's ``EST(V1, k) < AFT(V1) + Comm_Cost(V1, Vj)`` test
generalized to any set of already-committed copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.schedule import Schedule

__all__ = ["DuplicationDecision", "entry_duplication_plan", "entry_arrival"]


@dataclass(frozen=True)
class DuplicationDecision:
    """Outcome of Algorithm 1 for one (child, CPU) pair."""

    proc: int
    #: True when a duplicate should be (or was assumed to be) used
    duplicate: bool
    #: earliest availability of the entry's data on ``proc``
    arrival: float


def _dup_fits(schedule: Schedule, entry: int, proc: int) -> bool:
    """A duplicate can still be inserted at time 0 on ``proc``."""
    duration = schedule.graph.cost(entry, proc)
    return schedule.timelines[proc].fits(0.0, duration)


def _committed_arrival(schedule: Schedule, entry: int, child: int, proc: int) -> float:
    """Arrival of the entry's data on ``proc`` via already-committed copies."""
    return schedule.arrival_time(entry, child, proc)


def entry_arrival(
    schedule: Schedule,
    entry: int,
    child: int,
    proc: int,
    allow_duplication: bool = True,
) -> float:
    """Earliest availability of the entry's output on ``proc`` for ``child``,
    considering a hypothetical duplicate when one still fits."""
    decision = entry_duplication_plan(schedule, entry, child, proc, allow_duplication)
    return decision.arrival


def entry_duplication_plan(
    schedule: Schedule,
    entry: int,
    child: int,
    proc: int,
    allow_duplication: bool = True,
) -> DuplicationDecision:
    """Run Algorithm 1 for placing ``child`` on ``proc``.

    Returns whether a duplicate would be used and the resulting arrival
    time of the entry's data.  A duplicate is chosen only when it is
    *strictly* earlier than every committed copy (no gratuitous copies).
    """
    via_network = _committed_arrival(schedule, entry, child, proc)
    if not allow_duplication:
        return DuplicationDecision(proc, False, via_network)
    # a copy already local to ``proc`` makes duplication pointless
    if any(c.proc == proc for c in schedule.copies(entry)):
        return DuplicationDecision(proc, False, via_network)
    if not _dup_fits(schedule, entry, proc):
        return DuplicationDecision(proc, False, via_network)
    dup_finish = schedule.graph.cost(entry, proc)
    if dup_finish < via_network:
        return DuplicationDecision(proc, True, dup_finish)
    return DuplicationDecision(proc, False, via_network)


def materialize_duplicate(schedule: Schedule, entry: int, proc: int) -> None:
    """Commit an entry duplicate on ``proc`` at time 0."""
    schedule.place(entry, proc, 0.0, duplicate=True)

"""A standard genetic algorithm for DAG scheduling.

Chromosome: ``(order, mapping)`` where ``order`` is a precedence-valid
task permutation (the scheduling list) and ``mapping[t]`` is the CPU of
task ``t``.  Decoding walks the list and places each task eagerly on its
mapped CPU (insertion-based), exactly like the list schedulers, so GA
results are directly comparable.

Operators keep chromosomes valid by construction:

* order crossover: a cut point splits parent A's prefix; the suffix is
  filled with the remaining tasks in parent B's relative order (both
  parents topological => child topological);
* order mutation: move one task to a random position within the window
  allowed by its closest parent/child in the list;
* mapping crossover: uniform; mapping mutation: reassign a random task;
* seeding: one chromosome decodes HEFT's rank order with min-EFT
  mapping, the rest are random -- the usual warm-start.

Deterministic given the RNG; elitism preserves the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.common import precedence_safe_order
from repro.core.base import Scheduler
from repro.model.ranking import upward_rank
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["GAConfig", "GeneticScheduler"]

Chromosome = Tuple[Tuple[int, ...], Tuple[int, ...]]  # (order, mapping)


@dataclass(frozen=True)
class GAConfig:
    """GA hyper-parameters (defaults sized for <=200-task graphs)."""

    population: int = 40
    generations: int = 60
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    elite: int = 2
    tournament: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0 <= self.crossover_rate <= 1:
            raise ValueError("crossover_rate must lie in [0, 1]")
        if not 0 <= self.mutation_rate <= 1:
            raise ValueError("mutation_rate must lie in [0, 1]")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must lie in [0, population)")


class GeneticScheduler(Scheduler):
    """Two-part-chromosome GA over (list order, CPU mapping)."""

    name = "GA"

    def __init__(self, config: Optional[GAConfig] = None) -> None:
        self.config = config or GAConfig()

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, graph: TaskGraph, chromosome: Chromosome) -> Schedule:
        """List-schedule the chromosome's order onto its CPU mapping."""
        order, mapping = chromosome
        schedule = Schedule(graph)
        for task in order:
            proc = mapping[task]
            ready = schedule.ready_time(task, proc)
            start = schedule.timelines[proc].earliest_start(
                ready, graph.cost(task, proc), insertion=True
            )
            schedule.place(task, proc, start)
        return schedule

    def fitness(self, graph: TaskGraph, chromosome: Chromosome) -> float:
        """Makespan of the decoded chromosome (lower is fitter)."""
        return self.decode(graph, chromosome).makespan

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    @staticmethod
    def _random_topological_order(
        graph: TaskGraph, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        indegree = [graph.in_degree(t) for t in graph.tasks()]
        frontier = [t for t in graph.tasks() if indegree[t] == 0]
        order: List[int] = []
        while frontier:
            i = int(rng.integers(len(frontier)))
            task = frontier.pop(i)
            order.append(task)
            for succ in graph.successors(task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        return tuple(order)

    @staticmethod
    def _order_crossover(
        a: Tuple[int, ...], b: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        cut = int(rng.integers(1, len(a))) if len(a) > 1 else 1
        head = a[:cut]
        head_set = set(head)
        tail = tuple(t for t in b if t not in head_set)
        return head + tail

    @staticmethod
    def _order_mutation(
        graph: TaskGraph, order: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Move one task within its precedence-legal window."""
        if len(order) < 2:
            return order
        position = {t: i for i, t in enumerate(order)}
        task = int(order[int(rng.integers(len(order)))])
        lo = max(
            (position[p] for p in graph.predecessors(task)), default=-1
        )
        hi = min(
            (position[s] for s in graph.successors(task)), default=len(order)
        )
        if hi - lo <= 2:
            return order  # no slack to move within
        # after removal, parents keep indices < position (unchanged) and
        # children shift down by one, so any insertion index in
        # [lo + 1, hi - 1] stays after every parent and before every child
        target = int(rng.integers(lo + 1, hi))
        tasks = list(order)
        tasks.remove(task)
        tasks.insert(target, task)
        return tuple(tasks)

    # ------------------------------------------------------------------
    def build_schedule(self, graph: TaskGraph) -> Schedule:
        """Evolve the population and decode the fittest chromosome."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n, p = graph.n_tasks, graph.n_procs

        def random_chromosome() -> Chromosome:
            order = self._random_topological_order(graph, rng)
            mapping = tuple(int(x) for x in rng.integers(0, p, size=n))
            return order, mapping

        # seed with HEFT's order + per-task argmin-cost mapping
        heft_order = tuple(
            precedence_safe_order(graph, upward_rank(graph), descending=True)
        )
        greedy_map = tuple(
            int(np.argmin(graph.cost_row(t))) for t in graph.tasks()
        )
        population: List[Chromosome] = [(heft_order, greedy_map)]
        population += [random_chromosome() for _ in range(cfg.population - 1)]
        scores = [self.fitness(graph, c) for c in population]

        def tournament() -> Chromosome:
            best_i = None
            for _ in range(cfg.tournament):
                i = int(rng.integers(cfg.population))
                if best_i is None or scores[i] < scores[best_i]:
                    best_i = i
            return population[best_i]  # type: ignore[index]

        for _ in range(cfg.generations):
            ranked = sorted(range(cfg.population), key=lambda i: scores[i])
            next_pop: List[Chromosome] = [
                population[i] for i in ranked[: cfg.elite]
            ]
            while len(next_pop) < cfg.population:
                mother, father = tournament(), tournament()
                order, mapping = mother
                if rng.random() < cfg.crossover_rate:
                    order = self._order_crossover(mother[0], father[0], rng)
                    mask = rng.random(n) < 0.5
                    mapping = tuple(
                        mother[1][t] if mask[t] else father[1][t]
                        for t in range(n)
                    )
                if rng.random() < cfg.mutation_rate:
                    order = self._order_mutation(graph, order, rng)
                if rng.random() < cfg.mutation_rate:
                    as_list = list(mapping)
                    as_list[int(rng.integers(n))] = int(rng.integers(p))
                    mapping = tuple(as_list)
                next_pop.append((order, mapping))
            population = next_pop
            scores = [self.fitness(graph, c) for c in population]

        best = population[int(np.argmin(scores))]
        return self.decode(graph, best)

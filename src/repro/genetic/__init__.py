"""Genetic-algorithm scheduling (the paper's Section II GA family).

The paper contrasts list scheduling against genetic approaches ([12]-
[17]): GAs search harder and can produce better schedules, at far higher
cost.  :class:`GeneticScheduler` implements the standard two-part
chromosome (topological task permutation + CPU assignment vector) so the
trade-off can actually be measured against HDLTS.
"""

from repro.genetic.ga import GAConfig, GeneticScheduler

__all__ = ["GAConfig", "GeneticScheduler"]

"""Composition of several workflows into one schedulable DAG.

Composition follows the paper's own multi-entry recipe (Section III):
the tenant graphs are placed side by side and a zero-cost pseudo entry
and exit stitch them into a single-entry/single-exit DAG, so any
scheduler in the library runs unmodified.  The :class:`Composite` keeps
the id translation, letting per-tenant metrics be read back out of the
shared schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.base import Scheduler
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["Composite", "compose", "TenantReport", "tenant_report"]


@dataclass
class Composite:
    """A merged multi-tenant graph with id bookkeeping."""

    graph: TaskGraph
    #: per tenant: original task id -> composite task id
    mappings: List[Dict[int, int]]
    tenants: List[TaskGraph]
    entry: int
    exit: int

    def tenant_tasks(self, tenant: int) -> List[int]:
        """Composite task ids belonging to one tenant."""
        return list(self.mappings[tenant].values())


def compose(tenants: Sequence[TaskGraph]) -> Composite:
    """Merge workflows sharing one platform into a single DAG."""
    if not tenants:
        raise ValueError("need at least one workflow")
    n_procs = tenants[0].n_procs
    for graph in tenants[1:]:
        if graph.n_procs != n_procs:
            raise ValueError("all workflows must target the same platform")

    merged = TaskGraph(n_procs)
    mappings: List[Dict[int, int]] = []
    for index, graph in enumerate(tenants):
        mapping: Dict[int, int] = {}
        for task in graph.tasks():
            mapping[task] = merged.add_task(
                graph.cost_row(task), name=f"w{index}:{graph.name(task)}"
            )
        for edge in graph.edges():
            merged.add_edge(mapping[edge.src], mapping[edge.dst], edge.cost)
        mappings.append(mapping)

    entry = merged.add_task(np.zeros(n_procs), name="pseudo_entry")
    exit_task = merged.add_task(np.zeros(n_procs), name="pseudo_exit")
    for index, graph in enumerate(tenants):
        for task in graph.entry_tasks():
            merged.add_edge(entry, mappings[index][task], 0.0)
        for task in graph.exit_tasks():
            merged.add_edge(mappings[index][task], exit_task, 0.0)
    return Composite(
        graph=merged,
        mappings=mappings,
        tenants=list(tenants),
        entry=entry,
        exit=exit_task,
    )


@dataclass(frozen=True)
class TenantReport:
    """One tenant's outcome inside a shared schedule."""

    tenant: int
    makespan: float  # finish of the tenant's last task in the shared run
    solo_makespan: float  # same scheduler, platform to itself
    slowdown: float  # makespan / solo_makespan


def tenant_report(
    composite: Composite,
    schedule: Schedule,
    scheduler: Scheduler,
) -> Tuple[List[TenantReport], float]:
    """Per-tenant makespans and slowdowns, plus the unfairness spread.

    ``scheduler`` is re-run on each tenant alone to obtain the solo
    baseline (same algorithm, platform empty).  Returns
    ``(reports, unfairness)`` with unfairness = max slowdown / min
    slowdown (1.0 = perfectly fair sharing).
    """
    reports: List[TenantReport] = []
    for index, tenant in enumerate(composite.tenants):
        finish = max(
            schedule.finish_of(composite.mappings[index][task])
            for task in tenant.tasks()
        )
        solo = scheduler.run(tenant).makespan
        reports.append(
            TenantReport(
                tenant=index,
                makespan=finish,
                solo_makespan=solo,
                slowdown=finish / solo if solo > 0 else float("inf"),
            )
        )
    slowdowns = [r.slowdown for r in reports]
    unfairness = max(slowdowns) / min(slowdowns) if min(slowdowns) > 0 else float("inf")
    return reports, unfairness

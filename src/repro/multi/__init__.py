"""Multi-workflow (multi-tenant) scheduling extension.

An HCE rarely runs a single workflow: the paper's intro motivates
shared platforms built from diverse devices.  This package composes
several workflows into one schedulable DAG and evaluates per-tenant
quality:

* :func:`compose` -- merge k task graphs under a zero-cost pseudo
  entry/exit, keeping the task-id mapping per tenant;
* :func:`tenant_report` -- per-workflow makespan inside the shared
  schedule, slowdown versus running alone on the same platform, and the
  unfairness spread.
"""

from repro.multi.compose import Composite, compose, tenant_report, TenantReport

__all__ = ["Composite", "compose", "tenant_report", "TenantReport"]

"""Daemon workers: claim tasks, execute, commit, publish progress.

A :class:`Worker` is one agent process in the scheduling service.  Its
loop is deliberately boring:

1. :meth:`~repro.service.queue.WorkQueue.claim` the next task (or
   sleep ``poll_s`` when the queue is idle),
2. :func:`~repro.runtime.context.adopt` the submitting job's stored
   :class:`~repro.runtime.context.RunContext` -- seed, engine,
   compiled layer, batched kernel: execution is governed by the
   submission, not by whatever the worker process happens to have
   active,
3. run the task's replications through the existing harness
   (:func:`~repro.experiments.harness.run_replications` -- the batch
   kernel when the context says so),
4. :meth:`~repro.service.queue.WorkQueue.commit` the values; a commit
   rejected because the lease was reclaimed is counted and dropped,
5. publish progress over the obs event bus, whose pluggable backend
   (:class:`StoreEventSink`) persists the events into the service
   store -- so ``repro watch`` in another process sees them.

Crash-safety falls out of the queue protocol: a worker killed with
``kill -9`` leaves a leased task whose lease expires, another worker
reclaims and re-runs it (bit-identical, thanks to the ``(seed,
x_index, rep)`` RNG streams), and the dead worker's late commit --
had it survived -- would be rejected by the ownership guard.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro import obs
from repro.obs.events import Event, _json_default
from repro.runtime.context import RunContext, adopt
from repro.service.queue import DEFAULT_LEASE_S, Lease, WorkQueue
from repro.service.store import SqliteStore

__all__ = ["StoreEventSink", "Worker", "WorkerReport", "serve"]

PathLike = Union[str, pathlib.Path]

#: how long an idle worker sleeps between claim attempts
DEFAULT_POLL_S = 0.5


class StoreEventSink:
    """Bus backend persisting events into the store's ``events`` table.

    Rows are buffered and bulk-inserted (``flush_every`` events, plus
    explicit :meth:`flush` calls between queue polls), so publishing is
    cheap relative to task execution.  Like
    :class:`~repro.obs.events.JsonlSink` the sink remembers its PID and
    ignores events delivered in forked children -- a SQLite connection
    must never be shared across a fork.
    """

    def __init__(
        self, store: SqliteStore, source: str, flush_every: int = 32
    ) -> None:
        self.store = store
        self.source = source
        self.flush_every = flush_every
        self.n_written = 0
        self._buffer: List[tuple] = []
        self._pid = os.getpid()

    def __call__(self, event: Event) -> None:
        if os.getpid() != self._pid:
            return
        self._buffer.append(
            (
                event.ts,
                self.source,
                event.name,
                json.dumps(event.payload, default=_json_default),
            )
        )
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Bulk-insert buffered rows (no-op on an empty buffer)."""
        if self._buffer and os.getpid() == self._pid:
            self.store.append_events(self._buffer)
            self.n_written += len(self._buffer)
        self._buffer.clear()


@dataclass(frozen=True)
class WorkerReport:
    """What one worker loop did before exiting."""

    worker: str
    executed: int
    replayed_discards: int
    failed: int
    interrupted: bool

    @property
    def total(self) -> int:
        return self.executed + self.failed


class Worker:
    """One daemon agent against a service store (see module docstring).

    ``drain=True`` exits once nothing is claimable *and* no live lease
    is outstanding (a crashed peer's lease is waited out, then
    reclaimed -- the CI crash test relies on this).  Without ``drain``
    the loop runs until interrupted, like any daemon.
    """

    def __init__(
        self,
        store_path: PathLike,
        worker_id: Optional[str] = None,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = DEFAULT_POLL_S,
        drain: bool = False,
        max_tasks: Optional[int] = None,
    ) -> None:
        self.store_path = store_path
        self.worker_id = worker_id
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.drain = drain
        self.max_tasks = max_tasks

    def run(self) -> WorkerReport:
        """Run the claim/execute/commit loop to drain or interrupt."""
        from repro.experiments.harness import SweepDefinition, run_replications

        worker_id = self.worker_id or f"worker-{os.getpid()}"
        store = SqliteStore.open(self.store_path)
        queue = WorkQueue(store, lease_s=self.lease_s)
        store.register_worker(worker_id, os.getpid(), socket.gethostname())
        bus = obs.get_bus()
        sink = StoreEventSink(store, source=worker_id)
        previous = bus.set_backend(sink, topics=["service."])
        definitions: Dict[int, Dict[str, SweepDefinition]] = {}
        contexts: Dict[int, RunContext] = {}
        executed = discarded = failed = 0
        interrupted = False
        lease: Optional[Lease] = None
        bus.emit("service.worker", worker=worker_id, phase="started")
        try:
            while True:
                if self.max_tasks is not None and executed >= self.max_tasks:
                    break
                lease = queue.claim(worker_id)
                if lease is None:
                    store.beat_worker(worker_id, "idle", tasks_done=executed)
                    sink.flush()
                    if self.drain and self._drained(queue):
                        break
                    time.sleep(self.poll_s)
                    continue
                store.beat_worker(worker_id, "busy", tasks_done=executed)
                bus.emit(
                    "service.claim",
                    ticket=lease.ticket,
                    task=lease.task,
                    worker=worker_id,
                    attempt=lease.attempt,
                )
                job_id = lease.job_id
                if job_id not in contexts:
                    job = store.job_by_id(job_id)
                    contexts[job_id] = RunContext.from_dict(job.context)
                    definitions[job_id] = {
                        d["key"]: SweepDefinition.from_dict(d)
                        for d in job.spec
                    }
                context = contexts[job_id]
                adopt(context)
                definition = definitions[job_id][lease.sweep]
                started = time.perf_counter()
                try:
                    with obs.span(
                        "service.task", task=lease.task, worker=worker_id
                    ):
                        values = run_replications(
                            definition, lease.x, lease.x_index,
                            lease.rep_lo, lease.rep_hi, context.seed,
                            context.validate,
                        )
                except KeyboardInterrupt:
                    queue.release(worker_id, lease)
                    lease = None
                    interrupted = True
                    break
                except Exception as exc:
                    queue.fail(
                        worker_id, lease, f"{type(exc).__name__}: {exc}"
                    )
                    failed += 1
                    bus.emit(
                        "service.fail",
                        ticket=lease.ticket,
                        task=lease.task,
                        worker=worker_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    lease = None
                    continue
                wall = time.perf_counter() - started
                committed = queue.commit(worker_id, lease, values, wall=wall)
                if committed:
                    executed += 1
                else:
                    # the lease expired mid-task and someone else owns
                    # (or already committed) it: at-most-once holds
                    discarded += 1
                bus.emit(
                    "service.commit",
                    ticket=lease.ticket,
                    task=lease.task,
                    worker=worker_id,
                    wall_s=wall,
                    committed=committed,
                )
                if committed:
                    job = store.job_by_id(job_id)
                    if job.state == "done":
                        bus.emit(
                            "service.job", ticket=lease.ticket, state="done"
                        )
                lease = None
        except KeyboardInterrupt:
            interrupted = True
            if lease is not None:
                queue.release(worker_id, lease)
        finally:
            bus.emit(
                "service.worker",
                worker=worker_id,
                phase="exited",
                executed=executed,
            )
            sink.flush()
            store.beat_worker(worker_id, "exited", tasks_done=executed)
            bus.set_backend(previous)
            store.close()
        return WorkerReport(
            worker=worker_id,
            executed=executed,
            replayed_discards=discarded,
            failed=failed,
            interrupted=interrupted,
        )

    @staticmethod
    def _drained(queue: WorkQueue) -> bool:
        counts = queue.outstanding()
        return counts["claimable"] == 0 and counts["leased"] == 0


def _run_worker(store_path: str, kwargs: Dict) -> None:
    Worker(store_path, **kwargs).run()


def serve(
    store_path: PathLike,
    workers: int = 1,
    lease_s: float = DEFAULT_LEASE_S,
    poll_s: float = DEFAULT_POLL_S,
    drain: bool = False,
    max_tasks: Optional[int] = None,
) -> List[WorkerReport]:
    """Run ``workers`` daemon agents against one service directory.

    One worker runs in-process (its report is returned); more than one
    runs each in its own OS process -- they coordinate purely through
    the store, exactly like workers started on different machines
    would.  Multi-process reports are reconstructed from the
    ``workers`` table.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    store = SqliteStore.open(store_path)  # create the schema up front
    store.close()
    kwargs = dict(
        lease_s=lease_s, poll_s=poll_s, drain=drain, max_tasks=max_tasks
    )
    if workers == 1:
        return [Worker(store_path, **kwargs).run()]
    mp = multiprocessing.get_context("spawn")
    procs = [
        mp.Process(
            target=_run_worker, args=(str(store_path), kwargs), daemon=False
        )
        for _ in range(workers)
    ]
    for proc in procs:
        proc.start()
    interrupted = False
    try:
        for proc in procs:
            proc.join()
    except KeyboardInterrupt:
        interrupted = True
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join()
    store = SqliteStore.open(store_path)
    try:
        reports = [
            WorkerReport(
                worker=str(row["worker"]),
                executed=int(row["tasks_done"]),
                replayed_discards=0,
                failed=0,
                interrupted=interrupted,
            )
            for row in store.workers()
        ]
    finally:
        store.close()
    if interrupted:
        raise KeyboardInterrupt
    return reports

"""The run store: one persistence interface, three backends.

Every run family in the repo persists the same thing -- *completed
chunks of a deterministic task decomposition* -- but until this module
each family grew its own ad-hoc format: run directories append JSON
lines to ``chunks.jsonl``, campaigns write columnar record batches into
shard stores, and the scheduling service keeps its queue in SQLite.
:class:`RunStore` names the shared contract:

``append_chunk``
    durably record the per-replication metric values of one completed
    chunk (one :func:`task_id` of the shared decomposition),

``completed_chunks`` / ``completed_ids``
    replay what already happened, in a form resume and merge can fold
    bit-identically (JSON floats round-trip via ``repr``; columnar
    payloads are raw IEEE-754 doubles),

``read_matrix``
    the merge-path fast lane: one task's values as a ``(reps,
    schedulers)`` float64 matrix without materializing dicts.

Backends:

:class:`LedgerStore`
    the ``chunks.jsonl`` append-only ledger behind
    :class:`~repro.runtime.session.ExperimentSession` -- fsynced lines,
    torn tails tolerated.

:class:`ColumnarStore`
    one CRC-framed columnar shard store
    (:mod:`repro.io.columnar`) as used by
    :mod:`repro.experiments.campaign` -- byte-deterministic, resumable.

:class:`SqliteStore`
    the scheduling service's database (schema ``repro.store/1``, WAL
    mode): ``jobs`` / ``tasks`` / ``workers`` / ``events`` tables with
    status enums.  :meth:`SqliteStore.run_store` views one job's
    completed tasks through the same :class:`RunStore` interface, so
    the service merges results with exactly the machinery a resumed
    run-dir sweep uses.

Task identity is shared across all of them: :func:`task_id` derives a
stable name purely from ``(sweep key, x index, replication range)``,
and :func:`enumerate_tasks` expands definitions through
:func:`~repro.experiments.parallel.chunk_plan` -- the same chunks
``repro run`` executes -- so any store's contents line up
replication-for-replication with a serial run.
"""

from __future__ import annotations

import abc
import json
import os
import pathlib
import sqlite3
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.io.columnar import (
    ColumnarWriter,
    Frame,
    read_frame_payload,
    record_dtype,
    records_as_matrix,
    scan_frames,
)

__all__ = [
    "STORE_SCHEMA",
    "SERVICE_DB",
    "JOB_STATES",
    "TASK_STATES",
    "WORKER_STATES",
    "ChunkKey",
    "TaskSpec",
    "task_id",
    "parse_task_id",
    "enumerate_tasks",
    "values_matrix",
    "matrix_values",
    "RunStore",
    "LedgerStore",
    "ColumnarStore",
    "SqliteStore",
    "SqliteResultStore",
    "JobRow",
    "TaskRow",
]

PathLike = Union[str, pathlib.Path]

STORE_SCHEMA = "repro.store/1"

#: filename of the service database inside a service directory
SERVICE_DB = "store.sqlite"

#: submitted job lifecycle (terminal states: done/failed/cancelled)
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: queue task lifecycle (``leased`` tasks revert to claimable on expiry)
TASK_STATES = ("pending", "leased", "done", "failed")
#: worker agent lifecycle as recorded in the ``workers`` table
WORKER_STATES = ("idle", "busy", "exited")

#: replay key of one chunk: (x_index, rep_lo, rep_hi)
ChunkKey = Tuple[int, int, int]


# ----------------------------------------------------------------------
# task identity
# ----------------------------------------------------------------------
def task_id(sweep: str, x_index: int, rep_lo: int, rep_hi: int) -> str:
    """The stable identity of one unit of work.

    Ids are derived purely from the spec (sweep key, x index,
    replication range), so re-enumerating the same workload -- on any
    machine, any number of times -- names every unit of work
    identically.  This is what lets shard stores, run ledgers and the
    service queue be resumed and merged without any coordination.
    """
    return f"{sweep}:x{x_index:03d}:r{rep_lo:08d}-{rep_hi:08d}"


def parse_task_id(tid: str) -> Tuple[str, int, int, int]:
    """Invert :func:`task_id`: ``(sweep, x_index, rep_lo, rep_hi)``."""
    try:
        sweep, x_part, rep_part = tid.rsplit(":", 2)
        x_index = int(x_part[1:])
        rep_lo, rep_hi = (int(p) for p in rep_part[1:].split("-"))
    except (ValueError, IndexError) as exc:
        raise ValueError(f"malformed task id {tid!r}") from exc
    return sweep, x_index, rep_lo, rep_hi


@dataclass(frozen=True)
class TaskSpec:
    """One independently runnable unit: a chunk of one sweep's x point."""

    index: int
    sweep: str
    x_index: int
    x: object
    rep_lo: int
    rep_hi: int

    @property
    def task_id(self) -> str:
        return task_id(self.sweep, self.x_index, self.rep_lo, self.rep_hi)

    @property
    def reps(self) -> int:
        return self.rep_hi - self.rep_lo


def enumerate_tasks(
    definitions: Sequence,
    reps: int,
    seed: int,
    validate: bool,
    chunk_size: int,
) -> List[TaskSpec]:
    """Expand definitions into the shared deterministic task list.

    The decomposition is exactly :func:`~repro.experiments.parallel
    .chunk_plan` -- the chunks ``repro run`` submits to its pool -- so
    store contents line up one-to-one with the chunks a checkpointed or
    serial run of the same definitions would execute.
    """
    from repro.experiments.parallel import chunk_plan

    out: List[TaskSpec] = []
    for definition in definitions:
        for _key, i, x, lo, hi, _seed, _validate in chunk_plan(
            definition, reps, seed, validate, chunk_size
        ):
            out.append(
                TaskSpec(
                    index=len(out), sweep=definition.key, x_index=i,
                    x=x, rep_lo=lo, rep_hi=hi,
                )
            )
    return out


# ----------------------------------------------------------------------
# value packing
# ----------------------------------------------------------------------
def values_matrix(
    values: List[Dict[str, float]], columns: Sequence[str]
) -> np.ndarray:
    """Pack per-replication metric dicts as a ``(reps, k)`` float64 matrix."""
    matrix = np.empty((len(values), len(columns)))
    for row, rep_values in enumerate(values):
        for col, name in enumerate(columns):
            matrix[row, col] = rep_values[name]
    return matrix


def matrix_values(
    matrix: np.ndarray, columns: Sequence[str]
) -> List[Dict[str, float]]:
    """Unpack a ``(reps, k)`` matrix back into per-replication dicts."""
    return [
        {name: float(matrix[row, col]) for col, name in enumerate(columns)}
        for row in range(matrix.shape[0])
    ]


def _check_matrix(tid: str, matrix: np.ndarray, expect_rows: int) -> np.ndarray:
    if len(matrix) != expect_rows:
        raise ValueError(
            f"task {tid}: expected {expect_rows} rows, found {len(matrix)}"
        )
    if not np.isfinite(matrix).all():
        raise ValueError(f"task {tid}: non-finite metric values")
    return matrix


# ----------------------------------------------------------------------
# the interface
# ----------------------------------------------------------------------
class RunStore(abc.ABC):
    """Durable record of completed chunks of one task decomposition.

    Implementations must be crash-safe on the append path (a chunk the
    caller saw acknowledged survives any subsequent kill) and exact on
    the read path (replayed values are bit-identical to what was
    recorded).
    """

    #: short backend tag (``jsonl`` / ``columnar`` / ``sqlite``)
    backend: str = "abstract"

    @abc.abstractmethod
    def append_chunk(
        self,
        sweep: str,
        x_index: int,
        x: object,
        rep_lo: int,
        rep_hi: int,
        values: List[Dict[str, float]],
        metrics: Optional[Dict] = None,
        wall: float = 0.0,
    ) -> None:
        """Durably record one completed chunk."""

    @abc.abstractmethod
    def completed_chunks(self, sweep: str) -> Dict[ChunkKey, Dict]:
        """Finished chunks of ``sweep``, keyed ``(x_index, lo, hi)``.

        Rows carry at least ``values`` (per-replication metric dicts),
        ``metrics`` and ``wall``; backends that do not persist an
        observability snapshot report ``{}`` / ``0.0``.
        """

    def completed_ids(self) -> Set[str]:
        """Task ids of every recorded chunk (any sweep)."""
        raise NotImplementedError

    def read_matrix(
        self, tid: str, columns: Sequence[str], expect_rows: int
    ) -> np.ndarray:
        """One task's values as a checked ``(reps, k)`` float64 matrix.

        The generic path replays :meth:`completed_chunks` (cached per
        sweep); columnar and SQLite backends override with direct
        payload reads.
        """
        cache = getattr(self, "_replay_cache", None)
        if cache is None:
            cache = self._replay_cache = {}
        sweep, x_index, rep_lo, rep_hi = parse_task_id(tid)
        if sweep not in cache:
            cache[sweep] = self.completed_chunks(sweep)
        row = cache[sweep].get((x_index, rep_lo, rep_hi))
        if row is None:
            raise KeyError(f"task {tid} has no recorded result")
        return _check_matrix(
            tid, values_matrix(row["values"], columns), expect_rows
        )

    def close(self) -> None:
        """Release file handles / connections (safe to call repeatedly)."""

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# JSONL ledger backend (run directories)
# ----------------------------------------------------------------------
class LedgerStore(RunStore):
    """The ``chunks.jsonl`` append-only ledger of a run directory.

    One JSON line per completed chunk, flushed and fsynced before the
    append returns; reading tolerates a torn tail (a crash mid-append)
    by stopping at the first line that is not valid JSON.  Floats
    round-trip through JSON exactly (``repr``-based serialization), so
    a replayed chunk is bit-identical to the live one.
    """

    backend = "jsonl"

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self._fh = None

    def append_chunk(
        self,
        sweep: str,
        x_index: int,
        x: object,
        rep_lo: int,
        rep_hi: int,
        values: List[Dict[str, float]],
        metrics: Optional[Dict] = None,
        wall: float = 0.0,
    ) -> None:
        """Append one row, durably (flush + fsync before returning)."""
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        row = {
            "sweep": sweep,
            "x_index": x_index,
            "x": x,
            "rep_lo": rep_lo,
            "rep_hi": rep_hi,
            "values": values,
            "metrics": metrics if metrics is not None else {},
            "wall": wall,
            "ts": time.time(),
        }
        self._fh.write(json.dumps(row) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _rows(self):
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    break

    def completed_chunks(self, sweep: str) -> Dict[ChunkKey, Dict]:
        """Finished chunks of ``sweep``; stops at the torn tail."""
        completed: Dict[ChunkKey, Dict] = {}
        for row in self._rows():
            if row.get("sweep") != sweep:
                continue
            key = (int(row["x_index"]), int(row["rep_lo"]), int(row["rep_hi"]))
            completed[key] = row
        return completed

    def completed_ids(self) -> Set[str]:
        """Task ids of every intact ledger row, across all sweeps."""
        return {
            task_id(
                str(row["sweep"]), int(row["x_index"]),
                int(row["rep_lo"]), int(row["rep_hi"]),
            )
            for row in self._rows()
        }

    def close(self) -> None:
        """Close the append handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# columnar backend (campaign shards)
# ----------------------------------------------------------------------
class ColumnarStore(RunStore):
    """One CRC-framed columnar store file as a :class:`RunStore`.

    Mode ``"a"`` wraps :meth:`~repro.io.columnar.ColumnarWriter.append`
    (torn tail truncated, fsync per batch) and needs the record
    ``groups`` -- sweep key to scheduler column list -- to pack values.
    Mode ``"r"`` scans the frame directory once and serves matrix reads
    through a lazily opened handle.  The file layout is byte-identical
    to what :func:`repro.experiments.campaign.run_shard` always wrote:
    no timestamps, no nondeterminism.
    """

    backend = "columnar"

    def __init__(
        self,
        path: PathLike,
        groups: Optional[Dict[str, List[str]]] = None,
        mode: str = "r",
    ) -> None:
        if mode not in ("r", "a"):
            raise ValueError(f"mode must be 'r' or 'a', got {mode!r}")
        self.path = pathlib.Path(path)
        self.mode = mode
        self._groups = dict(groups) if groups else {}
        self._writer = None
        self._read_fh = None
        self._frames: List[Frame] = []
        if mode == "a":
            if not groups:
                raise ValueError("append mode needs the record groups")
            self._writer, done = ColumnarWriter.append(self.path, self._groups)
            self._frames = list(done)
        elif self.path.exists():
            header, frames, _end = scan_frames(self.path)
            self._frames = list(frames)
            if not self._groups:
                self._groups = {
                    name: list(cols)
                    for name, cols in header.get("groups", {}).items()
                }
        self._index: Dict[str, Frame] = {
            str(frame.meta.get("task")): frame for frame in self._frames
        }
        # batches appended through this handle are readable only after
        # reopen (the frame directory is scanned at open); their ids
        # still count as completed for resume logic.
        self._appended_ids: Set[str] = set()
        self._dtypes: Dict[Tuple[str, ...], np.dtype] = {}

    @property
    def frames(self) -> List[Frame]:
        """The store's readable frames (completed tasks), in file order."""
        return list(self._frames)

    def append_chunk(
        self,
        sweep: str,
        x_index: int,
        x: object,
        rep_lo: int,
        rep_hi: int,
        values: List[Dict[str, float]],
        metrics: Optional[Dict] = None,
        wall: float = 0.0,
    ) -> None:
        """Write one record batch (``metrics``/``wall`` are not stored:
        the columnar format is deliberately free of nondeterminism)."""
        if self._writer is None:
            raise ValueError(f"store {self.path.name} is read-only")
        columns = self._groups.get(sweep)
        if columns is None:
            raise KeyError(f"unknown record group {sweep!r}")
        records = np.empty(len(values), dtype=record_dtype(columns))
        records_as_matrix(records)[:] = values_matrix(values, columns)
        self._writer.write_batch(
            {
                "group": sweep,
                "task": task_id(sweep, x_index, rep_lo, rep_hi),
                "x_index": x_index,
                "rep_lo": rep_lo,
                "rep_hi": rep_hi,
            },
            records,
        )
        self._appended_ids.add(task_id(sweep, x_index, rep_lo, rep_hi))

    def completed_chunks(self, sweep: str) -> Dict[ChunkKey, Dict]:
        """Replay rows (``x`` is not persisted in frame metadata and
        comes back ``None``; ``metrics``/``wall`` come back empty)."""
        completed: Dict[ChunkKey, Dict] = {}
        cols = self._groups.get(sweep)
        if cols is None:
            raise KeyError(f"unknown record group {sweep!r}")
        for frame in self._frames:
            if str(frame.meta.get("group")) != sweep:
                continue
            x_index = int(frame.meta["x_index"])
            rep_lo = int(frame.meta["rep_lo"])
            rep_hi = int(frame.meta["rep_hi"])
            tid = task_id(sweep, x_index, rep_lo, rep_hi)
            matrix = self.read_matrix(tid, cols, rep_hi - rep_lo)
            completed[(x_index, rep_lo, rep_hi)] = {
                "sweep": sweep,
                "x_index": x_index,
                "x": None,
                "rep_lo": rep_lo,
                "rep_hi": rep_hi,
                "values": matrix_values(matrix, cols),
                "metrics": {},
                "wall": 0.0,
            }
        return completed

    def completed_ids(self) -> Set[str]:
        """Ids of frames on disk plus batches appended this session."""
        return set(self._index) | self._appended_ids

    def read_matrix(
        self, tid: str, columns: Sequence[str], expect_rows: int
    ) -> np.ndarray:
        """One frame's payload as a checked ``(reps, k)`` matrix,
        read directly (no JSON round-trip) through a cached dtype."""
        frame = self._index.get(tid)
        if frame is None:
            raise KeyError(f"task {tid} has no recorded result")
        if self._read_fh is None:
            self._read_fh = open(self.path, "rb")
        key = tuple(columns)
        dtype = self._dtypes.get(key)
        if dtype is None:
            dtype = self._dtypes[key] = record_dtype(columns)
        records = read_frame_payload(self._read_fh, frame, dtype)
        return _check_matrix(tid, records_as_matrix(records), expect_rows)

    def close(self) -> None:
        """Close the writer and/or the lazily opened read handle."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._read_fh is not None:
            self._read_fh.close()
            self._read_fh = None


# ----------------------------------------------------------------------
# SQLite backend (the scheduling service)
# ----------------------------------------------------------------------
_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    ticket  TEXT NOT NULL UNIQUE,
    title   TEXT NOT NULL DEFAULT '',
    kind    TEXT NOT NULL CHECK (kind IN ('sweep', 'stream')),
    spec    TEXT NOT NULL,
    context TEXT NOT NULL,
    reps    INTEGER NOT NULL,
    state   TEXT NOT NULL DEFAULT 'queued'
            CHECK (state IN ('queued', 'running', 'done', 'failed',
                             'cancelled')),
    error   TEXT,
    created REAL NOT NULL,
    updated REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    job           INTEGER NOT NULL REFERENCES jobs(id),
    task          TEXT NOT NULL,
    sweep         TEXT NOT NULL,
    x_index       INTEGER NOT NULL,
    x             TEXT NOT NULL,
    rep_lo        INTEGER NOT NULL,
    rep_hi        INTEGER NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending'
                  CHECK (state IN ('pending', 'leased', 'done', 'failed')),
    worker        TEXT,
    lease_expires REAL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    result        TEXT,
    metrics       TEXT,
    wall          REAL NOT NULL DEFAULT 0.0,
    error         TEXT,
    UNIQUE (job, task)
);
CREATE INDEX IF NOT EXISTS idx_tasks_claim ON tasks (state, job, id);
CREATE TABLE IF NOT EXISTS workers (
    worker     TEXT PRIMARY KEY,
    pid        INTEGER NOT NULL,
    host       TEXT NOT NULL,
    state      TEXT NOT NULL CHECK (state IN ('idle', 'busy', 'exited')),
    started    REAL NOT NULL,
    last_beat  REAL NOT NULL,
    tasks_done INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS events (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    ts      REAL NOT NULL,
    source  TEXT NOT NULL,
    name    TEXT NOT NULL,
    payload TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class JobRow:
    """One submitted job, as stored in the ``jobs`` table."""

    id: int
    ticket: str
    title: str
    kind: str
    spec: List[Dict]
    context: Dict
    reps: int
    state: str
    error: Optional[str]
    created: float
    updated: float

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "JobRow":
        return cls(
            id=int(row["id"]),
            ticket=str(row["ticket"]),
            title=str(row["title"]),
            kind=str(row["kind"]),
            spec=json.loads(row["spec"]),
            context=json.loads(row["context"]),
            reps=int(row["reps"]),
            state=str(row["state"]),
            error=row["error"],
            created=float(row["created"]),
            updated=float(row["updated"]),
        )


@dataclass(frozen=True)
class TaskRow:
    """One queue task, as stored in the ``tasks`` table."""

    id: int
    job: int
    task: str
    sweep: str
    x_index: int
    x: object
    rep_lo: int
    rep_hi: int
    state: str
    worker: Optional[str]
    lease_expires: Optional[float]
    attempts: int
    wall: float
    error: Optional[str]

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "TaskRow":
        return cls(
            id=int(row["id"]),
            job=int(row["job"]),
            task=str(row["task"]),
            sweep=str(row["sweep"]),
            x_index=int(row["x_index"]),
            x=json.loads(row["x"]),
            rep_lo=int(row["rep_lo"]),
            rep_hi=int(row["rep_hi"]),
            state=str(row["state"]),
            worker=row["worker"],
            lease_expires=row["lease_expires"],
            attempts=int(row["attempts"]),
            wall=float(row["wall"]),
            error=row["error"],
        )


class SqliteStore:
    """The scheduling service's database (schema ``repro.store/1``).

    WAL journaling plus a generous busy timeout lets any number of
    worker processes share one database file; every multi-statement
    mutation runs inside ``BEGIN IMMEDIATE`` so claims and commits are
    atomic even against ``kill -9`` (SQLite rolls back the journal of a
    dead writer on the next open).  The connection is autocommit
    (``isolation_level=None``); transactional sections are explicit.
    """

    SCHEMA = STORE_SCHEMA

    def __init__(self, path: PathLike, conn: sqlite3.Connection) -> None:
        self.path = pathlib.Path(path)
        self.conn = conn

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def open(cls, path: PathLike, create: bool = True) -> "SqliteStore":
        """Open (and, by default, create) the service database.

        Each process opens its own connection; SQLite serializes
        writers through the WAL.  Opening an existing file checks the
        stored schema tag and raises a pointed error on mismatch.
        """
        path = pathlib.Path(path)
        if path.suffix not in (".sqlite", ".db"):
            # a service *directory* (existing or to-be-created), not a
            # database file: the store lives at DIR/store.sqlite
            path = path / SERVICE_DB
        if not create and not path.exists():
            raise FileNotFoundError(f"no service store at {path}")
        path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(path), timeout=30.0, isolation_level=None)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA foreign_keys=ON")
        store = cls(path, conn)
        store._init_schema()
        return store

    def _init_schema(self) -> None:
        """Create missing tables and stamp/check the schema tag.

        The DDL runs outside the explicit transaction scope --
        ``executescript`` implicitly commits any pending transaction --
        and is idempotent (``IF NOT EXISTS`` everywhere); the meta rows
        use ``INSERT OR IGNORE`` so concurrent first-openers race
        benignly.
        """
        from repro import __version__

        self.conn.executescript(_DDL)
        with self.transaction():
            row = self.conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                self.conn.executemany(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("schema", self.SCHEMA),
                        ("version", __version__),
                        ("created", repr(time.time())),
                    ],
                )
            elif row["value"] != self.SCHEMA:
                raise ValueError(
                    f"unsupported store schema {row['value']!r} in "
                    f"{self.path} (expected {self.SCHEMA!r})"
                )

    def transaction(self):
        """``BEGIN IMMEDIATE`` scope: commits on success, rolls back on
        error.  IMMEDIATE takes the write lock up front, so a section
        that read-then-writes cannot deadlock against another claimer.
        """
        return _Transaction(self.conn)

    def close(self) -> None:
        """Close this process's connection (the database file persists)."""
        self.conn.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- jobs ------------------------------------------------------------
    def add_job(
        self,
        definitions: Sequence,
        reps: int,
        context,
        title: str = "",
    ) -> JobRow:
        """Enqueue one job: insert the job row plus every task, atomically.

        ``definitions`` are portable
        :class:`~repro.experiments.harness.SweepDefinition`\\ s;
        ``context`` is the :class:`~repro.runtime.context.RunContext`
        workers will adopt.  The task list is the shared deterministic
        decomposition (:func:`enumerate_tasks`), so the merged result
        is bit-identical to a serial run of the same definitions.
        """
        if reps < 1:
            raise ValueError("reps must be >= 1")
        definitions = list(definitions)
        if not definitions:
            raise ValueError("a job needs at least one sweep definition")
        closures = sorted(d.key for d in definitions if not d.portable)
        if closures:
            raise ValueError(
                f"definitions {closures} use make_graph closures and cannot "
                "be submitted to the service; give them a GraphSpec"
            )
        tasks = enumerate_tasks(
            definitions, reps, context.seed, context.validate,
            context.chunk_size,
        )
        kind = "stream" if any(d.stream is not None for d in definitions) else "sweep"
        ticket = uuid.uuid4().hex[:12]
        now = time.time()
        with self.transaction():
            cur = self.conn.execute(
                "INSERT INTO jobs (ticket, title, kind, spec, context, reps,"
                " state, created, updated)"
                " VALUES (?, ?, ?, ?, ?, ?, 'queued', ?, ?)",
                (
                    ticket,
                    title,
                    kind,
                    json.dumps([d.to_dict() for d in definitions]),
                    json.dumps(context.to_dict()),
                    reps,
                    now,
                    now,
                ),
            )
            job_id = cur.lastrowid
            self.conn.executemany(
                "INSERT INTO tasks (job, task, sweep, x_index, x, rep_lo,"
                " rep_hi) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        job_id, t.task_id, t.sweep, t.x_index,
                        json.dumps(t.x), t.rep_lo, t.rep_hi,
                    )
                    for t in tasks
                ],
            )
        return self.job(ticket)

    def job(self, ticket: str) -> JobRow:
        """Look a job up by ticket (prefix-unique lookups not supported)."""
        row = self.conn.execute(
            "SELECT * FROM jobs WHERE ticket = ?", (ticket,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no job with ticket {ticket!r}")
        return JobRow.from_row(row)

    def job_by_id(self, job_id: int) -> JobRow:
        """Look a job up by its integer row id (workers hold these)."""
        row = self.conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no job with id {job_id}")
        return JobRow.from_row(row)

    def jobs(self) -> List[JobRow]:
        """Every job, oldest first."""
        return [
            JobRow.from_row(row)
            for row in self.conn.execute("SELECT * FROM jobs ORDER BY id")
        ]

    def set_job_state(
        self, job_id: int, state: str, error: Optional[str] = None
    ) -> None:
        """Force a job's state (administrative; the queue moves jobs
        through their normal lifecycle itself)."""
        if state not in JOB_STATES:
            raise ValueError(f"state must be one of {JOB_STATES}, got {state!r}")
        self.conn.execute(
            "UPDATE jobs SET state = ?, error = ?, updated = ? WHERE id = ?",
            (state, error, time.time(), job_id),
        )

    def cancel(self, ticket: str) -> bool:
        """Cancel a job (no-op on terminal states; returns success).

        Pending tasks stop being claimable immediately (the claim query
        only considers queued/running jobs); a task already leased runs
        to completion, its commit is accepted, but the job stays
        cancelled.
        """
        with self.transaction():
            cur = self.conn.execute(
                "UPDATE jobs SET state = 'cancelled', updated = ?"
                " WHERE ticket = ? AND state IN ('queued', 'running')",
                (time.time(), ticket),
            )
            return cur.rowcount > 0

    # -- tasks -----------------------------------------------------------
    def tasks_for(self, job_id: int) -> List[TaskRow]:
        """A job's tasks in enumeration (= submission) order."""
        return [
            TaskRow.from_row(row)
            for row in self.conn.execute(
                "SELECT * FROM tasks WHERE job = ? ORDER BY id", (job_id,)
            )
        ]

    def task_counts(self, job_id: int) -> Dict[str, int]:
        """Task state histogram of one job (zero-filled over the enum)."""
        counts = {state: 0 for state in TASK_STATES}
        for row in self.conn.execute(
            "SELECT state, COUNT(*) AS n FROM tasks WHERE job = ?"
            " GROUP BY state",
            (job_id,),
        ):
            counts[str(row["state"])] = int(row["n"])
        return counts

    # -- workers ---------------------------------------------------------
    def register_worker(self, worker: str, pid: int, host: str) -> None:
        """Insert (or revive) one worker agent's registry row."""
        now = time.time()
        self.conn.execute(
            "INSERT INTO workers (worker, pid, host, state, started,"
            " last_beat) VALUES (?, ?, ?, 'idle', ?, ?)"
            " ON CONFLICT(worker) DO UPDATE SET pid = excluded.pid,"
            " host = excluded.host, state = 'idle', last_beat = excluded.last_beat",
            (worker, pid, host, now, now),
        )

    def beat_worker(
        self,
        worker: str,
        state: str = "busy",
        tasks_done: Optional[int] = None,
    ) -> None:
        """Heartbeat: refresh a worker's state and last-beat stamp
        (``repro ps`` flags workers whose beat has gone stale)."""
        if state not in WORKER_STATES:
            raise ValueError(
                f"state must be one of {WORKER_STATES}, got {state!r}"
            )
        if tasks_done is None:
            self.conn.execute(
                "UPDATE workers SET state = ?, last_beat = ? WHERE worker = ?",
                (state, time.time(), worker),
            )
        else:
            self.conn.execute(
                "UPDATE workers SET state = ?, last_beat = ?, tasks_done = ?"
                " WHERE worker = ?",
                (state, time.time(), tasks_done, worker),
            )

    def workers(self) -> List[Dict[str, object]]:
        """Every registered worker row as a plain dict."""
        return [
            dict(row)
            for row in self.conn.execute(
                "SELECT * FROM workers ORDER BY started"
            )
        ]

    # -- events ----------------------------------------------------------
    def append_events(
        self, rows: Sequence[Tuple[float, str, str, str]]
    ) -> None:
        """Bulk-insert ``(ts, source, name, payload_json)`` event rows."""
        if not rows:
            return
        self.conn.executemany(
            "INSERT INTO events (ts, source, name, payload) VALUES"
            " (?, ?, ?, ?)",
            list(rows),
        )

    def events(self, after_id: int = 0, limit: int = 1000) -> List[Dict]:
        """Events with ``id > after_id`` (a tailing cursor), oldest first."""
        return [
            dict(row)
            for row in self.conn.execute(
                "SELECT * FROM events WHERE id > ? ORDER BY id LIMIT ?",
                (after_id, limit),
            )
        ]

    # -- results ---------------------------------------------------------
    def run_store(self, ticket: str) -> "SqliteResultStore":
        """One job's completed tasks as a :class:`RunStore` view."""
        return SqliteResultStore(self, self.job(ticket).id)


class _Transaction:
    """``BEGIN IMMEDIATE`` ... ``COMMIT``/``ROLLBACK`` context manager."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self.conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self.conn.execute("BEGIN IMMEDIATE")
        return self.conn

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")


class SqliteResultStore(RunStore):
    """One job's slice of a :class:`SqliteStore` through the run-store
    interface: replay and merge see exactly what a run-dir ledger would
    hold, values round-tripping through JSON bit-exactly."""

    backend = "sqlite"

    def __init__(self, store: SqliteStore, job_id: int) -> None:
        self.store = store
        self.job_id = job_id

    def append_chunk(
        self,
        sweep: str,
        x_index: int,
        x: object,
        rep_lo: int,
        rep_hi: int,
        values: List[Dict[str, float]],
        metrics: Optional[Dict] = None,
        wall: float = 0.0,
    ) -> None:
        """Record one chunk's result against its task row (the row is
        created on the fly when the job was not pre-enumerated)."""
        tid = task_id(sweep, x_index, rep_lo, rep_hi)
        payload = json.dumps(values)
        metrics_json = json.dumps(metrics if metrics is not None else {})
        with self.store.transaction():
            cur = self.store.conn.execute(
                "UPDATE tasks SET state = 'done', result = ?, metrics = ?,"
                " wall = ? WHERE job = ? AND task = ?",
                (payload, metrics_json, wall, self.job_id, tid),
            )
            if cur.rowcount == 0:
                self.store.conn.execute(
                    "INSERT INTO tasks (job, task, sweep, x_index, x,"
                    " rep_lo, rep_hi, state, result, metrics, wall)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, 'done', ?, ?, ?)",
                    (
                        self.job_id, tid, sweep, x_index, json.dumps(x),
                        rep_lo, rep_hi, payload, metrics_json, wall,
                    ),
                )

    def completed_chunks(self, sweep: str) -> Dict[ChunkKey, Dict]:
        """The job's committed chunks of ``sweep``, values replayed
        through JSON exactly (``repr``-based float round-trip)."""
        completed: Dict[ChunkKey, Dict] = {}
        for row in self.store.conn.execute(
            "SELECT * FROM tasks WHERE job = ? AND sweep = ? AND"
            " state = 'done' ORDER BY id",
            (self.job_id, sweep),
        ):
            key = (int(row["x_index"]), int(row["rep_lo"]), int(row["rep_hi"]))
            completed[key] = {
                "sweep": sweep,
                "x_index": key[0],
                "x": json.loads(row["x"]),
                "rep_lo": key[1],
                "rep_hi": key[2],
                "values": json.loads(row["result"]),
                "metrics": json.loads(row["metrics"] or "{}"),
                "wall": float(row["wall"]),
            }
        return completed

    def completed_ids(self) -> Set[str]:
        """Task ids of the job's committed (``done``) tasks."""
        return {
            str(row["task"])
            for row in self.store.conn.execute(
                "SELECT task FROM tasks WHERE job = ? AND state = 'done'",
                (self.job_id,),
            )
        }

    def read_matrix(
        self, tid: str, columns: Sequence[str], expect_rows: int
    ) -> np.ndarray:
        """One committed task's values as a checked ``(reps, k)`` matrix."""
        row = self.store.conn.execute(
            "SELECT result FROM tasks WHERE job = ? AND task = ? AND"
            " state = 'done'",
            (self.job_id, tid),
        ).fetchone()
        if row is None or row["result"] is None:
            raise KeyError(f"task {tid} has no recorded result")
        return _check_matrix(
            tid, values_matrix(json.loads(row["result"]), columns),
            expect_rows,
        )

    def close(self) -> None:
        """The view does not own the connection; closing is a no-op."""

"""The submission API: tickets in, bit-identical results out.

This module is what ``repro submit`` / ``ps`` / ``watch`` (and any
script) talk to: submit portable
:class:`~repro.experiments.harness.SweepDefinition`\\ s plus the
:class:`~repro.runtime.context.RunContext` that should govern
execution, get back a **ticket**; poll the ticket's status; cancel it;
and, once the job is done, materialize the merged
:class:`~repro.experiments.harness.SweepResult`\\ s.

Result folding replays committed task values **in chunk-plan order**
-- the submission order the serial harness and the resume path use --
through the same scalar :class:`~repro.metrics.stats.RunningStats`
recurrence, with values round-tripping through JSON exactly.  A result
merged from any number of workers, crashes and reclaims is therefore
bit-identical to ``repro figure`` run serially.

Ticket states are the job states of the store:
``queued -> running -> done`` with ``failed`` and ``cancelled``
terminal branches (see ``docs/service.md``).
"""

from __future__ import annotations

import pathlib
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.runtime.context import RunContext
from repro.service.store import (
    SERVICE_DB,
    JobRow,
    SqliteResultStore,
    SqliteStore,
)

__all__ = [
    "SUBMIT_SCHEMA",
    "PS_SCHEMA",
    "SERVICE_STATUS_SCHEMA",
    "is_service_dir",
    "submit",
    "cancel",
    "job_status",
    "result",
    "ps_document",
    "service_status",
    "format_ps",
    "format_service_top",
]

PathLike = Union[str, pathlib.Path]

SUBMIT_SCHEMA = "repro.submit/1"
PS_SCHEMA = "repro.ps/1"
SERVICE_STATUS_SCHEMA = "repro.service-status/1"

#: a worker whose last beat is older than this is presumed dead
_WORKER_STALE_S = 30.0


def is_service_dir(path: PathLike) -> bool:
    """Does ``path`` hold a service store?"""
    return (pathlib.Path(path) / SERVICE_DB).exists()


def _open(store: Union[SqliteStore, PathLike], create: bool = False) -> tuple:
    """Accept a live store or a directory; says whether we opened it."""
    if isinstance(store, SqliteStore):
        return store, False
    return SqliteStore.open(store, create=create), True


# ----------------------------------------------------------------------
# submit / cancel / status
# ----------------------------------------------------------------------
def submit(
    store: Union[SqliteStore, PathLike],
    definitions: Sequence,
    reps: int,
    context: RunContext,
    title: str = "",
) -> JobRow:
    """Enqueue one job; returns its row (``.ticket`` is the handle).

    The service directory (and its store) is created on first use.
    Tasks are enumerated immediately -- the shared deterministic
    decomposition -- so the queue is claimable the moment this returns.
    """
    store, owned = _open(store, create=True)
    try:
        return store.add_job(definitions, reps, context, title=title)
    finally:
        if owned:
            store.close()


def cancel(store: Union[SqliteStore, PathLike], ticket: str) -> bool:
    """Cancel a queued/running job; ``False`` if already terminal."""
    store, owned = _open(store)
    try:
        store.job(ticket)  # raise KeyError on unknown tickets
        return store.cancel(ticket)
    finally:
        if owned:
            store.close()


def _job_doc(store: SqliteStore, job: JobRow, now: float) -> Dict[str, object]:
    counts = store.task_counts(job.id)
    total = sum(counts.values())
    return {
        "ticket": job.ticket,
        "title": job.title,
        "kind": job.kind,
        "state": job.state,
        "error": job.error,
        "sweeps": [d["key"] for d in job.spec],
        "reps": job.reps,
        "tasks_total": total,
        "tasks_done": counts["done"],
        "tasks_failed": counts["failed"],
        "tasks_leased": counts["leased"],
        "tasks_pending": counts["pending"],
        "age_s": now - job.created,
        "updated_age_s": now - job.updated,
    }


def job_status(
    store: Union[SqliteStore, PathLike],
    ticket: str,
    now: Optional[float] = None,
) -> Dict[str, object]:
    """One ticket's status document (schema ``repro.submit/1``)."""
    store, owned = _open(store)
    now = time.time() if now is None else now
    try:
        doc = _job_doc(store, store.job(ticket), now)
        doc["schema"] = SUBMIT_SCHEMA
        return doc
    finally:
        if owned:
            store.close()


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def result(
    store: Union[SqliteStore, PathLike],
    ticket: str,
    strict: bool = True,
) -> Dict[str, object]:
    """Materialize a job's merged results, bit-identically.

    ``strict`` requires the job to be ``done``; ``strict=False`` folds
    whatever tasks have committed (a live preview -- points missing
    chunks simply have fewer samples).  Values replay through the
    :class:`~repro.service.store.RunStore` view in chunk-plan order,
    exactly like a resumed run-dir sweep, so the returned
    :class:`~repro.experiments.harness.SweepResult`\\ s match a serial
    run of the same definitions bit for bit.
    """
    from repro.experiments.harness import SweepDefinition, SweepResult
    from repro.experiments.parallel import chunk_plan
    from repro.metrics.stats import RunningStats

    store, owned = _open(store)
    try:
        job = store.job(ticket)
        if strict and job.state != "done":
            raise ValueError(
                f"job {ticket} is {job.state}, not done"
                + (f": {job.error}" if job.error else "")
            )
        context = RunContext.from_dict(job.context)
        view = SqliteResultStore(store, job.id)
        results: Dict[str, SweepResult] = {}
        for entry in job.spec:
            definition = SweepDefinition.from_dict(entry)
            completed = view.completed_chunks(definition.key)
            sweep = SweepResult(
                definition=definition, reps=job.reps, seed=context.seed
            )
            for x in definition.x_values:
                sweep.stats[x] = {
                    name: RunningStats() for name in definition.schedulers
                }
            for chunk in chunk_plan(
                definition, job.reps, context.seed, context.validate,
                context.chunk_size,
            ):
                row = completed.get((chunk[1], chunk[3], chunk[4]))
                if row is None:
                    if strict:
                        raise ValueError(
                            f"job {ticket}: task "
                            f"{definition.key}:x{chunk[1]:03d} "
                            f"r{chunk[3]}-{chunk[4]} has no result"
                        )
                    continue
                accumulators = sweep.stats[chunk[2]]
                for rep_values in row["values"]:
                    for name, value in rep_values.items():
                        accumulators[name].add(value)
            results[definition.key] = sweep
        return results
    finally:
        if owned:
            store.close()


# ----------------------------------------------------------------------
# listings / status documents
# ----------------------------------------------------------------------
def _worker_docs(store: SqliteStore, now: float) -> List[Dict[str, object]]:
    out = []
    for row in store.workers():
        age = now - float(row["last_beat"])
        state = str(row["state"])
        out.append(
            {
                "worker": row["worker"],
                "pid": row["pid"],
                "host": row["host"],
                "state": state,
                "tasks_done": row["tasks_done"],
                "beat_age_s": age,
                "stale": bool(state != "exited" and age > _WORKER_STALE_S),
            }
        )
    return out


def ps_document(
    store: Union[SqliteStore, PathLike], now: Optional[float] = None
) -> Dict[str, object]:
    """Everything ``repro ps`` shows (schema ``repro.ps/1``)."""
    store, owned = _open(store)
    now = time.time() if now is None else now
    try:
        return {
            "schema": PS_SCHEMA,
            "run_dir": str(store.path.parent),
            "jobs": [_job_doc(store, job, now) for job in store.jobs()],
            "workers": _worker_docs(store, now),
        }
    finally:
        if owned:
            store.close()


def service_status(
    path: PathLike, now: Optional[float] = None
) -> Dict[str, object]:
    """One status document over a service directory.

    Schema ``repro.service-status/1``, shaped like the run/campaign
    status documents so ``repro status``/``top`` can dispatch on the
    directory kind and render uniformly.
    """
    now = time.time() if now is None else now
    store = SqliteStore.open(path, create=False)
    try:
        jobs = [_job_doc(store, job, now) for job in store.jobs()]
        workers = _worker_docs(store, now)
        tasks_done = sum(j["tasks_done"] for j in jobs)
        tasks_total = sum(j["tasks_total"] for j in jobs)
        live = [j for j in jobs if j["state"] in ("queued", "running")]
        return {
            "schema": SERVICE_STATUS_SCHEMA,
            "run_dir": str(path),
            "complete": not live and bool(jobs),
            "tasks_done": tasks_done,
            "tasks_total": tasks_total,
            "jobs_total": len(jobs),
            "jobs_live": len(live),
            "jobs": jobs,
            "workers": workers,
        }
    finally:
        store.close()


def _job_table(jobs: List[Dict[str, object]]) -> List[str]:
    lines = [
        f"{'TICKET':<14}{'KIND':<8}{'STATE':<11}{'TASKS':>12}  "
        f"{'AGE':>8}  SWEEPS"
    ]
    for job in jobs:
        tasks = f"{job['tasks_done']}/{job['tasks_total']}"
        sweeps = ",".join(job["sweeps"])
        lines.append(
            f"{job['ticket']:<14}{job['kind']:<8}{job['state']:<11}"
            f"{tasks:>12}  {_age(job['age_s']):>8}  {sweeps}"
        )
    return lines


def _worker_table(workers: List[Dict[str, object]]) -> List[str]:
    lines = [
        f"{'WORKER':<22}{'PID':>8}  {'STATE':<8}{'DONE':>6}  {'BEAT':>8}"
    ]
    for w in workers:
        state = "stale?" if w["stale"] else w["state"]
        lines.append(
            f"{str(w['worker']):<22}{w['pid']:>8}  {state:<8}"
            f"{w['tasks_done']:>6}  {_age(w['beat_age_s']):>8}"
        )
    return lines


def format_ps(doc: Dict[str, object]) -> str:
    """Render a :func:`ps_document` as the ``repro ps`` listing."""
    jobs = doc["jobs"]
    lines: List[str] = []
    if jobs:
        lines.extend(_job_table(jobs))
    else:
        lines.append(f"no jobs in {doc['run_dir']} (submit with: repro submit)")
    if doc["workers"]:
        lines.append("")
        lines.extend(_worker_table(doc["workers"]))
    return "\n".join(lines)


def format_service_top(doc: Dict[str, object]) -> str:
    """Render a service status document as a ``repro top`` screen."""
    lines: List[str] = []
    done, total = doc["tasks_done"], doc["tasks_total"]
    pct = 100.0 * done / total if total else 0.0
    lines.append(
        f"service {doc['run_dir']} -- {doc['jobs_live']} live of "
        f"{doc['jobs_total']} jobs, tasks {done}/{total} ({pct:.1f}%)"
    )
    lines.append("")
    lines.extend(_job_table(doc["jobs"]))
    if doc["workers"]:
        lines.append("")
        lines.extend(_worker_table(doc["workers"]))
    return "\n".join(lines)


def _age(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"

"""The work queue: lease-based claims with at-most-once commit.

The queue is a thin protocol over the ``tasks`` table of a
:class:`~repro.service.store.SqliteStore`.  Its invariants:

**Claim.**  One ``BEGIN IMMEDIATE`` transaction picks the first
claimable task -- ``pending``, or ``leased`` with an expired lease --
of the oldest non-terminal job, marks it ``leased`` for this worker
with a fresh expiry, and bumps its attempt counter.  IMMEDIATE takes
the write lock before the read, so two workers can never claim the
same task.

**Lease expiry.**  A worker that dies (even ``kill -9``) simply stops
renewing; once ``lease_expires`` passes, the task is claimable again
and another worker re-runs it.  Leases are renewed between tasks
(:meth:`WorkQueue.extend` during long executions), so the lease span
must exceed one task's wall time -- not the whole job's.

**At-most-once commit.**  :meth:`WorkQueue.commit` updates the task
row *conditionally*: ``state = 'leased' AND worker = ?``.  When a
presumed-dead worker resurfaces after its task was reclaimed, the
guard fails (the row now names the new owner) and the stale result is
discarded -- exactly one result per task ever lands in the store.
Re-running a task is safe in the first place because execution is
deterministic: both owners compute bit-identical values from the
``(seed, x_index, rep)`` RNG streams.

**Job transitions.**  The first claim moves a job ``queued`` ->
``running``; the commit that completes the last task moves it ->
``done``.  A failed task marks the job ``failed`` (other tasks of the
job stop being claimable).  Cancelled jobs are skipped by the claim
query; an in-flight task of a cancelled job runs to completion and its
commit is accepted, but the job stays ``cancelled``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.service.store import SqliteStore

__all__ = ["DEFAULT_LEASE_S", "Lease", "WorkQueue"]

#: default lease span; must exceed the wall time of one task, and CI's
#: crash test shrinks it to make reclaim fast
DEFAULT_LEASE_S = 60.0


@dataclass(frozen=True)
class Lease:
    """One claimed task: everything a worker needs to execute it."""

    task_rowid: int
    job_id: int
    ticket: str
    task: str
    sweep: str
    x_index: int
    x: object
    rep_lo: int
    rep_hi: int
    attempt: int
    expires: float


class WorkQueue:
    """Lease protocol over one service store (see the module docstring)."""

    def __init__(
        self, store: SqliteStore, lease_s: float = DEFAULT_LEASE_S
    ) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.store = store
        self.lease_s = lease_s

    # -- claiming --------------------------------------------------------
    def claim(
        self, worker: str, now: Optional[float] = None
    ) -> Optional[Lease]:
        """Atomically claim the next task, or ``None`` when idle.

        Claim order is deterministic: oldest job first, then task
        enumeration order -- so a lone worker executes the exact serial
        schedule.
        """
        now = time.time() if now is None else now
        conn = self.store.conn
        with self.store.transaction():
            row = conn.execute(
                "SELECT t.id AS rowid, t.job, j.ticket, t.task, t.sweep,"
                " t.x_index, t.x, t.rep_lo, t.rep_hi, t.attempts"
                " FROM tasks t JOIN jobs j ON t.job = j.id"
                " WHERE j.state IN ('queued', 'running') AND"
                " (t.state = 'pending' OR"
                "  (t.state = 'leased' AND t.lease_expires < ?))"
                " ORDER BY t.job, t.id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            expires = now + self.lease_s
            conn.execute(
                "UPDATE tasks SET state = 'leased', worker = ?,"
                " lease_expires = ?, attempts = attempts + 1 WHERE id = ?",
                (worker, expires, row["rowid"]),
            )
            conn.execute(
                "UPDATE jobs SET state = 'running', updated = ?"
                " WHERE id = ? AND state = 'queued'",
                (now, row["job"]),
            )
            return Lease(
                task_rowid=int(row["rowid"]),
                job_id=int(row["job"]),
                ticket=str(row["ticket"]),
                task=str(row["task"]),
                sweep=str(row["sweep"]),
                x_index=int(row["x_index"]),
                x=json.loads(row["x"]),
                rep_lo=int(row["rep_lo"]),
                rep_hi=int(row["rep_hi"]),
                attempt=int(row["attempts"]) + 1,
                expires=expires,
            )

    def extend(
        self, worker: str, lease: Lease, now: Optional[float] = None
    ) -> bool:
        """Renew a held lease; ``False`` means it was already reclaimed."""
        now = time.time() if now is None else now
        cur = self.store.conn.execute(
            "UPDATE tasks SET lease_expires = ? WHERE id = ? AND"
            " state = 'leased' AND worker = ?",
            (now + self.lease_s, lease.task_rowid, worker),
        )
        return cur.rowcount > 0

    # -- finishing -------------------------------------------------------
    def commit(
        self,
        worker: str,
        lease: Lease,
        values: List[Dict[str, float]],
        metrics: Optional[Dict] = None,
        wall: float = 0.0,
        now: Optional[float] = None,
    ) -> bool:
        """Record a task's result, at most once.

        Returns ``False`` when the lease was lost (the task was
        reclaimed and now belongs to someone else, or the result is
        already committed): the stale result is discarded without a
        trace beyond the return value.  A ``True`` commit that finished
        the job's last task also flips the job to ``done``.
        """
        now = time.time() if now is None else now
        conn = self.store.conn
        with self.store.transaction():
            cur = conn.execute(
                "UPDATE tasks SET state = 'done', result = ?, metrics = ?,"
                " wall = ?, lease_expires = NULL WHERE id = ? AND"
                " state = 'leased' AND worker = ?",
                (
                    json.dumps(values),
                    json.dumps(metrics if metrics is not None else {}),
                    wall,
                    lease.task_rowid,
                    worker,
                ),
            )
            if cur.rowcount == 0:
                return False
            remaining = conn.execute(
                "SELECT COUNT(*) AS n FROM tasks WHERE job = ? AND"
                " state != 'done'",
                (lease.job_id,),
            ).fetchone()
            if int(remaining["n"]) == 0:
                conn.execute(
                    "UPDATE jobs SET state = 'done', updated = ?"
                    " WHERE id = ? AND state IN ('queued', 'running')",
                    (now, lease.job_id),
                )
            return True

    def release(self, worker: str, lease: Lease) -> bool:
        """Hand a claimed task back (graceful shutdown mid-claim)."""
        cur = self.store.conn.execute(
            "UPDATE tasks SET state = 'pending', worker = NULL,"
            " lease_expires = NULL WHERE id = ? AND state = 'leased'"
            " AND worker = ?",
            (lease.task_rowid, worker),
        )
        return cur.rowcount > 0

    def fail(
        self, worker: str, lease: Lease, error: str,
        now: Optional[float] = None,
    ) -> bool:
        """Mark a task (and its job) failed -- a deterministic error,
        not a crash: crashes are handled by lease expiry instead."""
        now = time.time() if now is None else now
        conn = self.store.conn
        with self.store.transaction():
            cur = conn.execute(
                "UPDATE tasks SET state = 'failed', error = ?,"
                " lease_expires = NULL WHERE id = ? AND state = 'leased'"
                " AND worker = ?",
                (error, lease.task_rowid, worker),
            )
            if cur.rowcount == 0:
                return False
            conn.execute(
                "UPDATE jobs SET state = 'failed', error = ?, updated = ?"
                " WHERE id = ? AND state IN ('queued', 'running')",
                (error, now, lease.job_id),
            )
            return True

    # -- introspection ---------------------------------------------------
    def outstanding(self, now: Optional[float] = None) -> Dict[str, int]:
        """Queue-wide counts: claimable now, leased (live), done, failed.

        Only tasks of non-terminal jobs count as ``claimable`` /
        ``leased`` -- a cancelled job's pending tasks are dead weight,
        not work.
        """
        now = time.time() if now is None else now
        conn = self.store.conn
        out = {"claimable": 0, "leased": 0, "done": 0, "failed": 0}
        for row in conn.execute(
            "SELECT t.state, t.lease_expires, j.state AS job_state,"
            " COUNT(*) AS n FROM tasks t JOIN jobs j ON t.job = j.id"
            " GROUP BY t.state, t.lease_expires, j.state"
        ):
            n = int(row["n"])
            state = str(row["state"])
            live_job = str(row["job_state"]) in ("queued", "running")
            if state == "done":
                out["done"] += n
            elif state == "failed":
                out["failed"] += n
            elif not live_job:
                continue
            elif state == "pending":
                out["claimable"] += n
            elif state == "leased":
                expires = row["lease_expires"]
                if expires is not None and float(expires) < now:
                    out["claimable"] += n
                else:
                    out["leased"] += n
        return out

"""Scheduling-as-a-service: run store, work queue, workers, API.

This package graduates the repo's ad-hoc persistence (run-dir ledgers,
campaign shard stores) into a real service: a SQLite run store
(:mod:`repro.service.store`), a lease-based work queue
(:mod:`repro.service.queue`), daemon workers
(:mod:`repro.service.worker`) and a submission API
(:mod:`repro.service.api`), surfaced on the CLI as ``repro serve`` /
``submit`` / ``ps`` / ``watch``.

Only the store layer is imported eagerly -- it sits beneath
:class:`~repro.runtime.session.ExperimentSession` and the campaign
engine, so this ``__init__`` must stay free of imports that reach back
into :mod:`repro.experiments` (queue/worker/api are imported on
demand).
"""

from repro.service.store import (
    JOB_STATES,
    SERVICE_DB,
    STORE_SCHEMA,
    TASK_STATES,
    WORKER_STATES,
    ColumnarStore,
    LedgerStore,
    RunStore,
    SqliteResultStore,
    SqliteStore,
    TaskSpec,
    enumerate_tasks,
    parse_task_id,
    task_id,
)

__all__ = [
    "JOB_STATES",
    "SERVICE_DB",
    "STORE_SCHEMA",
    "TASK_STATES",
    "WORKER_STATES",
    "ColumnarStore",
    "LedgerStore",
    "RunStore",
    "SqliteResultStore",
    "SqliteStore",
    "TaskSpec",
    "enumerate_tasks",
    "parse_task_id",
    "task_id",
]

"""repro -- reproduction of "Dynamic Mapping of Application Workflows in
Heterogeneous Computing Environments" (HDLTS, IPPS 2017).

Public API quick tour::

    from repro import HDLTS, paper_example_graph
    result = HDLTS(record_trace=True).run(paper_example_graph())
    print(result.makespan)            # 73.0

See README.md for the architecture overview and examples/ for runnable
scenarios.
"""

from repro.model import TaskGraph, Platform, Workflow, compile_workflow
from repro.schedule import (
    Schedule,
    ScheduleSimulator,
    render_gantt,
    validate_schedule,
)
from repro.core import HDLTS, PriorityRule, Scheduler, SchedulingResult, format_trace
from repro.workflows import (
    paper_example_graph,
    fft_workflow,
    montage_workflow,
    molecular_dynamics_workflow,
    gaussian_elimination_workflow,
)

__version__ = "1.0.0"

__all__ = [
    "TaskGraph",
    "Platform",
    "Workflow",
    "compile_workflow",
    "Schedule",
    "ScheduleSimulator",
    "render_gantt",
    "validate_schedule",
    "HDLTS",
    "PriorityRule",
    "Scheduler",
    "SchedulingResult",
    "format_trace",
    "paper_example_graph",
    "fft_workflow",
    "montage_workflow",
    "molecular_dynamics_workflow",
    "gaussian_elimination_workflow",
    "__version__",
]

"""Declarative stream specs: whole workloads as data.

A :class:`StreamSpec` is to the job-stream arena what
:class:`~repro.experiments.graphspec.GraphSpec` is to a single graph:
the name-and-parameters form of a workload.  It holds the job factory
(a GraphSpec), the arrival process, the duration-noise model, and the
energy powers -- everything needed to materialize a
:class:`~repro.stream.arena.StreamInstance` from one RNG stream,
bit-identically on any worker start method.

``build(x, rng)`` drives one knob with the sweep's x value (``axis``:
the arrival ``rate``, the deterministic ``interval``, or ``n_jobs``)
and draws, in a fixed order, (1) every arrival instant, then (2) each
job's graph followed by its realized duration matrix.  Realizations are
materialized eagerly -- via the memoized duration models of
:mod:`repro.dynamic.noise`, warmed in task-major order -- so every
policy executes the *same* world regardless of dispatch order, which is
what makes rate sweeps paired comparisons.

``stream_sweep_definition`` wraps a spec into an ordinary
:class:`~repro.experiments.harness.SweepDefinition`, so injection-rate
sweeps shard, merge, resume and parallelize like any other figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dynamic.noise import gaussian_noise, uniform_noise
from repro.experiments.graphspec import GraphSpec
from repro.stream.arena import StreamInstance, StreamJob, run_stream
from repro.stream.arrivals import ArrivalSpec

__all__ = [
    "DEFAULT_POLICIES",
    "StreamSpec",
    "instance_from_dict",
    "instance_to_dict",
    "run_stream_replication",
    "stream_sweep_definition",
]

#: default policy set for stream sweeps (the online scheduler vs the
#: strongest static baselines replayed per job)
DEFAULT_POLICIES = ("OnlineHDLTS", "Static/HDLTS", "Static/HEFT")

_AXES = ("rate", "interval", "n_jobs")
_NOISE_KINDS = ("gaussian", "uniform")


@dataclass(frozen=True)
class StreamSpec:
    """A job-stream workload as data: factory + arrivals + noise."""

    job: GraphSpec
    arrival: ArrivalSpec
    n_jobs: int = 20
    #: which knob the sweep's x value drives
    axis: str = "rate"
    #: x value forwarded to the job GraphSpec factory
    job_x: object = 1.0
    #: duration noise: None (exact) or {"kind": "gaussian", "sigma": s}
    #: / {"kind": "uniform", "spread": s}
    noise: Optional[Dict[str, object]] = None
    busy_power: float = 10.0
    idle_power: float = 1.0

    def __post_init__(self) -> None:
        if self.axis not in _AXES:
            raise ValueError(
                f"stream axis must be one of {_AXES}, got {self.axis!r}"
            )
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.noise is not None:
            object.__setattr__(self, "noise", dict(self.noise))
            kind = self.noise.get("kind")
            if kind not in _NOISE_KINDS:
                raise ValueError(
                    f"noise kind must be one of {_NOISE_KINDS}, got {kind!r}"
                )
        if self.axis in ("rate", "interval"):
            # fail fast on an axis/arrival-kind mismatch
            self.arrival.with_x(self.axis, 1.0)

    # ------------------------------------------------------------------
    def build(self, x, rng: np.random.Generator) -> StreamInstance:
        """Materialize the workload for x-axis value ``x``."""
        n_jobs = self.n_jobs
        arrival = self.arrival
        if self.axis == "n_jobs":
            n_jobs = int(x)
            if n_jobs < 1:
                raise ValueError(f"n_jobs axis needs x >= 1, got {x!r}")
        else:
            arrival = arrival.with_x(self.axis, x)
        times = arrival.times(n_jobs, rng)
        jobs: List[StreamJob] = []
        n_procs: Optional[int] = None
        for index in range(n_jobs):
            graph = self.job.build(self.job_x, rng)
            if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
                graph = graph.normalized()
            if n_procs is None:
                n_procs = graph.n_procs
            jobs.append(
                StreamJob(
                    index=index,
                    arrival=float(times[index]),
                    graph=graph,
                    durations=self._realize(graph, rng),
                )
            )
        return StreamInstance(
            jobs=tuple(jobs),
            n_procs=int(n_procs),
            busy_power=(float(self.busy_power),) * int(n_procs),
            idle_power=(float(self.idle_power),) * int(n_procs),
        )

    def _realize(
        self, graph, rng: np.random.Generator
    ) -> Optional[np.ndarray]:
        """Realized duration matrix, or None for exact execution.

        The memoized noise models draw lazily in call order; warming
        them here in task-major order fixes the RNG consumption per job
        no matter how the arena later interleaves dispatches.
        """
        if self.noise is None:
            return None
        kind = self.noise["kind"]
        if kind == "gaussian":
            sigma = float(self.noise.get("sigma", 0.0))
            if sigma == 0.0:
                return None
            fn = gaussian_noise(graph, sigma, rng)
        else:
            spread = float(self.noise.get("spread", 0.0))
            if spread == 0.0:
                return None
            fn = uniform_noise(graph, spread, rng)
        return np.array(
            [
                [fn(task, proc) for proc in range(graph.n_procs)]
                for task in range(graph.n_tasks)
            ]
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Manifest form (JSON-able, round-trips via :meth:`from_dict`)."""
        data: Dict[str, object] = {
            "job": self.job.to_dict(),
            "arrival": self.arrival.to_dict(),
            "n_jobs": self.n_jobs,
            "axis": self.axis,
            "job_x": self.job_x,
            "busy_power": self.busy_power,
            "idle_power": self.idle_power,
        }
        if self.noise is not None:
            data["noise"] = dict(self.noise)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            job=GraphSpec.from_dict(data["job"]),
            arrival=ArrivalSpec.from_dict(data["arrival"]),
            n_jobs=int(data.get("n_jobs", 20)),
            axis=str(data.get("axis", "rate")),
            job_x=data.get("job_x", 1.0),
            noise=data.get("noise"),
            busy_power=float(data.get("busy_power", 10.0)),
            idle_power=float(data.get("idle_power", 1.0)),
        )


# ----------------------------------------------------------------------
def run_stream_replication(
    definition, x, x_index: int, rep: int, seed: int, validate: bool = False
) -> Dict[str, float]:
    """One paired stream replication for the sweep harness.

    Same RNG-key protocol as graph replications
    (``default_rng([seed, x_index, rep])``): the workload is
    materialized once, then every policy executes the identical
    realization -- a paired comparison, bit-identical across serial,
    fork, spawn and campaign shards.  ``validate`` runs the stream
    invariant registry on every execution (the stream analogue of the
    schedule validator).
    """
    from repro.stream.metrics import STREAM_METRICS

    spec: StreamSpec = definition.stream
    rng = np.random.default_rng([seed, x_index, rep])
    instance = spec.build(x, rng)
    metric_fn = STREAM_METRICS[definition.metric]
    values: Dict[str, float] = {}
    for name in definition.schedulers:
        result = run_stream(instance, name)
        if validate:
            from repro.qa.invariants import run_stream_invariants

            run_stream_invariants(instance, result).raise_if_failed()
        values[name] = metric_fn(result)
    return values


def stream_sweep_definition(
    key: str,
    spec: StreamSpec,
    x_values,
    *,
    metric: str = "sojourn",
    policies=DEFAULT_POLICIES,
    title: str = "",
    x_label: str = "",
    description: str = "",
):
    """A :class:`SweepDefinition` sweeping this stream's ``axis``."""
    from repro.experiments.harness import SweepDefinition

    labels = {"rate": "Arrival rate", "interval": "Arrival interval",
              "n_jobs": "Jobs per stream"}
    return SweepDefinition(
        key=key,
        title=title or f"Stream {key}",
        x_label=x_label or labels[spec.axis],
        x_values=tuple(x_values),
        metric=metric,
        schedulers=tuple(policies),
        description=description,
        stream=spec,
    )


# ----------------------------------------------------------------------
# concrete-instance serialization (corpus pinning / reproducers)
# ----------------------------------------------------------------------
def instance_to_dict(instance: StreamInstance) -> Dict[str, object]:
    """A fully materialized workload as JSON (graphs + realizations)."""
    from repro.io.json_io import graph_to_dict

    return {
        "n_procs": instance.n_procs,
        "busy_power": list(instance.busy_power),
        "idle_power": list(instance.idle_power),
        "jobs": [
            {
                "index": job.index,
                "arrival": job.arrival,
                "graph": graph_to_dict(job.graph),
                "durations": (
                    None
                    if job.durations is None
                    else [list(map(float, row)) for row in job.durations]
                ),
            }
            for job in instance.jobs
        ],
    }


def instance_from_dict(data: Dict[str, object]) -> StreamInstance:
    """Inverse of :func:`instance_to_dict`."""
    from repro.io.json_io import graph_from_dict

    jobs = tuple(
        StreamJob(
            index=int(entry["index"]),
            arrival=float(entry["arrival"]),
            graph=graph_from_dict(entry["graph"]),
            durations=(
                None
                if entry.get("durations") is None
                else np.asarray(entry["durations"], dtype=float)
            ),
        )
        for entry in data["jobs"]
    )
    return StreamInstance(
        jobs=jobs,
        n_procs=int(data["n_procs"]),
        busy_power=tuple(float(p) for p in data.get("busy_power", ())),
        idle_power=tuple(float(p) for p in data.get("idle_power", ())),
    )

"""Continuous job-stream arena: online scheduling under load.

DAG instances arrive by a stochastic process and contend for shared
CPUs; online policies dispatch ready tasks across all admitted jobs.
See :mod:`repro.stream.arena` for the execution model,
:mod:`repro.stream.spec` for declarative workloads that plug into the
sweep/campaign machinery, and ``docs/streaming.md`` for the tour.
"""

from repro.stream.arena import (
    JobRecord,
    JobResult,
    JobStream,
    StreamInstance,
    StreamJob,
    StreamResult,
    normalize_policy,
    run_stream,
)
from repro.stream.arrivals import ArrivalSpec
from repro.stream.metrics import (
    STREAM_METRICS,
    fleet_energy,
    per_job_busy_energy,
    queue_depth_series,
    register_stream_metric,
)
from repro.stream.spec import (
    DEFAULT_POLICIES,
    StreamSpec,
    instance_from_dict,
    instance_to_dict,
    run_stream_replication,
    stream_sweep_definition,
)

__all__ = [
    "ArrivalSpec",
    "DEFAULT_POLICIES",
    "JobRecord",
    "JobResult",
    "JobStream",
    "STREAM_METRICS",
    "StreamInstance",
    "StreamJob",
    "StreamResult",
    "StreamSpec",
    "fleet_energy",
    "instance_from_dict",
    "instance_to_dict",
    "normalize_policy",
    "per_job_busy_energy",
    "queue_depth_series",
    "register_stream_metric",
    "run_stream",
    "run_stream_replication",
    "stream_sweep_definition",
]

"""Per-job and fleet metrics over a :class:`StreamResult`.

Mirrors the scheduler-metric registries elsewhere in the repo: every
metric is a named ``fn(StreamResult) -> float`` registered in
``STREAM_METRICS``, so :class:`~repro.experiments.harness.SweepDefinition`
can validate metric names up front and the sweep machinery can
accumulate values without knowing anything stream-specific.

Definitions (all on the realized execution):

* ``sojourn`` family -- completion minus arrival of each *finished* job
  (waiting + service); ``p50``/``p95``/``p99`` are tail quantiles via
  ``numpy.percentile`` (linear interpolation).
* ``job_makespan`` -- completion minus first dispatch (execution span,
  the per-job analogue of the paper's makespan).
* ``throughput`` -- finished jobs per unit time over the horizon.
* ``utilization`` -- mean fraction of the horizon each CPU spends busy
  (union of realized intervals, so always <= 1).
* ``queue_depth`` -- maximum number of jobs simultaneously in the
  system (arrived, not yet finished/lost).
* ``energy_per_job`` -- fleet energy (two-state busy/idle model of
  :mod:`repro.energy.model`) divided by finished jobs.
* ``lost_jobs`` -- count of jobs that did not finish.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.energy.model import EnergyModel, EnergyReport
from repro.stream.arena import StreamResult

__all__ = [
    "STREAM_HIGHER_IS_BETTER",
    "STREAM_METRICS",
    "fleet_energy",
    "per_job_busy_energy",
    "queue_depth_series",
    "register_stream_metric",
]

StreamMetric = Callable[[StreamResult], float]

STREAM_METRICS: Dict[str, StreamMetric] = {}

#: stream metrics where larger means better (everything else --
#: sojourns, queue depth, energy, losses -- is lower-is-better);
#: sweep reports use this to pick the per-point winner
STREAM_HIGHER_IS_BETTER = frozenset({"throughput", "utilization"})


def register_stream_metric(name: str):
    """Class/function decorator adding a metric to the registry."""

    def wrap(fn: StreamMetric) -> StreamMetric:
        if name in STREAM_METRICS:
            raise ValueError(f"duplicate stream metric {name!r}")
        STREAM_METRICS[name] = fn
        return fn

    return wrap


def _sojourns(result: StreamResult) -> np.ndarray:
    finished = result.finished_jobs()
    if not finished:
        raise ValueError(
            f"no finished jobs under {result.policy}; "
            "sojourn metrics are undefined"
        )
    return np.array([job.sojourn for job in finished])


@register_stream_metric("sojourn")
def _mean_sojourn(result: StreamResult) -> float:
    return float(np.mean(_sojourns(result)))


@register_stream_metric("p50_sojourn")
def _p50_sojourn(result: StreamResult) -> float:
    return float(np.percentile(_sojourns(result), 50))


@register_stream_metric("p95_sojourn")
def _p95_sojourn(result: StreamResult) -> float:
    return float(np.percentile(_sojourns(result), 95))


@register_stream_metric("p99_sojourn")
def _p99_sojourn(result: StreamResult) -> float:
    return float(np.percentile(_sojourns(result), 99))


@register_stream_metric("job_makespan")
def _mean_job_makespan(result: StreamResult) -> float:
    finished = result.finished_jobs()
    if not finished:
        raise ValueError(
            f"no finished jobs under {result.policy}; "
            "job_makespan is undefined"
        )
    return float(np.mean([job.makespan for job in finished]))


@register_stream_metric("throughput")
def _throughput(result: StreamResult) -> float:
    if result.horizon <= 0.0:
        return 0.0
    return len(result.finished_jobs()) / result.horizon


@register_stream_metric("utilization")
def _utilization(result: StreamResult) -> float:
    return result.utilization()


@register_stream_metric("queue_depth")
def _max_queue_depth(result: StreamResult) -> float:
    series = queue_depth_series(result)
    return float(max((depth for _, depth in series), default=0))


@register_stream_metric("energy_per_job")
def _energy_per_job(result: StreamResult) -> float:
    n_finished = len(result.finished_jobs())
    if n_finished == 0:
        raise ValueError(
            f"no finished jobs under {result.policy}; "
            "energy_per_job is undefined"
        )
    return fleet_energy(result).total / n_finished


@register_stream_metric("lost_jobs")
def _lost_jobs(result: StreamResult) -> float:
    return float(len(result.lost_jobs()))


# ----------------------------------------------------------------------
def queue_depth_series(result: StreamResult) -> List[Tuple[float, int]]:
    """Jobs in the system over time as ``(t, depth)`` steps.

    A job enters at its arrival and leaves at its finish; lost jobs
    leave at the horizon (they occupied the system until the end of the
    observation window).  Simultaneous departures are processed before
    arrivals at the same instant.
    """
    events: List[Tuple[float, int]] = []
    for job in result.jobs:
        events.append((job.arrival, 1))
        leave = job.finish if job.finished else result.horizon
        events.append((leave, -1))
    events.sort(key=lambda ev: (ev[0], ev[1]))
    series: List[Tuple[float, int]] = []
    depth = 0
    for t, delta in events:
        depth += delta
        if series and series[-1][0] == t:
            series[-1] = (t, depth)
        else:
            series.append((t, depth))
    return series


def _model(result: StreamResult) -> EnergyModel:
    busy = result.busy_power if result.busy_power else 10.0
    idle = result.idle_power if result.idle_power else 1.0
    return EnergyModel(result.n_procs, busy, idle)


def fleet_energy(result: StreamResult) -> EnergyReport:
    """Two-state energy of the whole stream over the horizon.

    Busy energy integrates every realized interval (lost dispatches
    burned real power too); idle energy covers the remaining horizon
    per CPU using the *union* occupancy, so overlapping duplicate
    intervals are not double-subtracted.
    """
    model = _model(result)
    busy = 0.0
    dup = 0.0
    for rec in result.records:
        duration = rec.finish - rec.start
        busy += duration * model.busy_power[rec.proc]
        if rec.duplicate:
            dup += duration * model.busy_power[rec.proc]
    occupied = result.busy_times()
    idle = float(
        np.sum((result.horizon - occupied) * model.idle_power)
    )
    return EnergyReport(
        busy_energy=busy,
        idle_energy=idle,
        duplication_energy=dup,
        makespan=result.horizon,
    )


def per_job_busy_energy(result: StreamResult) -> Dict[int, float]:
    """Busy energy attributable to each job's dispatches."""
    model = _model(result)
    energy: Dict[int, float] = {job.job: 0.0 for job in result.jobs}
    for rec in result.records:
        duration = rec.finish - rec.start
        energy[rec.job] += duration * model.busy_power[rec.proc]
    return energy

"""Arrival processes for the job-stream arena.

An :class:`ArrivalSpec` is *data* -- the name of a stochastic arrival
process plus its parameters -- mirroring how
:class:`~repro.experiments.graphspec.GraphSpec` turns graph factories
into serializable values.  Specs pickle, ship to any worker start
method, round-trip through JSON manifests, and draw bit-identical
arrival sequences from a given RNG stream anywhere.

Two processes cover the injection-rate experiments:

* ``poisson`` -- independent exponential inter-arrival gaps with mean
  ``1/rate`` (the classic open-loop injection model; the first job
  arrives after the first gap);
* ``deterministic`` -- fixed ``interval`` between arrivals, with the
  first job arriving at time zero.  ``interval=0`` is a burst (every
  job arrives at once); a huge interval is the rate -> 0 limit the
  differential tests anchor on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

__all__ = ["ArrivalSpec", "ARRIVAL_KINDS"]

ARRIVAL_KINDS = ("poisson", "deterministic")


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process as data: kind + parameters."""

    kind: str
    #: poisson: expected arrivals per unit time (> 0)
    rate: Optional[float] = None
    #: deterministic: gap between consecutive arrivals (>= 0)
    interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival kind must be one of {ARRIVAL_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "poisson":
            if self.rate is None or self.rate <= 0:
                raise ValueError(
                    f"poisson arrivals need rate > 0, got {self.rate!r}"
                )
        else:
            if self.interval is None or self.interval < 0:
                raise ValueError(
                    "deterministic arrivals need interval >= 0, "
                    f"got {self.interval!r}"
                )

    def with_x(self, axis: str, x) -> "ArrivalSpec":
        """The spec with the swept ``axis`` knob driven by ``x``."""
        if axis == "rate":
            if self.kind != "poisson":
                raise ValueError(
                    "axis 'rate' requires poisson arrivals, "
                    f"got kind={self.kind!r}"
                )
            return replace(self, rate=float(x))
        if axis == "interval":
            if self.kind != "deterministic":
                raise ValueError(
                    "axis 'interval' requires deterministic arrivals, "
                    f"got kind={self.kind!r}"
                )
            return replace(self, interval=float(x))
        raise ValueError(f"unknown arrival axis {axis!r}")

    def times(self, n_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the first ``n_jobs`` arrival instants, non-decreasing."""
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.kind == "poisson":
            gaps = rng.exponential(1.0 / self.rate, size=n_jobs)
            return np.cumsum(gaps)
        return np.arange(n_jobs, dtype=float) * self.interval

    def to_dict(self) -> Dict[str, object]:
        """Manifest form; unset parameters are omitted."""
        data: Dict[str, object] = {"kind": self.kind}
        if self.rate is not None:
            data["rate"] = self.rate
        if self.interval is not None:
            data["interval"] = self.interval
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArrivalSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            rate=data.get("rate"),
            interval=data.get("interval"),
        )

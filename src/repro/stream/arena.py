"""The job-stream arena: interleaved DAG instances on shared CPUs.

A :class:`StreamInstance` is a fully materialized workload -- jobs with
arrival times, normalized task graphs, and (optionally) realized
duration matrices -- and :class:`JobStream` executes it under an online
policy.  Two policy families exist:

* ``"OnlineHDLTS"`` -- the penalty-value loop of
  :class:`~repro.dynamic.online.OnlineHDLTS` generalized to many jobs:
  one merged ready set across all admitted jobs, shared CPU
  availability, per-job entry duplication, and the same fail-stop
  semantics.  With a single job arriving at time zero it reduces to the
  offline online scheduler *bit-identically* (the differential tests
  pin this).
* ``"Static/<Name>"`` -- each job's schedule is computed in isolation at
  admission time by a registry scheduler (placement and per-CPU order
  frozen), then the queues of all admitted jobs are replayed on the
  shared platform with the same global-time commit loop as
  :meth:`~repro.schedule.simulator.ScheduleSimulator.run_queues`.  A
  single job at time zero replays exactly like
  :func:`~repro.dynamic.online.replay_static`.

Admission is FIFO with a hold-back rule: whenever the best dispatch the
arena could make would start at or after the next pending arrival, that
job is admitted first and the decision is re-taken with its tasks in
the ready set.  A single-job stream therefore never observes the rule,
preserving the differential anchor, while under load later jobs join
the contest for every slot they could plausibly win.

Failures follow :mod:`repro.dynamic.failures`: a dispatch that would
run past a CPU's fail-stop instant is truncated and recorded as lost,
the CPU goes dead, and the task is re-dispatched elsewhere.  If the
whole fleet dies, remaining jobs are marked lost rather than raising --
the conservation invariant (every arrived job finishes or is explicitly
lost) holds either way.  Static policies reject failures, exactly like
``replay_static``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.itq import IndependentTaskQueue
from repro.dynamic.failures import FailStop, failure_times
from repro.dynamic.noise import DurationFn
from repro.model.task_graph import TaskGraph
from repro.schedule.simulator import DeadlockError

__all__ = [
    "JobRecord",
    "JobResult",
    "JobStream",
    "StreamInstance",
    "StreamJob",
    "StreamResult",
    "normalize_policy",
    "run_stream",
]

_EPS = 1e-9

ONLINE_POLICY = "OnlineHDLTS"
STATIC_PREFIX = "Static/"


def normalize_policy(name: str) -> str:
    """Canonical policy name; raises ``KeyError`` on junk."""
    if name in (ONLINE_POLICY, "online", "Online"):
        return ONLINE_POLICY
    if name.startswith(STATIC_PREFIX) and len(name) > len(STATIC_PREFIX):
        from repro.baselines.registry import SCHEDULER_FACTORIES

        inner = name[len(STATIC_PREFIX):]
        if inner not in SCHEDULER_FACTORIES:
            raise KeyError(
                f"unknown static scheduler {inner!r} in policy {name!r}"
            )
        return STATIC_PREFIX + inner
    raise KeyError(
        f"unknown stream policy {name!r}; use 'OnlineHDLTS' or 'Static/<Name>'"
    )


@dataclass(frozen=True)
class StreamJob:
    """One DAG instance of the workload, ready to execute.

    ``graph`` is already normalized (single entry/exit).  ``durations``
    is the realized execution-time matrix ``(n_tasks, n_procs)`` or
    ``None`` for exact execution (realized == estimated ``W``); it is
    materialized up front so every policy replays the *same* world
    regardless of dispatch order.
    """

    index: int
    arrival: float
    graph: TaskGraph
    durations: Optional[np.ndarray] = None

    @property
    def exact(self) -> bool:
        return self.durations is None

    def duration_fn(self) -> DurationFn:
        """Realized execution time of ``(task, proc)``."""
        if self.durations is None:
            return self.graph.cost
        matrix = self.durations

        def duration(task: int, proc: int) -> float:
            return float(matrix[task, proc])

        return duration


@dataclass(frozen=True)
class StreamInstance:
    """A materialized workload: jobs sorted by arrival, shared platform."""

    jobs: Tuple[StreamJob, ...]
    n_procs: int
    busy_power: Tuple[float, ...] = ()
    idle_power: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a stream instance needs at least one job")
        for job in self.jobs:
            if job.graph.n_procs != self.n_procs:
                raise ValueError(
                    f"job {job.index} has {job.graph.n_procs} CPUs, "
                    f"platform has {self.n_procs}"
                )
        arrivals = [job.arrival for job in self.jobs]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("jobs must be sorted by arrival time")

    @property
    def exact(self) -> bool:
        return all(job.exact for job in self.jobs)


@dataclass(frozen=True)
class JobRecord:
    """One dispatch in the arena: :class:`OnlineRecord` plus a job id."""

    job: int
    task: int
    proc: int
    start: float
    finish: float
    duplicate: bool = False
    lost: bool = False


@dataclass
class JobResult:
    """Per-job outcome: when it arrived, started, and finished."""

    job: int
    arrival: float
    n_tasks: int
    finished: bool
    lost: bool
    finish: float = float("nan")
    first_start: float = float("nan")
    finish_times: Dict[int, float] = field(default_factory=dict)
    proc_of: Dict[int, int] = field(default_factory=dict)

    @property
    def sojourn(self) -> float:
        """Turnaround: completion minus arrival (waiting + service)."""
        return self.finish - self.arrival

    @property
    def makespan(self) -> float:
        """Execution span: completion minus first dispatch."""
        return self.finish - self.first_start

    @property
    def wait(self) -> float:
        """Admission-to-first-dispatch delay."""
        return self.first_start - self.arrival


@dataclass
class StreamResult:
    """Realized execution of a whole stream under one policy."""

    policy: str
    n_procs: int
    jobs: List[JobResult]
    records: List[JobRecord]
    horizon: float
    dead_procs: Tuple[int, ...] = ()
    n_lost_dispatches: int = 0
    exact: bool = True
    busy_power: Tuple[float, ...] = ()
    idle_power: Tuple[float, ...] = ()

    def finished_jobs(self) -> List[JobResult]:
        """Jobs that ran to completion, in arrival order."""
        return [j for j in self.jobs if j.finished]

    def lost_jobs(self) -> List[JobResult]:
        """Jobs explicitly marked lost (fleet died), in arrival order."""
        return [j for j in self.jobs if j.lost]

    def busy_times(self) -> np.ndarray:
        """Occupied time per CPU: the union of its realized intervals.

        Overlapping intervals (legal for noisy entry duplicates, whose
        admission window is estimate-driven) are merged, so busy time
        never exceeds the horizon and utilization stays <= 1.
        """
        busy = np.zeros(self.n_procs)
        per_proc: List[List[Tuple[float, float]]] = [
            [] for _ in range(self.n_procs)
        ]
        for rec in self.records:
            if rec.finish > rec.start:
                per_proc[rec.proc].append((rec.start, rec.finish))
        for proc, intervals in enumerate(per_proc):
            intervals.sort()
            total = 0.0
            lo = hi = None
            for s, e in intervals:
                if hi is None or s > hi:
                    if hi is not None:
                        total += hi - lo
                    lo, hi = s, e
                elif e > hi:
                    hi = e
            if hi is not None:
                total += hi - lo
            busy[proc] = total
        return busy

    def utilization(self) -> float:
        """Mean fraction of the horizon each CPU spent busy."""
        if self.horizon <= 0.0:
            return 0.0
        return float(np.mean(self.busy_times() / self.horizon))


# ----------------------------------------------------------------------
def _window_free(
    slots: Sequence[Tuple[float, float]], lo: float, hi: float
) -> bool:
    """Is ``[lo, hi)`` idle given the realized ``slots`` on a CPU?

    Mirrors ``ProcessorTimeline.fits`` semantics exactly (point slots
    block only strictly inside the window; a zero-duration window is
    blocked only strictly inside a real slot) so that at ``lo == 0`` the
    decision matches ``OnlineHDLTS``'s ``dup_fits`` bit for bit.
    """
    if hi - lo <= _EPS:
        return not any(s < lo < e - _EPS for s, e in slots)
    for s, e in slots:
        if e - s <= _EPS:
            if lo < s < hi - _EPS:
                return False
        elif s > lo:
            if s < hi - _EPS:
                return False
        elif e > lo + _EPS:
            return False
    return True


class _AdmittedJob:
    """Mutable per-job execution state inside the arena."""

    __slots__ = (
        "job",
        "graph",
        "w",
        "entry",
        "arrival",
        "duration_fn",
        "itq",
        "copies",
        "finish_times",
        "proc_of",
        "queues",
        "heads",
    )

    def __init__(self, job: StreamJob) -> None:
        self.job = job
        self.graph = job.graph
        self.w = job.graph.cost_matrix()
        self.entry = job.graph.entry_task
        self.arrival = job.arrival
        self.duration_fn = job.duration_fn()
        self.itq: Optional[IndependentTaskQueue] = None
        self.copies: Dict[int, List[Tuple[int, float]]] = {}
        self.finish_times: Dict[int, float] = {}
        self.proc_of: Dict[int, int] = {}
        # static policy: per-CPU (task, is_duplicate) queues + cursors
        self.queues: Optional[List[List[Tuple[int, bool]]]] = None
        self.heads: Optional[List[int]] = None

    def arrival_of(self, parent: int, child: int, proc: int) -> float:
        """Earliest availability of ``parent``'s output on ``proc``."""
        copies = self.copies.get(parent)
        if not copies:
            return float("inf")
        comm = self.graph.comm_cost(parent, child)
        return min(
            fin + (0.0 if cproc == proc else comm) for cproc, fin in copies
        )


class JobStream:
    """Event-driven arena executing a :class:`StreamInstance`."""

    def __init__(
        self,
        instance: StreamInstance,
        failures: Optional[Iterable[FailStop]] = None,
    ) -> None:
        self.instance = instance
        self.failures = tuple(failures) if failures else ()

    # ------------------------------------------------------------------
    def run(self, policy: str) -> StreamResult:
        """Execute the stream under ``policy``; returns the realization."""
        policy = normalize_policy(policy)
        instance = self.instance
        with obs.span(
            "stream.run",
            policy=policy,
            jobs=len(instance.jobs),
            procs=instance.n_procs,
        ):
            if policy == ONLINE_POLICY:
                return self._run_online(policy)
            if self.failures:
                raise ValueError(
                    "static stream policies cannot survive CPU failures; "
                    "use the OnlineHDLTS policy"
                )
            return self._run_static(policy)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _setup(self):
        instance = self.instance
        state: Dict[str, object] = {
            "avail": np.zeros(instance.n_procs),
            "slots": [[] for _ in range(instance.n_procs)],
            "records": [],
            "first_start": {},
            "n_lost": 0,
            "admitted": [],
            "next_ix": 0,
            "bus": obs.get_bus(),
        }
        return state

    def _admit(self, state) -> _AdmittedJob:
        job = self.instance.jobs[state["next_ix"]]
        state["next_ix"] += 1
        admitted = _AdmittedJob(job)
        state["admitted"].append(admitted)
        obs.count("stream/jobs")
        bus = state["bus"]
        if bus.active:
            bus.emit(
                "stream.arrival",
                job=job.index,
                t=job.arrival,
                tasks=job.graph.n_tasks,
            )
        return admitted

    def _record(self, state, rec: JobRecord) -> None:
        state["records"].append(rec)
        state["slots"][rec.proc].append((rec.start, rec.finish))
        first = state["first_start"]
        if rec.job not in first or rec.start < first[rec.job]:
            first[rec.job] = rec.start
        bus = state["bus"]
        if bus.active:
            bus.emit(
                "stream.dispatch",
                job=rec.job,
                task=rec.task,
                proc=rec.proc,
                start=rec.start,
                finish=rec.finish,
                duplicate=rec.duplicate,
                lost=rec.lost,
            )
        if rec.lost:
            obs.count("stream/lost")
            state["n_lost"] += 1
        else:
            obs.count("stream/dispatches")

    def _finish_job(self, state, st: _AdmittedJob) -> None:
        finish = max(st.finish_times.values(), default=st.arrival)
        obs.count("stream/job_finishes")
        bus = state["bus"]
        if bus.active:
            bus.emit(
                "stream.job_finish",
                job=st.job.index,
                arrival=st.arrival,
                finish=finish,
                sojourn=finish - st.arrival,
            )

    def _assemble(self, state, dead: set) -> StreamResult:
        instance = self.instance
        records: List[JobRecord] = state["records"]
        first_start: Dict[int, float] = state["first_start"]
        by_index = {st.job.index: st for st in state["admitted"]}
        horizon = 0.0
        for job in instance.jobs:
            horizon = max(horizon, job.arrival)
        for rec in records:
            horizon = max(horizon, rec.finish)
        jobs: List[JobResult] = []
        for job in instance.jobs:
            st = by_index.get(job.index)
            n_tasks = job.graph.n_tasks
            if st is not None and len(st.finish_times) == n_tasks:
                jobs.append(
                    JobResult(
                        job=job.index,
                        arrival=job.arrival,
                        n_tasks=n_tasks,
                        finished=True,
                        lost=False,
                        finish=max(st.finish_times.values()),
                        first_start=first_start.get(
                            job.index, float("nan")
                        ),
                        finish_times=st.finish_times,
                        proc_of=st.proc_of,
                    )
                )
            else:
                jobs.append(
                    JobResult(
                        job=job.index,
                        arrival=job.arrival,
                        n_tasks=n_tasks,
                        finished=False,
                        lost=True,
                        first_start=first_start.get(
                            job.index, float("nan")
                        ),
                        finish_times=(
                            dict(st.finish_times) if st is not None else {}
                        ),
                        proc_of=(
                            dict(st.proc_of) if st is not None else {}
                        ),
                    )
                )
        return StreamResult(
            policy=getattr(self, "_policy", ONLINE_POLICY),
            n_procs=instance.n_procs,
            jobs=jobs,
            records=records,
            horizon=horizon,
            dead_procs=tuple(sorted(dead)),
            n_lost_dispatches=state["n_lost"],
            exact=instance.exact,
            busy_power=instance.busy_power,
            idle_power=instance.idle_power,
        )

    # ------------------------------------------------------------------
    # online policy: merged-ready-set penalty-value loop
    # ------------------------------------------------------------------
    def _run_online(self, policy: str) -> StreamResult:
        self._policy = policy
        instance = self.instance
        n_procs = instance.n_procs
        n_jobs = len(instance.jobs)
        fail_at = failure_times(self.failures or None, n_procs)
        state = self._setup()
        avail: np.ndarray = state["avail"]
        slots: List[List[Tuple[float, float]]] = state["slots"]
        admitted: List[_AdmittedJob] = state["admitted"]
        dead: set = set()

        def ready_row(st: _AdmittedJob, task: int, floor: float) -> np.ndarray:
            row = np.full(n_procs, floor)
            entry = st.entry
            for parent in st.graph.predecessors(task):
                for proc in range(n_procs):
                    t = st.arrival_of(parent, task, proc)
                    if (
                        parent == entry
                        and not any(
                            c == proc for c, _ in st.copies.get(entry, ())
                        )
                        and _window_free(
                            slots[proc],
                            st.arrival,
                            st.arrival + st.w[entry, proc],
                        )
                    ):
                        t = min(t, st.arrival + st.w[entry, proc])
                    if t > row[proc]:
                        row[proc] = t
            return row

        def try_dispatch(
            st: _AdmittedJob, task: int, proc: int, ready: float
        ) -> Optional[float]:
            entry = st.entry
            if (
                task != entry
                and entry in st.graph.predecessors(task)
                and not any(c == proc for c, _ in st.copies.get(entry, ()))
            ):
                via_network = st.arrival_of(entry, task, proc)
                dup_end = st.arrival + st.w[entry, proc]
                if dup_end < via_network and _window_free(
                    slots[proc], st.arrival, dup_end
                ):
                    dup_start = st.arrival
                    dup_finish = dup_start + st.duration_fn(entry, proc)
                    tau = fail_at.get(proc, np.inf)
                    if dup_finish > tau:
                        dead.add(proc)
                        avail[proc] = max(avail[proc], tau)
                        self._record(
                            state,
                            JobRecord(
                                st.job.index, entry, proc,
                                dup_start, tau, True, True,
                            ),
                        )
                        return None
                    avail[proc] = max(avail[proc], dup_finish)
                    st.copies[entry].append((proc, dup_finish))
                    self._record(
                        state,
                        JobRecord(
                            st.job.index, entry, proc,
                            dup_start, dup_finish, True,
                        ),
                    )
                    ready = st.arrival
                    for parent in st.graph.predecessors(task):
                        t = st.arrival_of(parent, task, proc)
                        if t > ready:
                            ready = t
            start = max(avail[proc], ready)
            duration = st.duration_fn(task, proc)
            finish = start + duration
            tau = fail_at.get(proc, np.inf)
            if finish > tau:
                dead.add(proc)
                avail[proc] = tau
                self._record(
                    state,
                    JobRecord(
                        st.job.index, task, proc,
                        start, max(start, tau), False, True,
                    ),
                )
                return None
            avail[proc] = finish
            st.copies.setdefault(task, []).append((proc, finish))
            st.finish_times[task] = finish
            st.proc_of[task] = proc
            self._record(
                state, JobRecord(st.job.index, task, proc, start, finish)
            )
            return finish

        while state["next_ix"] < n_jobs or any(st.itq for st in admitted):
            if not any(st.itq for st in admitted):
                st = self._admit(state)
                st.itq = IndependentTaskQueue(st.graph)
                continue
            alive = [p for p in range(n_procs) if p not in dead]
            if not alive:
                break
            ready: List[Tuple[_AdmittedJob, int]] = [
                (st, t)
                for st in admitted
                if st.itq
                for t in st.itq.ready_tasks()
            ]
            rows = np.array(
                [ready_row(st, t, st.arrival) for st, t in ready]
            )
            est = np.maximum(rows, avail[None, :])
            eft = est + np.array([st.w[t] for st, t in ready])
            eft[:, sorted(dead)] = np.inf
            if len(alive) > 1:
                priorities = np.asarray(eft[:, alive]).std(axis=1, ddof=1)
            else:
                priorities = np.zeros(len(ready))
            index = int(np.argmax(priorities))
            st, task = ready[index]

            floor = st.arrival
            excluded: set = set(dead)
            held = False
            fleet_dead = False
            while True:
                candidates = [
                    p for p in range(n_procs) if p not in excluded
                ]
                if not candidates:
                    fleet_dead = True
                    break
                row = ready_row(st, task, floor)
                scores = {
                    p: max(row[p], avail[p]) + st.w[task, p]
                    for p in candidates
                }
                proc = min(scores, key=lambda p: (scores[p], p))
                # hold-back admission: the next pending job arrives no
                # later than this dispatch would start -> let it compete
                if (
                    state["next_ix"] < n_jobs
                    and max(row[proc], avail[proc])
                    >= self.instance.jobs[state["next_ix"]].arrival
                ):
                    new = self._admit(state)
                    new.itq = IndependentTaskQueue(new.graph)
                    held = True
                    break
                finish = try_dispatch(st, task, proc, row[proc])
                if finish is not None:
                    break
                floor = max(floor, avail[proc])
                excluded = set(dead)
            if fleet_dead:
                break
            if held:
                continue
            st.itq.complete(task)
            if not st.itq:
                self._finish_job(state, st)
        return self._assemble(state, dead)

    # ------------------------------------------------------------------
    # static policies: per-job frozen schedules, shared global-time replay
    # ------------------------------------------------------------------
    def _run_static(self, policy: str) -> StreamResult:
        from repro.baselines.registry import make_scheduler

        self._policy = policy
        name = policy[len(STATIC_PREFIX):]
        instance = self.instance
        n_procs = instance.n_procs
        n_jobs = len(instance.jobs)
        state = self._setup()
        avail: np.ndarray = state["avail"]
        admitted: List[_AdmittedJob] = state["admitted"]

        def admit_static() -> None:
            st = self._admit(state)
            schedule = make_scheduler(name).run(st.graph).schedule
            st.queues = [
                [
                    (s.task, s.duplicate)
                    for s in sorted(
                        timeline.slots(), key=lambda s: (s.start, s.end)
                    )
                ]
                for timeline in schedule.timelines
            ]
            st.heads = [0] * n_procs

        def remaining(st: _AdmittedJob) -> int:
            return sum(
                len(q) - h for q, h in zip(st.queues, st.heads)
            )

        while state["next_ix"] < n_jobs or any(
            remaining(st) for st in admitted
        ):
            if not any(remaining(st) for st in admitted):
                admit_static()
                continue
            best = None
            best_start = float("inf")
            for st in admitted:
                for proc in range(n_procs):
                    if st.heads[proc] >= len(st.queues[proc]):
                        continue
                    task, _ = st.queues[proc][st.heads[proc]]
                    ready = st.arrival
                    for parent in st.graph.predecessors(task):
                        t = st.arrival_of(parent, task, proc)
                        if t == float("inf"):
                            ready = float("inf")
                            break
                        if t > ready:
                            ready = t
                    start = max(avail[proc], ready)
                    if start < best_start:
                        best_start = start
                        best = (st, proc)
            if best is None:
                stuck = [
                    st.queues[p][st.heads[p]][0]
                    for st in admitted
                    for p in range(n_procs)
                    if st.heads[p] < len(st.queues[p])
                ]
                raise DeadlockError(
                    f"stream replay deadlock; blocked head tasks: {stuck}"
                )
            if (
                state["next_ix"] < n_jobs
                and best_start >= instance.jobs[state["next_ix"]].arrival
            ):
                admit_static()
                continue
            st, proc = best
            task, is_dup = st.queues[proc][st.heads[proc]]
            duration = st.duration_fn(task, proc)
            finish = best_start + duration
            avail[proc] = finish
            st.copies.setdefault(task, []).append((proc, finish))
            if not is_dup:
                if task in st.finish_times:
                    raise ValueError(
                        f"job {st.job.index} task {task} has two "
                        "primary copies"
                    )
                st.finish_times[task] = finish
                st.proc_of[task] = proc
            self._record(
                state,
                JobRecord(
                    st.job.index, task, proc, best_start, finish, is_dup
                ),
            )
            st.heads[proc] += 1
            if not remaining(st):
                missing = [
                    t for t in st.graph.tasks() if t not in st.finish_times
                ]
                if missing:
                    raise ValueError(
                        f"job {st.job.index} tasks never executed: "
                        f"{missing[:10]}"
                    )
                self._finish_job(state, st)
        return self._assemble(state, set())


def run_stream(
    instance: StreamInstance,
    policy: str,
    failures: Optional[Iterable[FailStop]] = None,
) -> StreamResult:
    """Execute ``instance`` under ``policy``; convenience wrapper."""
    return JobStream(instance, failures).run(policy)

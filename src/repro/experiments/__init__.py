"""Experiment harness: the paper's Section V, figure by figure.

* :mod:`repro.experiments.harness` -- generic sweep runner: one x-axis,
  N replications per point, the paper's scheduler set, paired graphs;
* :mod:`repro.experiments.figures` -- one :class:`SweepDefinition` per
  figure (Figs. 2-4, 6-8, 10-11, 13-14) with the paper's parameters;
* :mod:`repro.experiments.table1` -- the Table I trace and the in-text
  makespan comparison on the Fig. 1 graph;
* :mod:`repro.experiments.report` -- text rendering of sweep results.
"""

from repro.experiments.graphspec import GraphSpec, register_graph_factory
from repro.experiments.harness import (
    SweepDefinition,
    SweepResult,
    run_sweep,
    run_single_point,
    run_replication,
)
from repro.experiments.parallel import (
    chunk_plan,
    run_sweep_parallel,
    sweep_pool,
)
from repro.experiments.campaign import (
    Campaign,
    CampaignTask,
    campaign_status,
    merge as merge_campaign,
    run_shard,
)
from repro.experiments.figures import FIGURES, get_figure, list_figures
from repro.experiments.table1 import table1_trace, fig1_makespans
from repro.experiments.report import format_sweep, format_makespans, winners
from repro.experiments.chart import ascii_chart
from repro.experiments.export import sweep_to_csv, grid_to_csv
from repro.experiments.grid import (
    GridResult,
    run_grid,
    format_marginals,
    grid_sweep_definition,
    marginals_from_sweep,
    sample_configs,
)
from repro.experiments.claims import PAPER_CLAIMS, evaluate_claim, evaluate_all
from repro.experiments.significance import ComparisonResult, compare_schedulers

__all__ = [
    "GraphSpec",
    "register_graph_factory",
    "SweepDefinition",
    "SweepResult",
    "run_sweep",
    "run_single_point",
    "run_replication",
    "run_sweep_parallel",
    "sweep_pool",
    "chunk_plan",
    "Campaign",
    "CampaignTask",
    "campaign_status",
    "merge_campaign",
    "run_shard",
    "FIGURES",
    "get_figure",
    "list_figures",
    "table1_trace",
    "fig1_makespans",
    "format_sweep",
    "format_makespans",
    "winners",
    "ascii_chart",
    "sweep_to_csv",
    "grid_to_csv",
    "GridResult",
    "run_grid",
    "format_marginals",
    "grid_sweep_definition",
    "marginals_from_sweep",
    "sample_configs",
    "PAPER_CLAIMS",
    "evaluate_claim",
    "evaluate_all",
    "ComparisonResult",
    "compare_schedulers",
]

"""The paper's comparative claims as executable checks.

EXPERIMENTS.md records which of the paper's claims reproduce; this
module encodes each verdict as a :class:`Claim` whose ``check`` runs the
relevant sweep and returns a boolean, so the reproduction status is
continuously testable rather than a one-off report.  Claims marked
``expected=False`` are the ones our implementation measurably does NOT
reproduce -- the test suite asserts the *measured* status, keeping the
document honest in both directions.

All checks use fixed seeds; ``reps`` trades runtime for margin (the
shipped defaults are chosen so every check is stable at seed 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.figures import get_figure
from repro.experiments.harness import SweepResult, run_sweep

__all__ = ["Claim", "PAPER_CLAIMS", "evaluate_claim", "evaluate_all"]


@dataclass(frozen=True)
class Claim:
    """One comparative claim from the paper's evaluation."""

    key: str
    figure: str
    statement: str
    #: does OUR reproduction support the claim? (the measured verdict)
    expected: bool
    check: Callable[[SweepResult], bool]
    reps: int = 20


def _mean(result: SweepResult, x, name: str) -> float:
    return result.stats[x][name].mean


def _fig2_crossover(result: SweepResult) -> bool:
    """HDLTS behind HEFT at CCR=1 but ahead at CCR >= 4."""
    behind_low = _mean(result, 1.0, "HDLTS") > _mean(result, 1.0, "HEFT")
    ahead_high = _mean(result, 4.0, "HDLTS") < _mean(result, 4.0, "HEFT") and _mean(
        result, 5.0, "HDLTS"
    ) < _mean(result, 5.0, "HEFT")
    return behind_low and ahead_high


def _fig3_hdlts_wins_large(result: SweepResult) -> bool:
    """HDLTS lowest SLR at the largest task size."""
    big = result.definition.x_values[-1]
    stats = result.stats[big]
    return min(stats, key=lambda n: stats[n].mean) == "HDLTS"


def _fig4_shape(result: SweepResult) -> bool:
    """HDLTS most efficient at 2 CPUs; HEFT or SDBATS best at 8 and 10."""
    s2 = result.stats[2]
    first = max(s2, key=lambda n: s2[n].mean) == "HDLTS"
    later = all(
        max(result.stats[p], key=lambda n: result.stats[p][n].mean)
        in ("HEFT", "SDBATS")
        for p in (8, 10)
    )
    return first and later


def _fig7_high_ccr(result: SweepResult) -> bool:
    """HDLTS lowest FFT SLR at CCR 4 and 5."""
    return all(
        min(result.stats[x], key=lambda n: result.stats[x][n].mean) == "HDLTS"
        for x in (4.0, 5.0)
    )


def _fig10_montage(result: SweepResult) -> bool:
    """HDLTS lowest Montage SLR at every CCR (the paper's claim)."""
    return all(
        min(result.stats[x], key=lambda n: result.stats[x][n].mean) == "HDLTS"
        for x in result.definition.x_values
    )


def _fig14_md_efficiency(result: SweepResult) -> bool:
    """HDLTS most efficient on MD at 4-8 CPUs.

    (At 10 CPUs HDLTS and SDBATS are a statistical tie -- the winner
    flips with the replication count -- so the robust check covers the
    mid-range where HDLTS's margin is clear.)
    """
    return all(
        max(result.stats[p], key=lambda n: result.stats[p][n].mean) == "HDLTS"
        for p in (4, 6, 8)
    )


PAPER_CLAIMS: List[Claim] = [
    Claim(
        key="fig2-crossover",
        figure="fig2",
        statement="random DAGs: HDLTS ~ HEFT at low CCR, better at high CCR",
        expected=True,
        check=_fig2_crossover,
        reps=25,
    ),
    Claim(
        key="fig3-large-graphs",
        figure="fig3",
        statement="random DAGs: HDLTS best at the largest task count",
        expected=False,  # does not reproduce (EXPERIMENTS.md)
        check=_fig3_hdlts_wins_large,
        reps=10,
    ),
    Claim(
        key="fig4-efficiency-shape",
        figure="fig4",
        statement="HDLTS most efficient at few CPUs, HEFT/SDBATS at many",
        expected=True,
        check=_fig4_shape,
        reps=25,
    ),
    Claim(
        key="fig7-fft-high-ccr",
        figure="fig7",
        statement="FFT: HDLTS lowest SLR at high CCR",
        expected=True,
        check=_fig7_high_ccr,
        reps=20,
    ),
    Claim(
        key="fig10-montage",
        figure="fig10",
        statement="Montage: HDLTS lowest SLR at every CCR",
        expected=False,  # does not reproduce (EXPERIMENTS.md)
        check=_fig10_montage,
        reps=15,
    ),
    Claim(
        key="fig14-md-efficiency",
        figure="fig14",
        statement="MD: HDLTS most efficient across CPU counts",
        expected=True,
        check=_fig14_md_efficiency,
        reps=30,
    ),
]


def evaluate_claim(claim: Claim, seed: int = 0, reps: int = 0) -> bool:
    """Run one claim's sweep and return whether the claim holds."""
    result = run_sweep(
        get_figure(claim.figure), reps=reps or claim.reps, seed=seed
    )
    return claim.check(result)


def evaluate_all(seed: int = 0) -> Dict[str, bool]:
    """Evaluate every claim; returns ``{key: holds}``."""
    return {claim.key: evaluate_claim(claim, seed) for claim in PAPER_CLAIMS}

"""Declarative graph specs: named factories instead of closures.

A :class:`~repro.experiments.harness.SweepDefinition` used to close
over a local graph-factory function, which meant figure definitions
only survived ``fork`` (closures do not pickle) and a run could not be
written to a manifest.  A :class:`GraphSpec` replaces the closure with
*data*: the name of a registered factory plus its keyword parameters.
Specs pickle, serialize to JSON, ship to ``spawn``/``forkserver``
workers, and rebuild bit-identical graphs anywhere.

Factories receive ``(x, rng, **params)`` where ``x`` is the sweep's
current x-axis value; the ``axis`` parameter names which knob ``x``
drives (``"ccr"``, ``"v"``, ``"n_procs"``, ``"m"``, ...).  Axis values
are cast exactly as the original closures did (``int`` for counts,
``float`` otherwise), so spec-built graphs are bit-identical to the
closure-built ones for the same RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.model.task_graph import TaskGraph
from repro.workflows.fft import fft_topology
from repro.workflows.molecular import molecular_dynamics_topology
from repro.workflows.montage import montage_topology
from repro.workflows.topology import realize_topology

__all__ = [
    "GraphSpec",
    "register_graph_factory",
    "graph_factory_names",
]

GraphFactoryFn = Callable[..., TaskGraph]

_FACTORIES: Dict[str, GraphFactoryFn] = {}

#: axes cast to int (counts); every other axis is cast to float
_INT_AXES = frozenset({"v", "n_procs", "density", "m"})


def _cast_axis(axis: str, x) -> object:
    """Cast an x-axis value the way the original closures did."""
    return int(x) if axis in _INT_AXES else float(x)


def register_graph_factory(name: str) -> Callable[[GraphFactoryFn], GraphFactoryFn]:
    """Register ``fn(x, rng, **params) -> TaskGraph`` under ``name``."""

    def decorate(fn: GraphFactoryFn) -> GraphFactoryFn:
        if name in _FACTORIES:
            raise ValueError(f"graph factory {name!r} already registered")
        _FACTORIES[name] = fn
        return fn

    return decorate


def graph_factory_names() -> Tuple[str, ...]:
    """Names of every registered graph factory."""
    return tuple(_FACTORIES)


@dataclass(frozen=True)
class GraphSpec:
    """A graph factory as data: registered name + JSON-able parameters."""

    factory: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # copy defensively; specs are treated as immutable values
        object.__setattr__(self, "params", dict(self.params))

    def build(self, x, rng: np.random.Generator) -> TaskGraph:
        """Materialize the graph for x-axis value ``x``."""
        try:
            fn = _FACTORIES[self.factory]
        except KeyError:
            known = ", ".join(_FACTORIES) or "(none)"
            raise KeyError(
                f"unknown graph factory {self.factory!r}; known: {known}"
            ) from None
        return fn(x, rng, **self.params)

    def to_dict(self) -> Dict[str, object]:
        """Manifest form: ``{"factory": ..., "params": {...}}``."""
        return {"factory": self.factory, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GraphSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            factory=str(data["factory"]), params=dict(data.get("params", {}))
        )


# ----------------------------------------------------------------------
# the built-in factories (everything the paper's figures need)
# ----------------------------------------------------------------------
@register_graph_factory("random")
def _random_graph(x, rng, *, axis: str, **config) -> TaskGraph:
    """Table II random DAG with ``axis`` driven by the x value.

    ``config`` holds :class:`GeneratorConfig` field overrides (the
    figure's fixed parameters); the swept axis is applied on top.
    """
    base = GeneratorConfig(**config)
    return generate_random_graph(
        base.with_(**{axis: _cast_axis(axis, x)}), rng
    )


@register_graph_factory("random-fixed")
def _random_fixed_graph(
    x, rng, *, axis: str, structure_seed: int = 0, **config
) -> TaskGraph:
    """Table II random DAG with a *fixed* structure per x point.

    Like ``"random"``, but level shape and edge wiring come from a
    dedicated generator seeded with ``structure_seed`` (re-seeded per
    instance), so every replication of one x point shares one DAG shape
    while the cost draws stay independent streams of ``rng``.  This is
    the fig2-style sweep the batched multi-DAG kernel accelerates: all
    of an x point's replications land in one shape group.
    """
    base = GeneratorConfig(**config)
    structure_rng = np.random.default_rng(structure_seed)
    return generate_random_graph(
        base.with_(**{axis: _cast_axis(axis, x)}), rng, structure_rng
    )


@register_graph_factory("table2")
def _table2_graph(x, rng, *, configs) -> TaskGraph:
    """One sampled Table II configuration per x value.

    ``configs`` is a list of :class:`GeneratorConfig` field dicts (as
    produced by :func:`repro.experiments.grid.sample_configs` +
    ``dataclasses.asdict``) and ``x`` indexes into it -- which turns
    the paper's factorial protocol into an ordinary sweep definition
    that serializes into run manifests and campaign specs.
    """
    config = GeneratorConfig(**configs[int(x)])
    return generate_random_graph(config, rng)


def _topology_params(x, axis: str, fixed: Dict[str, object]) -> Dict[str, object]:
    params = dict(fixed)
    params[axis] = _cast_axis(axis, x)
    return params


@register_graph_factory("fft")
def _fft_graph(
    x,
    rng,
    *,
    axis: str,
    m: int = 16,
    n_procs: int = 4,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
) -> TaskGraph:
    """FFT butterfly workflow; ``axis`` in {"m", "n_procs", "ccr"}."""
    p = _topology_params(
        x, axis, {"m": m, "n_procs": n_procs, "ccr": ccr}
    )
    return realize_topology(
        fft_topology(p["m"]), p["n_procs"], rng=rng,
        ccr=p["ccr"], beta=beta, w_dag=w_dag,
    )


@register_graph_factory("montage")
def _montage_graph(
    x,
    rng,
    *,
    axis: str,
    sizes=(50, 100),
    n_procs: int = 5,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
) -> TaskGraph:
    """Montage mosaic workflow, drawing the structure size per instance.

    The size draw happens *before* cost realization, exactly like the
    original closure, so the RNG stream (and every cost) is unchanged.
    """
    p = _topology_params(x, axis, {"n_procs": n_procs, "ccr": ccr})
    size = sizes[int(rng.integers(len(sizes)))]
    return realize_topology(
        montage_topology(int(size)), p["n_procs"], rng=rng,
        ccr=p["ccr"], beta=beta, w_dag=w_dag,
    )


@register_graph_factory("molecular")
def _molecular_graph(
    x,
    rng,
    *,
    axis: str,
    n_procs: int = 4,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
) -> TaskGraph:
    """The fixed 41-task molecular-dynamics workflow."""
    p = _topology_params(x, axis, {"n_procs": n_procs, "ccr": ccr})
    return realize_topology(
        molecular_dynamics_topology(), p["n_procs"], rng=rng,
        ccr=p["ccr"], beta=beta, w_dag=w_dag,
    )

"""ASCII line charts for sweep results.

The paper's figures are line plots; with no plotting stack available the
CLI renders the same series as a text chart -- one mark per scheduler,
y-axis auto-scaled, collisions shown as ``*``::

    3.62 |                               A
         |                       A    s
         |               A  s e
         |        *  e
    2.09 |  *
         +----+----+----+----+----
           1.0  2.0  3.0  4.0  5.0

Marks are the first letters of the scheduler names (legend printed
below the chart).
"""

from __future__ import annotations

from typing import List

from repro.experiments.harness import SweepResult

__all__ = ["ascii_chart"]


def ascii_chart(result: SweepResult, height: int = 12, col_width: int = 7) -> str:
    """Render all scheduler series of a sweep as one ASCII chart."""
    if height < 3:
        raise ValueError("height must be >= 3")
    definition = result.definition
    names = list(definition.schedulers)
    series = {name: result.series(name) for name in names}
    values = [v for s in series.values() for v in s]
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        hi = lo + 1.0  # flat series: avoid dividing by zero

    # one distinct mark per scheduler: first unused character of the name
    marks: dict = {}
    used = set()
    for name in names:
        mark = next(
            (c for c in name if c.upper() not in used), name[0]
        ).upper()
        if name != names[0] and mark == marks.get(names[0]):
            mark = mark.lower()
        marks[name] = mark
        used.add(mark.upper())

    n_cols = len(definition.x_values)
    width = n_cols * col_width
    rows: List[List[str]] = [[" "] * width for _ in range(height)]
    for name in names:
        for col, value in enumerate(series[name]):
            level = int(round((value - lo) / (hi - lo) * (height - 1)))
            r = height - 1 - level
            c = col * col_width + col_width // 2
            rows[r][c] = "*" if rows[r][c] != " " else marks[name]

    label_hi = f"{hi:.3g}"
    label_lo = f"{lo:.3g}"
    margin = max(len(label_hi), len(label_lo))
    lines = []
    for i, row in enumerate(rows):
        prefix = label_hi if i == 0 else (label_lo if i == height - 1 else "")
        lines.append(f"{prefix:>{margin}} |{''.join(row)}")
    axis = "+".join("-" * (col_width - 1) for _ in range(n_cols))
    lines.append(f"{'':>{margin}} +{axis}-")
    ticks = "".join(
        f"{str(x):^{col_width}}" for x in definition.x_values
    )
    lines.append(f"{'':>{margin}}  {ticks}")
    legend = "   ".join(f"{marks[name]}={name}" for name in names)
    lines.append(f"{'':>{margin}}  {definition.x_label}    [{legend}]")
    return "\n".join(lines)

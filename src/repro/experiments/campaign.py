"""Sharded parameter-study campaigns with streaming columnar merge.

A *campaign* scales the figure harness three orders of magnitude past
the paper's few-hundred-replication protocol: a declarative spec
(:class:`~repro.experiments.harness.SweepDefinition`\\ s with portable
:class:`~repro.experiments.graphspec.GraphSpec`\\ s, one
:class:`~repro.runtime.context.RunContext`) is expanded into a
deterministic list of **tasks** -- the exact chunk decomposition
``repro run`` uses -- which are dealt round-robin onto ``n_shards``
independent **shards**.  Any shard can run in any process on any
machine at any time (``repro campaign run-shard DIR K``); its results
land in an append-only columnar store
(:mod:`repro.io.columnar`), one fsynced record batch per task, with no
timestamps or other nondeterminism in the file -- so a shard killed
mid-task and resumed produces a byte-identical store.

Layout of a campaign directory::

    campaign.json                  the spec: schema, context, reps,
                                   n_shards, resolved sweep definitions
    shards/shard-0000.colbin       per-shard columnar result stores
    shards/shard-0001.colbin       (record batches keyed by task id)
    telemetry/heartbeat-<pid>.json live shard heartbeats (repro top)
    merged.npz                     merged long-form stats table

The merge path (:func:`merge`) is streaming and memory-bounded: it
never materializes all rows.  Record batches are folded into Welford
accumulators **in exactly the serial harness's order** (per x point,
replication 0..reps-1) with the scalar recurrence vectorized across
``(x points, schedulers)`` lanes -- elementwise IEEE-754 double ops are
bit-identical to the scalar Python-float sequence
:class:`~repro.metrics.stats.RunningStats` executes, so a merged
campaign reproduces ``repro figure`` output *bit for bit*, regardless
of sharding, kills, or resume history.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.experiments.harness import (
    SweepDefinition,
    SweepResult,
    run_replications,
)
from repro.io.columnar import write_table
from repro.metrics.stats import RunningStats
from repro.runtime.context import RunContext, activate
from repro.runtime.session import read_manifest, write_manifest
from repro.runtime.telemetry import HeartbeatWriter, telemetry_dir
from repro.service.store import (
    ColumnarStore,
    TaskSpec,
    enumerate_tasks,
    task_id,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CAMPAIGN_STATUS_SCHEMA",
    "CampaignTask",
    "Campaign",
    "ShardReport",
    "task_id",
    "run_shard",
    "merge",
    "merged_table",
    "campaign_status",
]

PathLike = Union[str, pathlib.Path]

CAMPAIGN_SCHEMA = "repro.campaign/1"
CAMPAIGN_STATUS_SCHEMA = "repro.campaign-status/1"

#: an incomplete shard with no evidence of life for this long is
#: flagged as a straggler by :func:`campaign_status`
_STRAGGLER_FLOOR_S = 10.0


#: campaign tasks *are* the service layer's task decomposition --
#: :func:`repro.service.store.task_id` names them and
#: :class:`repro.service.store.TaskSpec` carries them; the old names
#: stay importable from here.
CampaignTask = TaskSpec


class Campaign:
    """One campaign directory: declarative spec + sharded result stores."""

    SCHEMA = CAMPAIGN_SCHEMA
    MANIFEST = "campaign.json"
    SHARDS_DIRNAME = "shards"
    MERGED = "merged.npz"

    def __init__(
        self,
        path: PathLike,
        context: RunContext,
        reps: int,
        n_shards: int,
        definitions: List[SweepDefinition],
        created: Optional[str] = None,
    ) -> None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        keys = [d.key for d in definitions]
        if not keys:
            raise ValueError("a campaign needs at least one sweep definition")
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate sweep keys: {keys}")
        closures = sorted(d.key for d in definitions if not d.portable)
        if closures:
            raise ValueError(
                f"definitions {closures} use make_graph closures and cannot "
                "be written to a campaign manifest; give them a GraphSpec"
            )
        self.path = pathlib.Path(path)
        self.context = context
        self.reps = reps
        self.n_shards = n_shards
        self.definitions = list(definitions)
        self.created = created

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        definitions: List[SweepDefinition],
        reps: int,
        n_shards: int,
        context: RunContext,
    ) -> "Campaign":
        """Write a fresh campaign directory; refuses to clobber one."""
        campaign = cls(
            path,
            context,
            reps,
            n_shards,
            definitions,
            created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        manifest = campaign.path / cls.MANIFEST
        if manifest.exists():
            raise FileExistsError(
                f"directory {campaign.path} already holds a campaign; "
                f"run its shards or pick a new directory"
            )
        campaign.path.mkdir(parents=True, exist_ok=True)
        (campaign.path / cls.SHARDS_DIRNAME).mkdir(exist_ok=True)
        write_manifest(manifest, campaign.manifest_dict())
        return campaign

    @classmethod
    def open(cls, path: PathLike) -> "Campaign":
        """Re-open a campaign directory from its manifest."""
        path = pathlib.Path(path)
        doc = read_manifest(path / cls.MANIFEST, cls.SCHEMA)
        return cls(
            path,
            RunContext.from_dict(doc["context"]),
            int(doc["reps"]),
            int(doc["n_shards"]),
            [SweepDefinition.from_dict(entry) for entry in doc["sweeps"]],
            created=doc.get("created"),
        )

    def manifest_dict(self) -> Dict[str, object]:
        """The JSON manifest document (schema ``repro.campaign/1``)."""
        from repro import __version__

        return {
            "schema": self.SCHEMA,
            "version": __version__,
            "created": self.created,
            "context": self.context.to_dict(),
            "reps": self.reps,
            "n_shards": self.n_shards,
            "sweeps": [d.to_dict() for d in self.definitions],
        }

    # -- task enumeration ------------------------------------------------
    def tasks(self) -> List[CampaignTask]:
        """Every task of the campaign, in deterministic (spec) order.

        The decomposition is exactly :func:`~repro.experiments.parallel
        .chunk_plan` -- the same chunks ``repro run`` executes,
        enumerated through the shared service-layer
        :func:`~repro.service.store.enumerate_tasks` -- so campaign
        results line up replication-for-replication with a checkpointed
        or serial run of the same definitions.
        """
        return enumerate_tasks(
            self.definitions, self.reps, self.context.seed,
            self.context.validate, self.context.chunk_size,
        )

    def shard_of(self, task: CampaignTask) -> int:
        """Which shard owns ``task`` (round-robin by task index)."""
        return task.index % self.n_shards

    def shard_tasks(self, shard: int) -> List[CampaignTask]:
        """The tasks shard ``shard`` must run, in execution order."""
        self._check_shard(shard)
        return [t for t in self.tasks() if self.shard_of(t) == shard]

    def shard_path(self, shard: int) -> pathlib.Path:
        """The shard's columnar store file."""
        self._check_shard(shard)
        return (
            self.path / self.SHARDS_DIRNAME / f"shard-{shard:04d}.colbin"
        )

    def groups(self) -> Dict[str, List[str]]:
        """Columnar record groups: one per sweep, scheduler columns."""
        return {d.key: list(d.schedulers) for d in self.definitions}

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )


# ----------------------------------------------------------------------
# shard execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardReport:
    """What one :func:`run_shard` call did."""

    shard: int
    executed: int
    replayed: int
    total: int

    @property
    def complete(self) -> bool:
        return self.executed + self.replayed >= self.total


def run_shard(
    campaign: Campaign,
    shard: int,
    progress: Optional[Callable[[int, int], None]] = None,
    max_tasks: Optional[int] = None,
) -> ShardReport:
    """Run (or resume) one shard to completion, durably.

    Tasks already present in the shard store are skipped; the torn tail
    left by a crash is truncated before appending, so the finished
    store is byte-identical however many times the shard was killed.
    ``max_tasks`` bounds how many *new* tasks run (testing / draining).
    The campaign's context governs execution -- seed, engine, compiled
    layer, batched kernel -- exactly as a serial run would.
    """
    tasks = campaign.shard_tasks(shard)
    definitions = {d.key: d for d in campaign.definitions}
    context = campaign.context.with_(
        telemetry=str(telemetry_dir(campaign.path))
    )
    executed = replayed = 0
    with activate(context):
        store = ColumnarStore(
            campaign.shard_path(shard), campaign.groups(), mode="a"
        )
        done_ids = store.completed_ids()
        heartbeat = HeartbeatWriter(
            context.telemetry, role="shard", extra={"shard": shard}
        )
        heartbeat.beat(force=True)
        with store, obs.span(
            "campaign.shard", shard=shard, tasks=len(tasks)
        ):
            for task in tasks:
                if task.task_id in done_ids:
                    replayed += 1
                    continue
                if max_tasks is not None and executed >= max_tasks:
                    break
                definition = definitions[task.sweep]
                with obs.span(
                    "campaign.task", task=task.task_id, shard=shard
                ):
                    values = run_replications(
                        definition, task.x, task.x_index, task.rep_lo,
                        task.rep_hi, context.seed, context.validate,
                    )
                store.append_chunk(
                    task.sweep, task.x_index, task.x, task.rep_lo,
                    task.rep_hi, values,
                )
                executed += 1
                heartbeat.bump(last_event_ts=time.time())
                if progress is not None:
                    progress(executed + replayed, len(tasks))
        heartbeat.beat(force=True)
    return ShardReport(
        shard=shard, executed=executed, replayed=replayed, total=len(tasks)
    )


# ----------------------------------------------------------------------
# streaming merge
# ----------------------------------------------------------------------
def _store_index(
    campaign: Campaign,
) -> Tuple[Dict[str, ColumnarStore], List[ColumnarStore]]:
    """Open every shard store once: ``task_id -> store`` plus the open
    stores (caller closes them).

    Tolerates missing shard files and torn tails (both just mean fewer
    completed tasks); a duplicate task across shards is an error -- it
    would mean the deterministic partition was violated.
    """
    index: Dict[str, ColumnarStore] = {}
    stores: List[ColumnarStore] = []
    for shard in range(campaign.n_shards):
        path = campaign.shard_path(shard)
        if not path.exists():
            continue
        store = ColumnarStore(path, campaign.groups(), mode="r")
        stores.append(store)
        for tid in sorted(store.completed_ids()):
            if tid in index:
                raise ValueError(
                    f"task {tid} appears in both {index[tid].path.name} "
                    f"and {path.name}; the shard partition was violated"
                )
            index[tid] = store
    return index, stores


class _ExactWelford:
    """Sequential Welford over ``(lanes,)`` float64 lanes, vectorized.

    Each lane executes *exactly* the scalar recurrence of
    :class:`~repro.metrics.stats.RunningStats.add` -- same operations,
    same order, same IEEE-754 double rounding -- so lane results are
    bit-identical to feeding the lane's samples to ``RunningStats`` one
    by one.  Vectorizing across lanes (x points x schedulers) is what
    makes the merge fast; staying scalar *along* each lane is what
    keeps it exact.
    """

    def __init__(self, shape: Tuple[int, ...]) -> None:
        self.n = 0
        self.mean = np.zeros(shape)
        self.m2 = np.zeros(shape)
        self.min = np.full(shape, math.inf)
        self.max = np.full(shape, -math.inf)
        self._delta = np.empty(shape)
        self._tmp = np.empty(shape)

    def add_rows(self, rows: np.ndarray) -> None:
        """Fold ``rows[r]`` (one sample per lane) in row order."""
        delta, tmp = self._delta, self._tmp
        for r in range(len(rows)):
            value = rows[r]
            self.n += 1
            np.subtract(value, self.mean, out=delta)
            np.divide(delta, self.n, out=tmp)
            np.add(self.mean, tmp, out=self.mean)
            np.subtract(value, self.mean, out=tmp)
            np.multiply(delta, tmp, out=tmp)
            np.add(self.m2, tmp, out=self.m2)
            np.minimum(self.min, value, out=self.min)
            np.maximum(self.max, value, out=self.max)

    def stats_at(self, lane: Tuple[int, ...]) -> RunningStats:
        """Materialize one lane as a :class:`RunningStats` (exact)."""
        acc = RunningStats()
        acc.n = self.n
        acc._mean = float(self.mean[lane])
        acc._m2 = float(self.m2[lane])
        acc._min = float(self.min[lane])
        acc._max = float(self.max[lane])
        return acc


def _merge_sweep(
    campaign: Campaign,
    definition: SweepDefinition,
    index: Dict[str, ColumnarStore],
) -> SweepResult:
    """Fold one sweep's record batches into per-point stats, exactly.

    Streams rep-stripes: for each chunk of the rep axis, the frames of
    every x point are gathered into one ``(chunk, n_x, k)`` block and
    folded row-by-row across all ``n_x * k`` lanes at once.  Memory is
    bounded by one stripe; accumulation order per lane is replication
    order -- the serial harness's order.
    """
    cols = list(definition.schedulers)
    xs = list(definition.x_values)
    n_x, k = len(xs), len(cols)
    reps, chunk = campaign.reps, campaign.context.chunk_size
    welford = _ExactWelford((n_x, k))
    block = np.empty((min(chunk, reps), n_x, k))
    for rep_lo in range(0, reps, chunk):
        rep_hi = min(rep_lo + chunk, reps)
        rows = rep_hi - rep_lo
        for xi in range(n_x):
            tid = task_id(definition.key, xi, rep_lo, rep_hi)
            block[:rows, xi, :] = index[tid].read_matrix(tid, cols, rows)
        welford.add_rows(block[:rows])
    result = SweepResult(
        definition=definition, reps=reps, seed=campaign.context.seed
    )
    for xi, x in enumerate(xs):
        result.stats[x] = {
            name: welford.stats_at((xi, ci)) for ci, name in enumerate(cols)
        }
    return result


def _merge_sweep_partial(
    campaign: Campaign,
    definition: SweepDefinition,
    index: Dict[str, ColumnarStore],
) -> SweepResult:
    """Preview merge over whatever tasks exist (per-x fold, gaps skipped).

    Still exact Welford in rep order over the *available* chunks, but a
    point missing chunks simply has fewer samples -- useful for
    watching a live campaign converge, not for final figures.
    """
    cols = list(definition.schedulers)
    reps, chunk = campaign.reps, campaign.context.chunk_size
    result = SweepResult(
        definition=definition, reps=reps, seed=campaign.context.seed
    )
    for xi, x in enumerate(definition.x_values):
        welford = _ExactWelford((len(cols),))
        for rep_lo in range(0, reps, chunk):
            rep_hi = min(rep_lo + chunk, reps)
            tid = task_id(definition.key, xi, rep_lo, rep_hi)
            store = index.get(tid)
            if store is None:
                continue
            welford.add_rows(store.read_matrix(tid, cols, rep_hi - rep_lo))
        result.stats[x] = {
            name: welford.stats_at((ci,)) for ci, name in enumerate(cols)
        }
    return result


def merge(
    campaign: Campaign, strict: bool = True
) -> Dict[str, SweepResult]:
    """Fold every shard store into final per-point statistics.

    Streaming and memory-bounded; the returned
    :class:`~repro.experiments.harness.SweepResult`\\ s are
    bit-identical to running the same definitions through the serial
    harness.  ``strict=False`` merges whatever tasks have completed
    (a live preview); by default a missing task raises, naming how much
    of the campaign is still outstanding.
    """
    index, stores = _store_index(campaign)
    tasks = campaign.tasks()
    missing = [t for t in tasks if t.task_id not in index]
    if missing and strict:
        for store in stores:
            store.close()
        raise ValueError(
            f"{len(missing)} of {len(tasks)} tasks have no results yet "
            f"(first missing: {missing[0].task_id}); run the remaining "
            "shards, or merge(strict=False) for a partial preview"
        )
    fold = _merge_sweep if not missing else _merge_sweep_partial
    try:
        with obs.span(
            "campaign.merge", tasks=len(tasks) - len(missing),
            partial=bool(missing),
        ):
            return {
                d.key: fold(campaign, d, index)
                for d in campaign.definitions
            }
    finally:
        for store in stores:
            store.close()


def merged_table(results: Dict[str, SweepResult]) -> Dict[str, np.ndarray]:
    """Long-form columnar table of merged stats (one row per x, scheduler).

    The dict of numpy columns feeds :func:`repro.io.columnar.write_table`
    -- Parquet when pyarrow is importable, ``.npz`` otherwise.
    """
    sweep, x_label, x, metric, scheduler = [], [], [], [], []
    mean, std, n, vmin, vmax = [], [], [], [], []
    for key, result in results.items():
        definition = result.definition
        for point in definition.x_values:
            for name in definition.schedulers:
                acc = result.stats[point][name]
                sweep.append(key)
                x_label.append(definition.x_label)
                x.append(float(point))
                metric.append(definition.metric)
                scheduler.append(name)
                # zero-sample lanes (partial merges) land as NaN rows
                mean.append(acc.mean if acc.n else math.nan)
                std.append(acc.std if acc.n else math.nan)
                n.append(acc.n)
                vmin.append(acc.min if acc.n else math.nan)
                vmax.append(acc.max if acc.n else math.nan)
    return {
        "sweep": np.array(sweep),
        "x_label": np.array(x_label),
        "x": np.array(x, dtype=np.float64),
        "metric": np.array(metric),
        "scheduler": np.array(scheduler),
        "mean": np.array(mean, dtype=np.float64),
        "std": np.array(std, dtype=np.float64),
        "n": np.array(n, dtype=np.int64),
        "min": np.array(vmin, dtype=np.float64),
        "max": np.array(vmax, dtype=np.float64),
    }


def write_merged(
    campaign: Campaign,
    results: Dict[str, SweepResult],
    path: Optional[PathLike] = None,
) -> pathlib.Path:
    """Write the merged long-form table beside the campaign manifest."""
    target = pathlib.Path(path) if path else campaign.path / Campaign.MERGED
    return write_table(target, merged_table(results))


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------
def campaign_status(
    path: PathLike, now: Optional[float] = None
) -> Dict[str, object]:
    """One status document over a campaign directory.

    Schema ``repro.campaign-status/1``; derived purely from the
    manifest, the shard stores and the heartbeat files, so it is safe
    on live, crashed and finished campaigns alike.  Per-shard progress
    makes stragglers visible: an incomplete shard whose newest evidence
    (heartbeat, then store mtime) is stale gets flagged.
    """
    from repro.runtime.telemetry import load_heartbeats

    campaign = Campaign.open(path)
    now = time.time() if now is None else now
    tasks = campaign.tasks()
    totals_by_shard = [0] * campaign.n_shards
    for task in tasks:
        totals_by_shard[campaign.shard_of(task)] += 1

    beats = load_heartbeats(campaign.path)
    beat_by_shard: Dict[int, Dict[str, object]] = {}
    for beat in beats:
        beat["age_s"] = now - float(beat.get("ts", now))
        shard = beat.get("shard")
        if shard is None:
            continue
        best = beat_by_shard.get(int(shard))
        if best is None or beat["age_s"] < best["age_s"]:
            beat_by_shard[int(shard)] = beat

    per_sweep_rows: Dict[str, int] = {d.key: 0 for d in campaign.definitions}
    shards: List[Dict[str, object]] = []
    done_ids = set()
    for shard in range(campaign.n_shards):
        store = campaign.shard_path(shard)
        done = 0
        size = None
        age = None
        if store.exists():
            with ColumnarStore(store, campaign.groups()) as cstore:
                frames = cstore.frames
            done = len(frames)
            for frame in frames:
                done_ids.add(str(frame.meta.get("task")))
                group = str(frame.meta.get("group"))
                if group in per_sweep_rows:
                    per_sweep_rows[group] += frame.rows
            stat = store.stat()
            size = stat.st_size
            age = now - stat.st_mtime
        beat = beat_by_shard.get(shard)
        if beat is not None:
            age = beat["age_s"] if age is None else min(age, beat["age_s"])
        complete = done >= totals_by_shard[shard]
        shards.append(
            {
                "shard": shard,
                "tasks_done": done,
                "tasks_total": totals_by_shard[shard],
                "complete": complete,
                "started": store.exists(),
                "bytes": size,
                "age_s": age,
                "pid": beat.get("pid") if beat else None,
                "straggler": bool(
                    not complete
                    and store.exists()
                    and age is not None
                    and age > _STRAGGLER_FLOOR_S
                ),
            }
        )

    sweeps = []
    for definition in campaign.definitions:
        total_rows = len(definition.x_values) * campaign.reps
        sweeps.append(
            {
                "key": definition.key,
                "title": definition.title,
                "x_label": definition.x_label,
                "points": len(definition.x_values),
                "reps": campaign.reps,
                "rows_done": per_sweep_rows[definition.key],
                "rows_total": total_rows,
                "complete": per_sweep_rows[definition.key] >= total_rows,
            }
        )

    tasks_done = len(done_ids)
    return {
        "schema": CAMPAIGN_STATUS_SCHEMA,
        "run_dir": str(path),
        "created": campaign.created,
        "complete": tasks_done >= len(tasks),
        "tasks_done": tasks_done,
        "tasks_total": len(tasks),
        "rows_done": sum(s["rows_done"] for s in sweeps),
        "rows_total": sum(s["rows_total"] for s in sweeps),
        "n_shards": campaign.n_shards,
        "chunk_size": campaign.context.chunk_size,
        "reps": campaign.reps,
        "sweeps": sweeps,
        "shards": shards,
        "stragglers": [s["shard"] for s in shards if s["straggler"]],
    }

"""CSV export of sweep and grid results for external plotting.

The benches regenerate the paper's tables as text; anyone who wants the
actual figures (matplotlib, gnuplot, a spreadsheet) gets tidy long-form
CSV from here: one row per (x, scheduler) with mean/std/n.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Optional, Union

from repro.experiments.grid import GridResult
from repro.experiments.harness import SweepResult

__all__ = ["sweep_to_csv", "grid_to_csv"]

PathLike = Union[str, pathlib.Path]


def sweep_to_csv(result: SweepResult, path: Optional[PathLike] = None) -> str:
    """Serialize a sweep as tidy CSV; optionally write it to ``path``.

    Columns come straight from :meth:`SweepResult.as_rows`, whose rows
    are self-describing (they carry ``x_label`` and ``metric``), so
    this writer needs no side channel back to the definition.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["figure", result.definition.x_label, "scheduler", "metric", "mean", "std", "n"]
    )
    for row in result.as_rows():
        writer.writerow(
            [
                result.definition.key,
                row["x"],
                row["scheduler"],
                row["metric"],
                f"{row['mean']:.6f}",
                f"{row['std']:.6f}",
                row["n"],
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text


def grid_to_csv(result: GridResult, path: Optional[PathLike] = None) -> str:
    """Serialize grid marginals as tidy CSV (axis, value, scheduler)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["axis", "value", "scheduler", "metric", "mean", "std", "n"])
    for name, acc in result.overall.items():
        writer.writerow(
            ["overall", "", name, result.metric, f"{acc.mean:.6f}", f"{acc.std:.6f}", acc.n]
        )
    for axis, buckets in result.marginals.items():
        for value in sorted(buckets):
            for name, acc in buckets[value].items():
                writer.writerow(
                    [
                        axis,
                        value,
                        name,
                        result.metric,
                        f"{acc.mean:.6f}",
                        f"{acc.std:.6f}",
                        acc.n,
                    ]
                )
    text = buffer.getvalue()
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text

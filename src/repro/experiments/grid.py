"""Table II factorial runs with marginal analysis.

The paper's headline protocol runs *every* parameter combination of
Table II (its literal cross product is 150,000 configurations) many
times and reports per-axis averages.  :func:`run_grid` executes either
the full factorial or a uniform random subsample of it, accumulating

* overall per-scheduler statistics, and
* per-axis *marginals*: for each value of each parameter, the mean
  metric of every scheduler over all sampled combinations having that
  value -- which is exactly what the paper's figures plot.

Deterministic for a given seed; arbitrarily scalable via ``sample``.

For production scale, :func:`grid_sweep_definition` re-expresses the
same sampled factorial as an ordinary
:class:`~repro.experiments.harness.SweepDefinition` (one x value per
sampled configuration, a declarative ``"table2"`` graph spec), which
makes the Table II protocol shardable through
:mod:`repro.experiments.campaign`; :func:`marginals_from_sweep` folds
the merged sweep back into the per-axis marginal view.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import PAPER_SET, make_scheduler
from repro.experiments.graphspec import GraphSpec
from repro.experiments.harness import SweepDefinition, SweepResult
from repro.generator.parameters import TABLE_II, GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.metrics import efficiency, slr
from repro.metrics.stats import RunningStats

__all__ = [
    "GridResult",
    "run_grid",
    "format_marginals",
    "sample_configs",
    "grid_sweep_definition",
    "marginals_from_sweep",
]

_METRICS = {"slr": slr, "efficiency": efficiency}


@dataclass
class GridResult:
    """Accumulated factorial-run output."""

    metric: str
    schedulers: Tuple[str, ...]
    n_configs: int
    reps: int
    overall: Dict[str, RunningStats] = field(default_factory=dict)
    #: marginals[axis][value][scheduler] -> RunningStats
    marginals: Dict[str, Dict[object, Dict[str, RunningStats]]] = field(
        default_factory=dict
    )

    def winner(self) -> str:
        """Scheduler with the best overall mean for this metric."""
        pick = min if self.metric == "slr" else max
        return pick(self.overall, key=lambda name: self.overall[name].mean)


def sample_configs(
    grid: Dict[str, Tuple],
    sample: Optional[int],
    rng: np.random.Generator,
    max_tasks: int,
) -> List[GeneratorConfig]:
    """Sample Table II configurations, deterministically for one RNG.

    ``sample=None`` (or >= the grid's cross product) enumerates the
    whole task-size-capped factorial; otherwise a uniform subsample
    without replacement.  Both :func:`run_grid` and
    :func:`grid_sweep_definition` draw their configurations here, so a
    campaign sweeps exactly the combinations the in-process grid runs.
    """
    axes = list(grid)
    usable = dict(grid)
    usable["v"] = tuple(v for v in usable["v"] if v <= max_tasks)
    if not usable["v"]:
        raise ValueError(f"no Table II task size <= max_tasks={max_tasks}")
    sizes = [len(usable[a]) for a in axes]
    total = int(np.prod(sizes))
    if sample is None or sample >= total:
        indices = np.arange(total)
    else:
        indices = rng.choice(total, size=sample, replace=False)
    configs = []
    for flat in indices:
        combo = {}
        remainder = int(flat)
        for axis, size in zip(axes, sizes):
            combo[axis] = usable[axis][remainder % size]
            remainder //= size
        configs.append(GeneratorConfig(**combo, single_entry=True))
    return configs


def run_grid(
    metric: str = "slr",
    schedulers: Sequence[str] = PAPER_SET,
    sample: Optional[int] = 200,
    reps: int = 3,
    seed: int = 0,
    max_tasks: int = 500,
    grid: Optional[Dict[str, Tuple]] = None,
) -> GridResult:
    """Run a (sub)factorial of Table II.

    ``sample=None`` runs the entire (task-size-capped) grid; ``reps``
    graphs are drawn per configuration.  ``max_tasks`` keeps the default
    laptop-scale (the 5000/10000-task rows multiply runtime by ~50).
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {sorted(_METRICS)}")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    metric_fn = _METRICS[metric]
    rng = np.random.default_rng(seed)
    configs = sample_configs(grid or TABLE_II, sample, rng, max_tasks)

    result = GridResult(
        metric=metric,
        schedulers=tuple(schedulers),
        n_configs=len(configs),
        reps=reps,
    )
    result.overall = {name: RunningStats() for name in schedulers}
    axes = list((grid or TABLE_II).keys())
    for axis in axes:
        result.marginals[axis] = {}

    instances = [(name, make_scheduler(name)) for name in schedulers]
    for ci, config in enumerate(configs):
        for rep in range(reps):
            graph_rng = np.random.default_rng([seed, ci, rep])
            graph = generate_random_graph(config, graph_rng)
            if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
                graph = graph.normalized()
            for name, scheduler in instances:
                value = metric_fn(graph, scheduler.run(graph).makespan)
                result.overall[name].add(value)
                for axis in axes:
                    axis_value = getattr(config, axis)
                    bucket = result.marginals[axis].setdefault(
                        axis_value, {n: RunningStats() for n in schedulers}
                    )
                    bucket[name].add(value)
    return result


def grid_sweep_definition(
    metric: str = "slr",
    schedulers: Sequence[str] = PAPER_SET,
    sample: Optional[int] = 200,
    seed: int = 0,
    max_tasks: int = 500,
    grid: Optional[Dict[str, Tuple]] = None,
    key: str = "table2",
) -> SweepDefinition:
    """The Table II protocol as a shardable sweep definition.

    Samples the factorial exactly like :func:`run_grid` (same RNG, same
    configurations for the same ``seed``), then re-expresses it as one
    sweep whose x-axis is the configuration index and whose graph spec
    is the declarative ``"table2"`` factory carrying the sampled
    configurations.  The definition serializes into run manifests and
    campaign specs, so a 150,000-configuration factorial can be sharded
    across machines with :mod:`repro.experiments.campaign` and merged
    back into marginals with :func:`marginals_from_sweep`.

    Replication RNG streams are keyed ``(seed, x_index, rep)`` by the
    harness -- identical to :func:`run_grid`'s ``(seed, ci, rep)`` --
    so per-instance metric values match the in-process grid bit for
    bit.
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {sorted(_METRICS)}")
    rng = np.random.default_rng(seed)
    configs = sample_configs(grid or TABLE_II, sample, rng, max_tasks)
    return SweepDefinition(
        key=key,
        title=f"Table II grid ({len(configs)} sampled configurations)",
        x_label="config",
        x_values=tuple(range(len(configs))),
        metric=metric,
        schedulers=tuple(schedulers),
        description=(
            "Sampled Table II factorial as a sweep: one x value per "
            "configuration; fold with marginals_from_sweep"
        ),
        graph=GraphSpec(
            "table2", {"configs": [asdict(c) for c in configs]}
        ),
    )


def _combine(target: RunningStats, other: RunningStats) -> None:
    """Fold ``other`` into ``target`` (Chan et al. pairwise combine)."""
    if other.n == 0:
        return
    if target.n == 0:
        target.n = other.n
        target._mean = other._mean
        target._m2 = other._m2
        target._min = other._min
        target._max = other._max
        return
    na, nb = target.n, other.n
    n = na + nb
    delta = other._mean - target._mean
    target._mean += delta * nb / n
    target._m2 += other._m2 + delta * delta * na * nb / n
    target._min = min(target._min, other._min)
    target._max = max(target._max, other._max)
    target.n = n


def marginals_from_sweep(result: SweepResult) -> GridResult:
    """Fold a ``"table2"`` sweep back into Table II marginals.

    The inverse of :func:`grid_sweep_definition`: per-configuration
    statistics (one x point each -- e.g. from a merged campaign) are
    combined pairwise into the overall and per-axis marginal
    accumulators.  Statistically identical to :func:`run_grid` over the
    same samples; not bit-identical, because pairwise combination
    rounds differently than sample-by-sample accumulation.
    """
    definition = result.definition
    spec = definition.graph
    if spec is None or spec.factory != "table2":
        raise ValueError(
            "marginals_from_sweep needs a sweep built by "
            "grid_sweep_definition (graph factory 'table2'); got "
            f"{spec.factory if spec else None!r}"
        )
    configs = [GeneratorConfig(**c) for c in spec.params["configs"]]
    grid_result = GridResult(
        metric=definition.metric,
        schedulers=tuple(definition.schedulers),
        n_configs=len(configs),
        reps=result.reps,
    )
    grid_result.overall = {
        name: RunningStats() for name in definition.schedulers
    }
    axes = list(TABLE_II)
    for axis in axes:
        grid_result.marginals[axis] = {}
    for ci, config in enumerate(configs):
        point = result.stats[definition.x_values[ci]]
        for name in definition.schedulers:
            acc = point[name]
            _combine(grid_result.overall[name], acc)
            for axis in axes:
                bucket = grid_result.marginals[axis].setdefault(
                    getattr(config, axis),
                    {n: RunningStats() for n in definition.schedulers},
                )
                _combine(bucket[name], acc)
    return grid_result


def format_marginals(result: GridResult, axes: Optional[Sequence[str]] = None) -> str:
    """Render per-axis marginal tables (the paper's figure protocol)."""
    from repro.experiments.report import format_table

    blocks = [
        f"Table II grid: {result.n_configs} configurations x {result.reps} reps, "
        f"metric={result.metric}, overall winner: {result.winner()}"
    ]
    overall_row = [
        ["(all)"] + [f"{result.overall[n].mean:.4f}" for n in result.schedulers]
    ]
    blocks.append(
        format_table(["overall"] + list(result.schedulers), overall_row)
    )
    for axis in axes or result.marginals:
        rows = []
        for value in sorted(result.marginals[axis]):
            bucket = result.marginals[axis][value]
            rows.append(
                [str(value)]
                + [f"{bucket[n].mean:.4f}" for n in result.schedulers]
            )
        blocks.append(
            format_table([axis] + list(result.schedulers), rows)
        )
    return "\n\n".join(blocks)

"""Table II factorial runs with marginal analysis.

The paper's headline protocol runs *every* parameter combination of
Table II (its literal cross product is 150,000 configurations) many
times and reports per-axis averages.  :func:`run_grid` executes either
the full factorial or a uniform random subsample of it, accumulating

* overall per-scheduler statistics, and
* per-axis *marginals*: for each value of each parameter, the mean
  metric of every scheduler over all sampled combinations having that
  value -- which is exactly what the paper's figures plot.

Deterministic for a given seed; arbitrarily scalable via ``sample``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import PAPER_SET, make_scheduler
from repro.generator.parameters import TABLE_II, GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.metrics.metrics import efficiency, slr
from repro.metrics.stats import RunningStats

__all__ = ["GridResult", "run_grid", "format_marginals"]

_METRICS = {"slr": slr, "efficiency": efficiency}


@dataclass
class GridResult:
    """Accumulated factorial-run output."""

    metric: str
    schedulers: Tuple[str, ...]
    n_configs: int
    reps: int
    overall: Dict[str, RunningStats] = field(default_factory=dict)
    #: marginals[axis][value][scheduler] -> RunningStats
    marginals: Dict[str, Dict[object, Dict[str, RunningStats]]] = field(
        default_factory=dict
    )

    def winner(self) -> str:
        """Scheduler with the best overall mean for this metric."""
        pick = min if self.metric == "slr" else max
        return pick(self.overall, key=lambda name: self.overall[name].mean)


def _sample_configs(
    grid: Dict[str, Tuple],
    sample: Optional[int],
    rng: np.random.Generator,
    max_tasks: int,
) -> List[GeneratorConfig]:
    axes = list(grid)
    usable = dict(grid)
    usable["v"] = tuple(v for v in usable["v"] if v <= max_tasks)
    if not usable["v"]:
        raise ValueError(f"no Table II task size <= max_tasks={max_tasks}")
    sizes = [len(usable[a]) for a in axes]
    total = int(np.prod(sizes))
    if sample is None or sample >= total:
        indices = np.arange(total)
    else:
        indices = rng.choice(total, size=sample, replace=False)
    configs = []
    for flat in indices:
        combo = {}
        remainder = int(flat)
        for axis, size in zip(axes, sizes):
            combo[axis] = usable[axis][remainder % size]
            remainder //= size
        configs.append(GeneratorConfig(**combo, single_entry=True))
    return configs


def run_grid(
    metric: str = "slr",
    schedulers: Sequence[str] = PAPER_SET,
    sample: Optional[int] = 200,
    reps: int = 3,
    seed: int = 0,
    max_tasks: int = 500,
    grid: Optional[Dict[str, Tuple]] = None,
) -> GridResult:
    """Run a (sub)factorial of Table II.

    ``sample=None`` runs the entire (task-size-capped) grid; ``reps``
    graphs are drawn per configuration.  ``max_tasks`` keeps the default
    laptop-scale (the 5000/10000-task rows multiply runtime by ~50).
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {sorted(_METRICS)}")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    metric_fn = _METRICS[metric]
    rng = np.random.default_rng(seed)
    configs = _sample_configs(grid or TABLE_II, sample, rng, max_tasks)

    result = GridResult(
        metric=metric,
        schedulers=tuple(schedulers),
        n_configs=len(configs),
        reps=reps,
    )
    result.overall = {name: RunningStats() for name in schedulers}
    axes = list((grid or TABLE_II).keys())
    for axis in axes:
        result.marginals[axis] = {}

    instances = [(name, make_scheduler(name)) for name in schedulers]
    for ci, config in enumerate(configs):
        for rep in range(reps):
            graph_rng = np.random.default_rng([seed, ci, rep])
            graph = generate_random_graph(config, graph_rng)
            if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
                graph = graph.normalized()
            for name, scheduler in instances:
                value = metric_fn(graph, scheduler.run(graph).makespan)
                result.overall[name].add(value)
                for axis in axes:
                    axis_value = getattr(config, axis)
                    bucket = result.marginals[axis].setdefault(
                        axis_value, {n: RunningStats() for n in schedulers}
                    )
                    bucket[name].add(value)
    return result


def format_marginals(result: GridResult, axes: Optional[Sequence[str]] = None) -> str:
    """Render per-axis marginal tables (the paper's figure protocol)."""
    from repro.experiments.report import format_table

    blocks = [
        f"Table II grid: {result.n_configs} configurations x {result.reps} reps, "
        f"metric={result.metric}, overall winner: {result.winner()}"
    ]
    overall_row = [
        ["(all)"] + [f"{result.overall[n].mean:.4f}" for n in result.schedulers]
    ]
    blocks.append(
        format_table(["overall"] + list(result.schedulers), overall_row)
    )
    for axis in axes or result.marginals:
        rows = []
        for value in sorted(result.marginals[axis]):
            bucket = result.marginals[axis][value]
            rows.append(
                [str(value)]
                + [f"{bucket[n].mean:.4f}" for n in result.schedulers]
            )
        blocks.append(
            format_table([axis] + list(result.schedulers), rows)
        )
    return "\n\n".join(blocks)

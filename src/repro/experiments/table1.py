"""Table I and the in-text Fig. 1 makespan comparison."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import make_scheduler
from repro.core.hdlts import HDLTS
from repro.core.trace import TraceStep
from repro.workflows.paper_example import paper_example_graph

__all__ = ["table1_trace", "fig1_makespans", "PAPER_FIG1_MAKESPANS"]

#: the paper's published makespans on the Fig. 1 example (Section IV text)
PAPER_FIG1_MAKESPANS: Dict[str, float] = {
    "HDLTS": 73,
    "HEFT": 80,
    "PETS": 77,
    "PEFT": 86,
    "SDBATS": 74,
}


def table1_trace() -> List[TraceStep]:
    """Reproduce the Table I step-by-step HDLTS trace."""
    scheduler = HDLTS(record_trace=True)
    result = scheduler.run(paper_example_graph())
    assert result.trace is not None
    return result.trace


def fig1_makespans(
    schedulers: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Makespan of each algorithm on the Fig. 1 graph (measured)."""
    names = list(schedulers) if schedulers else list(PAPER_FIG1_MAKESPANS)
    graph = paper_example_graph()
    return {name: make_scheduler(name).run(graph).makespan for name in names}

"""One :class:`SweepDefinition` per figure of the paper's evaluation.

Where the paper fixes a parameter, we fix it to the published value
(Montage: 5 CPUs for the CCR sweep, CCR=3 for every efficiency-vs-CPU
sweep, FFT efficiency at m=16, Montage sizes 50 and 100).  Where the
paper is silent we use the Table II midpoint defaults -- v=100, alpha=1,
density=3, CCR=1, 4 CPUs, W_dag=50, beta=1 -- and record that choice in
EXPERIMENTS.md.

``fig3`` defaults to task sizes up to 1000; pass ``full=True`` to include
the paper's 5000/10000-task points (minutes of pure-Python runtime).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.harness import SweepDefinition
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.workflows.fft import fft_topology
from repro.workflows.molecular import molecular_dynamics_topology
from repro.workflows.montage import montage_topology
from repro.workflows.topology import realize_topology

__all__ = ["FIGURES", "get_figure", "list_figures"]

# Table II midpoint defaults (see module docstring).  ``single_entry``:
# the paper's worked example and its entry-duplication pillar presume a
# real entry task; random graphs folded under a zero-cost pseudo entry
# would make Algorithm 1 a no-op, so the random-workflow figures draw
# single-entry graphs (EXPERIMENTS.md discusses the multi-entry variant).
_BASE = GeneratorConfig(single_entry=True)
_EFFICIENCY_CCR = 3.0  # the paper pins CCR=3 for efficiency-vs-CPUs sweeps


# ----------------------------------------------------------------------
# random-workflow figures (Section V-B)
# ----------------------------------------------------------------------
def _fig2() -> SweepDefinition:
    def make(ccr, rng):
        return generate_random_graph(_BASE.with_(ccr=float(ccr)), rng)

    return SweepDefinition(
        key="fig2",
        title="Average SLR of random application workflows vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        make_graph=make,
        description="v=100, alpha=1, density=3, 4 CPUs, W_dag=50, beta=1, single entry",
    )


def _fig3(full: bool = False) -> SweepDefinition:
    sizes = (100, 200, 300, 400, 500, 1000)
    if full:
        sizes = sizes + (5000, 10000)

    def make(v, rng):
        return generate_random_graph(_BASE.with_(v=int(v)), rng)

    return SweepDefinition(
        key="fig3",
        title="Average SLR of random application workflows vs task size",
        x_label="tasks",
        x_values=sizes,
        metric="slr",
        make_graph=make,
        description="alpha=1, density=3, CCR=1, 4 CPUs, single entry (full=True adds 5000/10000)",
    )


def _fig4() -> SweepDefinition:
    def make(n_procs, rng):
        return generate_random_graph(_BASE.with_(n_procs=int(n_procs)), rng)

    return SweepDefinition(
        key="fig4",
        title="Efficiency of random application workflows vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        make_graph=make,
        description="v=100, alpha=1, density=3, CCR=1, W_dag=50, beta=1, single entry",
    )


# ----------------------------------------------------------------------
# FFT figures (Section V-C.1)
# ----------------------------------------------------------------------
def _fft_graph(m: int, n_procs: int, ccr: float, rng: np.random.Generator):
    return realize_topology(
        fft_topology(m), n_procs, rng=rng, ccr=ccr, beta=1.0, w_dag=50.0
    )


def _fig6() -> SweepDefinition:
    return SweepDefinition(
        key="fig6",
        title="Average SLR of FFT workflows vs input points",
        x_label="points",
        x_values=(4, 8, 16, 32),
        metric="slr",
        make_graph=lambda m, rng: _fft_graph(int(m), 4, 1.0, rng),
        description="FFT m=4..32 (15..223 tasks), CCR=1, 4 CPUs",
    )


def _fig7() -> SweepDefinition:
    return SweepDefinition(
        key="fig7",
        title="Average SLR of FFT workflows vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        make_graph=lambda ccr, rng: _fft_graph(16, 4, float(ccr), rng),
        description="FFT m=16 (95 tasks), 4 CPUs",
    )


def _fig8() -> SweepDefinition:
    return SweepDefinition(
        key="fig8",
        title="Efficiency of FFT workflows vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        make_graph=lambda p, rng: _fft_graph(16, int(p), _EFFICIENCY_CCR, rng),
        description="FFT m=16 (the paper's choice), CCR=3",
    )


# ----------------------------------------------------------------------
# Montage figures (Section V-C.2)
# ----------------------------------------------------------------------
_MONTAGE_SIZES = (50, 100)  # the paper evaluates both fixed structures


def _montage_graph(size: int, n_procs: int, ccr: float, rng):
    return realize_topology(
        montage_topology(size), n_procs, rng=rng, ccr=ccr, beta=1.0, w_dag=50.0
    )


def _fig10() -> SweepDefinition:
    def make(ccr, rng):
        # alternate between the 50- and 100-node structures so the
        # average covers both, as the paper's text describes
        size = _MONTAGE_SIZES[int(rng.integers(len(_MONTAGE_SIZES)))]
        return _montage_graph(size, 5, float(ccr), rng)

    return SweepDefinition(
        key="fig10",
        title="Average SLR of Montage workflows vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        make_graph=make,
        description="Montage 50/100 nodes, 5 CPUs (paper's setting)",
    )


def _fig11() -> SweepDefinition:
    def make(p, rng):
        size = _MONTAGE_SIZES[int(rng.integers(len(_MONTAGE_SIZES)))]
        return _montage_graph(size, int(p), _EFFICIENCY_CCR, rng)

    return SweepDefinition(
        key="fig11",
        title="Efficiency of Montage workflows vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        make_graph=make,
        description="Montage 50/100 nodes, CCR=3 (paper's setting)",
    )


# ----------------------------------------------------------------------
# Molecular-dynamics figures (Section V-C.3)
# ----------------------------------------------------------------------
def _md_graph(n_procs: int, ccr: float, rng):
    return realize_topology(
        molecular_dynamics_topology(),
        n_procs,
        rng=rng,
        ccr=ccr,
        beta=1.0,
        w_dag=50.0,
    )


def _fig13() -> SweepDefinition:
    return SweepDefinition(
        key="fig13",
        title="Average SLR of Molecular Dynamics workflow vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        make_graph=lambda ccr, rng: _md_graph(4, float(ccr), rng),
        description="fixed 41-task MD graph, 4 CPUs",
    )


def _fig14() -> SweepDefinition:
    return SweepDefinition(
        key="fig14",
        title="Efficiency of Molecular Dynamics workflow vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        make_graph=lambda p, rng: _md_graph(int(p), _EFFICIENCY_CCR, rng),
        description="fixed 41-task MD graph, CCR=3 (paper's setting)",
    )


FIGURES: Dict[str, SweepDefinition] = {
    d.key: d
    for d in (
        _fig2(),
        _fig3(),
        _fig4(),
        _fig6(),
        _fig7(),
        _fig8(),
        _fig10(),
        _fig11(),
        _fig13(),
        _fig14(),
    )
}


def get_figure(key: str, **kwargs) -> SweepDefinition:
    """Fetch a figure definition; ``fig3`` accepts ``full=True``."""
    if key == "fig3" and kwargs.pop("full", False):
        return _fig3(full=True)
    if kwargs:
        raise TypeError(f"unexpected options {sorted(kwargs)} for {key}")
    try:
        return FIGURES[key]
    except KeyError:
        raise KeyError(
            f"unknown figure {key!r}; known: {', '.join(FIGURES)}"
        ) from None


def list_figures() -> List[str]:
    """Keys of every defined figure (fig2 .. fig14)."""
    return list(FIGURES)

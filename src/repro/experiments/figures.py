"""One :class:`SweepDefinition` per figure of the paper's evaluation.

Where the paper fixes a parameter, we fix it to the published value
(Montage: 5 CPUs for the CCR sweep, CCR=3 for every efficiency-vs-CPU
sweep, FFT efficiency at m=16, Montage sizes 50 and 100).  Where the
paper is silent we use the Table II midpoint defaults -- v=100, alpha=1,
density=3, CCR=1, 4 CPUs, W_dag=50, beta=1 -- and record that choice in
EXPERIMENTS.md.

Every figure's graph factory is a declarative
:class:`~repro.experiments.graphspec.GraphSpec` (registered factory
name + parameters), not a closure: definitions pickle, ship to
``spawn``/``forkserver`` workers, and serialize into run manifests --
while building graphs bit-identical to the original closures.

``fig3`` defaults to task sizes up to 1000; pass ``full=True`` to include
the paper's 5000/10000-task points (minutes of pure-Python runtime).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.graphspec import GraphSpec
from repro.experiments.harness import SweepDefinition

__all__ = ["FIGURES", "get_figure", "list_figures"]

# Table II midpoint defaults ride on the factories' GeneratorConfig
# defaults.  ``single_entry``: the paper's worked example and its
# entry-duplication pillar presume a real entry task; random graphs
# folded under a zero-cost pseudo entry would make Algorithm 1 a no-op,
# so the random-workflow figures draw single-entry graphs
# (EXPERIMENTS.md discusses the multi-entry variant).
_RANDOM_BASE = {"single_entry": True}
_EFFICIENCY_CCR = 3.0  # the paper pins CCR=3 for efficiency-vs-CPUs sweeps


# ----------------------------------------------------------------------
# random-workflow figures (Section V-B)
# ----------------------------------------------------------------------
def _fig2() -> SweepDefinition:
    return SweepDefinition(
        key="fig2",
        title="Average SLR of random application workflows vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        graph=GraphSpec("random", {"axis": "ccr", **_RANDOM_BASE}),
        description="v=100, alpha=1, density=3, 4 CPUs, W_dag=50, beta=1, single entry",
    )


def _fig3(full: bool = False) -> SweepDefinition:
    sizes = (100, 200, 300, 400, 500, 1000)
    if full:
        sizes = sizes + (5000, 10000)

    return SweepDefinition(
        key="fig3",
        title="Average SLR of random application workflows vs task size",
        x_label="tasks",
        x_values=sizes,
        metric="slr",
        graph=GraphSpec("random", {"axis": "v", **_RANDOM_BASE}),
        description="alpha=1, density=3, CCR=1, 4 CPUs, single entry (full=True adds 5000/10000)",
    )


def _fig4() -> SweepDefinition:
    return SweepDefinition(
        key="fig4",
        title="Efficiency of random application workflows vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        graph=GraphSpec("random", {"axis": "n_procs", **_RANDOM_BASE}),
        description="v=100, alpha=1, density=3, CCR=1, W_dag=50, beta=1, single entry",
    )


# ----------------------------------------------------------------------
# FFT figures (Section V-C.1)
# ----------------------------------------------------------------------
def _fig6() -> SweepDefinition:
    return SweepDefinition(
        key="fig6",
        title="Average SLR of FFT workflows vs input points",
        x_label="points",
        x_values=(4, 8, 16, 32),
        metric="slr",
        graph=GraphSpec("fft", {"axis": "m", "n_procs": 4, "ccr": 1.0}),
        description="FFT m=4..32 (15..223 tasks), CCR=1, 4 CPUs",
    )


def _fig7() -> SweepDefinition:
    return SweepDefinition(
        key="fig7",
        title="Average SLR of FFT workflows vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        graph=GraphSpec("fft", {"axis": "ccr", "m": 16, "n_procs": 4}),
        description="FFT m=16 (95 tasks), 4 CPUs",
    )


def _fig8() -> SweepDefinition:
    return SweepDefinition(
        key="fig8",
        title="Efficiency of FFT workflows vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        graph=GraphSpec(
            "fft", {"axis": "n_procs", "m": 16, "ccr": _EFFICIENCY_CCR}
        ),
        description="FFT m=16 (the paper's choice), CCR=3",
    )


# ----------------------------------------------------------------------
# Montage figures (Section V-C.2): the paper evaluates both the 50- and
# 100-node fixed structures, alternating per instance
# ----------------------------------------------------------------------
def _fig10() -> SweepDefinition:
    return SweepDefinition(
        key="fig10",
        title="Average SLR of Montage workflows vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        graph=GraphSpec(
            "montage", {"axis": "ccr", "sizes": [50, 100], "n_procs": 5}
        ),
        description="Montage 50/100 nodes, 5 CPUs (paper's setting)",
    )


def _fig11() -> SweepDefinition:
    return SweepDefinition(
        key="fig11",
        title="Efficiency of Montage workflows vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        graph=GraphSpec(
            "montage",
            {"axis": "n_procs", "sizes": [50, 100], "ccr": _EFFICIENCY_CCR},
        ),
        description="Montage 50/100 nodes, CCR=3 (paper's setting)",
    )


# ----------------------------------------------------------------------
# Molecular-dynamics figures (Section V-C.3)
# ----------------------------------------------------------------------
def _fig13() -> SweepDefinition:
    return SweepDefinition(
        key="fig13",
        title="Average SLR of Molecular Dynamics workflow vs CCR",
        x_label="CCR",
        x_values=(1.0, 2.0, 3.0, 4.0, 5.0),
        metric="slr",
        graph=GraphSpec("molecular", {"axis": "ccr", "n_procs": 4}),
        description="fixed 41-task MD graph, 4 CPUs",
    )


def _fig14() -> SweepDefinition:
    return SweepDefinition(
        key="fig14",
        title="Efficiency of Molecular Dynamics workflow vs number of CPUs",
        x_label="CPUs",
        x_values=(2, 4, 6, 8, 10),
        metric="efficiency",
        graph=GraphSpec(
            "molecular", {"axis": "n_procs", "ccr": _EFFICIENCY_CCR}
        ),
        description="fixed 41-task MD graph, CCR=3 (paper's setting)",
    )


FIGURES: Dict[str, SweepDefinition] = {
    d.key: d
    for d in (
        _fig2(),
        _fig3(),
        _fig4(),
        _fig6(),
        _fig7(),
        _fig8(),
        _fig10(),
        _fig11(),
        _fig13(),
        _fig14(),
    )
}


def get_figure(key: str, **kwargs) -> SweepDefinition:
    """Fetch a figure definition; ``fig3`` accepts ``full=True``."""
    if key == "fig3" and kwargs.pop("full", False):
        return _fig3(full=True)
    if kwargs:
        raise TypeError(f"unexpected options {sorted(kwargs)} for {key}")
    try:
        return FIGURES[key]
    except KeyError:
        raise KeyError(
            f"unknown figure {key!r}; known: {', '.join(FIGURES)}"
        ) from None


def list_figures() -> List[str]:
    """Keys of every defined figure (fig2 .. fig14)."""
    return list(FIGURES)

"""Paired statistical comparison of two schedulers.

The paper (like most of this literature) reports mean SLR differences
without significance testing.  :func:`compare_schedulers` runs two
algorithms on the *same* instances (paired design) and reports the mean
paired difference, a normal-approximation confidence interval, and the
Wilcoxon signed-rank p-value (scipy) -- so "A beats B" claims can carry
a p-value.  Used by the test suite to assert that the reproduced
headline gaps are statistically real, not replication noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.baselines.registry import make_scheduler
from repro.metrics.metrics import slr
from repro.model.task_graph import TaskGraph

__all__ = ["ComparisonResult", "compare_schedulers"]

GraphFactory = Callable[[np.random.Generator], TaskGraph]


@dataclass(frozen=True)
class ComparisonResult:
    """Paired comparison of scheduler ``a`` against scheduler ``b``.

    ``mean_diff`` is mean(metric(a) - metric(b)): negative means ``a``
    achieved the lower (better, for SLR) metric.
    """

    a: str
    b: str
    n: int
    mean_a: float
    mean_b: float
    mean_diff: float
    ci_low: float
    ci_high: float
    p_value: float
    wins_a: int
    wins_b: int
    ties: int

    @property
    def significant(self) -> bool:
        """True at the conventional 5% level."""
        return self.p_value < 0.05

    def format(self) -> str:
        """One-line human-readable verdict."""
        verdict = (
            f"{self.a} better" if self.mean_diff < 0 else f"{self.b} better"
        )
        strength = "significant" if self.significant else "not significant"
        return (
            f"{self.a} vs {self.b} (n={self.n}): "
            f"diff={self.mean_diff:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}], "
            f"p={self.p_value:.2g} -> {verdict}, {strength}"
        )


def compare_schedulers(
    make_graph: GraphFactory,
    a: str,
    b: str,
    reps: int = 30,
    seed: int = 0,
    metric: Optional[Callable[[TaskGraph, float], float]] = None,
) -> ComparisonResult:
    """Run both schedulers on ``reps`` shared instances and test the
    paired difference (Wilcoxon signed-rank; falls back to a sign-test
    style p of 1.0 when every pair ties)."""
    from scipy import stats

    if reps < 5:
        raise ValueError("need at least 5 replications for a meaningful test")
    metric_fn = metric or slr
    scheduler_a, scheduler_b = make_scheduler(a), make_scheduler(b)
    diffs = []
    values_a, values_b = [], []
    for rep in range(reps):
        rng = np.random.default_rng([seed, rep])
        graph = make_graph(rng)
        if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
            graph = graph.normalized()
        va = metric_fn(graph, scheduler_a.run(graph).makespan)
        vb = metric_fn(graph, scheduler_b.run(graph).makespan)
        values_a.append(va)
        values_b.append(vb)
        diffs.append(va - vb)

    arr = np.asarray(diffs)
    mean_diff = float(arr.mean())
    stderr = float(arr.std(ddof=1) / np.sqrt(reps)) if reps > 1 else 0.0
    nonzero = arr[np.abs(arr) > 1e-12]
    if nonzero.size == 0:
        p_value = 1.0
    else:
        p_value = float(stats.wilcoxon(nonzero).pvalue)
    return ComparisonResult(
        a=a,
        b=b,
        n=reps,
        mean_a=float(np.mean(values_a)),
        mean_b=float(np.mean(values_b)),
        mean_diff=mean_diff,
        ci_low=mean_diff - 1.96 * stderr,
        ci_high=mean_diff + 1.96 * stderr,
        p_value=p_value,
        wins_a=int((arr < -1e-12).sum()),
        wins_b=int((arr > 1e-12).sum()),
        ties=int((np.abs(arr) <= 1e-12).sum()),
    )

"""Text rendering of experiment results.

The benches tee these tables into ``bench_output.txt`` /
``EXPERIMENTS.md``; the CLI prints them directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.harness import SweepResult

__all__ = [
    "format_sweep",
    "format_makespans",
    "winners",
    "format_table",
    "profile_document",
    "format_profile",
]

#: schema tag of the ``repro profile --json`` document; bump on any
#: backwards-incompatible change to the layout below
PROFILE_SCHEMA = "repro.profile/1"

#: the headline counters of the profile summary table, in print order
_PROFILE_COUNTERS = (
    ("decisions", "decisions"),
    ("eft_evaluations", "EFT evals"),
    ("insertion_scans", "insertion scans"),
    ("duplication_accepted", "dup accept"),
    ("duplication_rejected", "dup reject"),
)


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Plain fixed-width table."""
    widths = [
        max(len(str(header[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def format_sweep(result: SweepResult, precision: int = 4) -> str:
    """Render a sweep as x-axis rows against scheduler columns."""
    definition = result.definition
    header = [definition.x_label] + list(definition.schedulers) + ["best"]
    rows: List[List[str]] = []
    lower = _lower_is_better(definition)
    for x in definition.x_values:
        stats = result.stats[x]
        means = {name: stats[name].mean for name in definition.schedulers}
        best = (
            min(means, key=means.get) if lower else max(means, key=means.get)
        )
        rows.append(
            [str(x)]
            + [f"{means[name]:.{precision}f}" for name in definition.schedulers]
            + [best]
        )
    title = f"{definition.title}  [{definition.metric}, reps={result.reps}]"
    note = f"  ({definition.description})" if definition.description else ""
    return f"{title}{note}\n" + format_table(header, rows)


def _lower_is_better(definition) -> bool:
    """Is a smaller mean the better one for this definition's metric?

    Scheduler sweeps: SLR and makespan shrink toward better; efficiency
    and speedup grow.  Stream sweeps: everything except throughput and
    utilization (sojourns, queue depth, energy, losses) shrinks.
    """
    if getattr(definition, "stream", None) is not None:
        from repro.stream.metrics import STREAM_HIGHER_IS_BETTER

        return definition.metric not in STREAM_HIGHER_IS_BETTER
    return definition.metric in ("slr", "makespan")


def winners(result: SweepResult) -> Dict[object, str]:
    """Per-x-point winning scheduler (lowest SLR / highest efficiency)."""
    out: Dict[object, str] = {}
    lower_is_better = _lower_is_better(result.definition)
    for x in result.definition.x_values:
        stats = result.stats[x]
        pick = min if lower_is_better else max
        out[x] = pick(stats, key=lambda name: stats[name].mean)
    return out


def profile_document(args, graph, runs: List[Dict]) -> Dict:
    """The schema-stable document behind ``repro profile``.

    ``runs`` carries one entry per requested scheduler with the raw
    metrics snapshot of its instrumented session; this function reduces
    each to the headline counters and the per-phase timing rows.
    """
    doc: Dict[str, object] = {
        "schema": PROFILE_SCHEMA,
        "workflow": {
            "name": args.workflow,
            "n_tasks": graph.n_tasks,
            "n_edges": graph.n_edges,
            "n_procs": graph.n_procs,
            "params": {
                "size": args.size,
                "ccr": args.ccr,
                "beta": args.beta,
                "seed": args.seed,
            },
        },
        "repeat": args.repeat,
        "runs": [],
    }
    for run in runs:
        algorithm = run["algorithm"]
        snapshot = run["metrics"]
        counters = snapshot.get("counters", {})
        timers = snapshot.get("timers", {})
        root = timers.get(algorithm, {"count": 0, "total": 0.0})
        root_total = root["total"] or 0.0
        phases = []
        prefix = f"{algorithm}/"
        for key in sorted(timers):
            if key != algorithm and not key.startswith(prefix):
                continue
            timer = timers[key]
            count = timer["count"]
            phases.append(
                {
                    "phase": key,
                    "calls": count,
                    "total_s": timer["total"],
                    "mean_s": timer["total"] / count if count else 0.0,
                    "share": timer["total"] / root_total if root_total else 0.0,
                }
            )
        doc["runs"].append(
            {
                "scheduler": run["scheduler"],
                "algorithm": algorithm,
                "makespan": run["makespan"],
                "runs_timed": root["count"],
                "wall_s_total": root_total,
                "wall_s_mean": root_total / root["count"] if root["count"] else 0.0,
                "counters": {
                    key: counters.get(f"{algorithm}/{key}", 0)
                    for key, _ in _PROFILE_COUNTERS
                },
                "phases": phases,
            }
        )
    return doc


def format_profile(doc: Dict) -> str:
    """Human rendering of a :func:`profile_document`."""
    workflow = doc["workflow"]
    lines = [
        f"profile: {workflow['name']} workflow -- {workflow['n_tasks']} tasks, "
        f"{workflow['n_edges']} edges, {workflow['n_procs']} CPUs "
        f"({doc['repeat']} instrumented run(s) per scheduler)",
        "",
    ]
    header = ["scheduler", "makespan", "wall ms"] + [
        label for _, label in _PROFILE_COUNTERS
    ]
    rows = []
    for run in doc["runs"]:
        rows.append(
            [
                run["scheduler"],
                f"{run['makespan']:.2f}",
                f"{run['wall_s_mean'] * 1e3:.2f}",
            ]
            + [str(run["counters"][key]) for key, _ in _PROFILE_COUNTERS]
        )
    lines.append(format_table(header, rows))
    for run in doc["runs"]:
        if not run["phases"]:
            continue
        lines += ["", f"{run['scheduler']} phase breakdown:"]
        phase_rows = [
            [
                p["phase"],
                str(p["calls"]),
                f"{p['total_s'] * 1e3:.3f}",
                f"{p['mean_s'] * 1e6:.1f}",
                f"{p['share'] * 100:.1f}%",
            ]
            for p in run["phases"]
        ]
        lines.append(
            format_table(
                ["phase", "calls", "total ms", "mean us", "share"], phase_rows
            )
        )
    return "\n".join(lines)


def format_makespans(
    measured: Dict[str, float], published: Dict[str, float]
) -> str:
    """The in-text Fig. 1 makespan comparison, measured vs paper."""
    header = ["algorithm", "measured", "paper", "delta"]
    rows = []
    for name, value in measured.items():
        paper = published.get(name)
        delta = "" if paper is None else f"{value - paper:+g}"
        rows.append([name, f"{value:g}", "" if paper is None else f"{paper:g}", delta])
    return format_table(header, rows)

"""Text rendering of experiment results.

The benches tee these tables into ``bench_output.txt`` /
``EXPERIMENTS.md``; the CLI prints them directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.harness import SweepResult

__all__ = ["format_sweep", "format_makespans", "winners", "format_table"]


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Plain fixed-width table."""
    widths = [
        max(len(str(header[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def format_sweep(result: SweepResult, precision: int = 4) -> str:
    """Render a sweep as x-axis rows against scheduler columns."""
    definition = result.definition
    header = [definition.x_label] + list(definition.schedulers) + ["best"]
    rows: List[List[str]] = []
    for x in definition.x_values:
        stats = result.stats[x]
        means = {name: stats[name].mean for name in definition.schedulers}
        best = (
            min(means, key=means.get)
            if definition.metric == "slr"
            else max(means, key=means.get)
        )
        rows.append(
            [str(x)]
            + [f"{means[name]:.{precision}f}" for name in definition.schedulers]
            + [best]
        )
    title = f"{definition.title}  [{definition.metric}, reps={result.reps}]"
    note = f"  ({definition.description})" if definition.description else ""
    return f"{title}{note}\n" + format_table(header, rows)


def winners(result: SweepResult) -> Dict[object, str]:
    """Per-x-point winning scheduler (lowest SLR / highest efficiency)."""
    out: Dict[object, str] = {}
    lower_is_better = result.definition.metric in ("slr", "makespan")
    for x in result.definition.x_values:
        stats = result.stats[x]
        pick = min if lower_is_better else max
        out[x] = pick(stats, key=lambda name: stats[name].mean)
    return out


def format_makespans(
    measured: Dict[str, float], published: Dict[str, float]
) -> str:
    """The in-text Fig. 1 makespan comparison, measured vs paper."""
    header = ["algorithm", "measured", "paper", "delta"]
    rows = []
    for name, value in measured.items():
        paper = published.get(name)
        delta = "" if paper is None else f"{value - paper:+g}"
        rows.append([name, f"{value:g}", "" if paper is None else f"{paper:g}", delta])
    return format_table(header, rows)

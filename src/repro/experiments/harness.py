"""Generic sweep runner.

A sweep walks one x-axis (CCR, task count, CPU count, FFT points, ...).
At every point it draws ``reps`` random problem instances and runs the
whole scheduler set on *the same* instance (paired comparison -- the
variance-reduction the paper's 1000-run averages rely on), accumulating
the chosen metric per scheduler with a Welford accumulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.baselines.registry import PAPER_SET, make_scheduler
from repro.core.batch import (
    BATCHABLE,
    CompiledBatch,
    instance_batchable,
    max_lanes,
    run_batch,
    same_shape,
)
from repro.experiments.graphspec import GraphSpec
from repro.metrics.metrics import efficiency, slr
from repro.metrics.stats import RunningStats
from repro.model.compiled import compile_graph, compiled_enabled
from repro.model.task_graph import TaskGraph
from repro.runtime.context import current_context
from repro.schedule.validation import validate_schedule

__all__ = [
    "SweepDefinition",
    "SweepResult",
    "run_sweep",
    "run_single_point",
    "run_replication",
    "run_replications",
]

GraphFactory = Callable[[object, np.random.Generator], TaskGraph]
OptionalFactory = Optional[GraphFactory]

_METRICS: Dict[str, Callable[[TaskGraph, float], float]] = {
    "slr": slr,
    "efficiency": efficiency,
    "makespan": lambda graph, makespan: makespan,
}


@dataclass(frozen=True)
class SweepDefinition:
    """A reproducible experiment: one figure of the paper.

    The graph factory comes in one of two forms: the declarative
    ``graph`` spec (a :class:`~repro.experiments.graphspec.GraphSpec`,
    the preferred form -- the definition then pickles, ships to any
    worker start method, and serializes into run manifests) or a legacy
    ``make_graph`` closure (fork-only, unserializable; kept for ad-hoc
    local sweeps).

    A third form sweeps a *job stream* instead of a single graph: give
    ``stream`` (a :class:`~repro.stream.spec.StreamSpec`) and the x-axis
    drives its injection knob (arrival rate/interval/job count), the
    ``schedulers`` tuple names stream policies, and ``metric`` comes
    from the stream-metric registry (sojourn, throughput, utilization,
    ...).  Everything downstream -- parallel chunking, campaign
    shard/merge, resume ledgers -- is shared.
    """

    key: str
    title: str
    x_label: str
    x_values: Tuple
    metric: str
    make_graph: OptionalFactory = None
    schedulers: Tuple[str, ...] = PAPER_SET
    description: str = ""
    graph: Optional[GraphSpec] = None
    stream: Optional[object] = None  # StreamSpec (lazily imported)

    def __post_init__(self) -> None:
        if not self.x_values:
            raise ValueError("sweep needs at least one x value")
        if self.stream is not None:
            if self.make_graph is not None or self.graph is not None:
                raise ValueError(
                    "a stream definition cannot also carry a graph factory"
                )
            from repro.stream.metrics import STREAM_METRICS

            if self.metric not in STREAM_METRICS:
                raise ValueError(
                    f"stream metric must be one of "
                    f"{sorted(STREAM_METRICS)}, got {self.metric!r}"
                )
            from repro.stream.arena import normalize_policy

            for name in self.schedulers:
                normalize_policy(name)
            return
        if self.metric not in _METRICS:
            raise ValueError(
                f"metric must be one of {sorted(_METRICS)}, got {self.metric!r}"
            )
        if (self.make_graph is None) == (self.graph is None):
            raise ValueError(
                "exactly one of make_graph (closure) or graph (GraphSpec) "
                "must be given"
            )

    def build_graph(self, x, rng: np.random.Generator) -> TaskGraph:
        """Materialize the instance for x point ``x`` from ``rng``."""
        if self.graph is not None:
            return self.graph.build(x, rng)
        return self.make_graph(x, rng)

    @property
    def portable(self) -> bool:
        """True when the definition can be pickled/serialized (spec form)."""
        return self.graph is not None or self.stream is not None

    def to_dict(self) -> Dict[str, object]:
        """Manifest form; requires a declarative spec (graph or stream)."""
        if self.graph is None and self.stream is None:
            raise ValueError(
                f"definition {self.key!r} uses a make_graph closure and "
                "cannot be serialized; give it a GraphSpec instead"
            )
        data = {
            "key": self.key,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "metric": self.metric,
            "schedulers": list(self.schedulers),
            "description": self.description,
        }
        if self.stream is not None:
            data["stream"] = self.stream.to_dict()
        else:
            data["graph"] = self.graph.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepDefinition":
        """Rebuild a definition from :meth:`to_dict` output."""
        stream = None
        graph = None
        if data.get("stream") is not None:
            from repro.stream.spec import StreamSpec

            stream = StreamSpec.from_dict(data["stream"])
        else:
            graph = GraphSpec.from_dict(data["graph"])
        return cls(
            key=str(data["key"]),
            title=str(data["title"]),
            x_label=str(data["x_label"]),
            x_values=tuple(data["x_values"]),
            metric=str(data["metric"]),
            schedulers=tuple(data["schedulers"]),
            description=str(data.get("description", "")),
            graph=graph,
            stream=stream,
        )


@dataclass
class SweepResult:
    """Accumulated sweep output: ``stats[x][scheduler] -> RunningStats``.

    ``metrics`` holds the observability snapshot of the run (counters,
    timers, ... -- see :mod:`repro.obs.metrics`) when profiling was
    enabled; empty otherwise.  The parallel runner fills it by merging
    per-worker snapshots, so counter totals match a serial run exactly.
    """

    definition: SweepDefinition
    reps: int
    seed: int
    stats: Dict[object, Dict[str, RunningStats]] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def mean(self, x, scheduler: str) -> float:
        """Mean metric of ``scheduler`` at x point ``x``."""
        return self.stats[x][scheduler].mean

    def series(self, scheduler: str) -> List[float]:
        """Metric means across the x-axis for one scheduler."""
        return [self.stats[x][scheduler].mean for x in self.definition.x_values]

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat self-describing records for serialization.

        Each row carries the axis name (``x_label``) and the metric next
        to the values, so a row dropped into a CSV/JSON file needs no
        side channel back to the definition.
        """
        rows: List[Dict[str, object]] = []
        for x in self.definition.x_values:
            for name, acc in self.stats[x].items():
                rows.append(
                    {
                        "x": x,
                        "x_label": self.definition.x_label,
                        "metric": self.definition.metric,
                        "scheduler": name,
                        "mean": acc.mean,
                        "std": acc.std,
                        "n": acc.n,
                    }
                )
        return rows


def _build_instance(
    definition: SweepDefinition, x, x_index: int, rep: int, seed: int
) -> TaskGraph:
    """Draw, normalize and (when enabled) compile one instance."""
    rng = np.random.default_rng([seed, x_index, rep])
    graph = definition.build_graph(x, rng)
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        graph = graph.normalized()
    if compiled_enabled():
        # compile the instance once: the CSR arrays and the artifact
        # cache (ranks, OCT, CP bound, ...) are shared by every
        # scheduler in the set and by the metric functions
        compile_graph(graph)
    return graph


def run_replication(
    definition: SweepDefinition,
    x,
    x_index: int,
    rep: int,
    seed: int,
    validate: bool = False,
    graph: Optional[TaskGraph] = None,
) -> Dict[str, float]:
    """One replication of one x point: every scheduler on one instance.

    The RNG stream is keyed by ``(seed, x_index, rep)`` so replications
    are independent and the work can be chunked across processes without
    changing any result.  ``graph`` short-circuits the instance build
    when the caller already materialized it from the same stream (the
    batched dispatcher's scalar fallback).

    Stream definitions take the same protocol: the workload instance is
    materialized from the identical RNG key and every *policy* executes
    the same realization (with ``validate`` running the stream
    invariants instead of the schedule validator).
    """
    bus = obs.get_bus()
    observing = obs.enabled() or bus.active
    started = time.perf_counter() if observing else 0.0
    with obs.span(
        "sweep.replication", figure=definition.key, x=x, rep=rep
    ):
        if definition.stream is not None:
            from repro.stream.spec import run_stream_replication

            values = run_stream_replication(
                definition, x, x_index, rep, seed, validate=validate
            )
        else:
            metric_fn = _METRICS[definition.metric]
            if graph is None:
                graph = _build_instance(definition, x, x_index, rep, seed)
            values = {}
            # keyed by *registry* name so ablation variants of one class
            # coexist
            for name in definition.schedulers:
                result = make_scheduler(name).run(graph)
                if validate:
                    validate_schedule(graph, result.schedule)
                values[name] = metric_fn(graph, result.makespan)
    if observing:
        elapsed = time.perf_counter() - started
        if obs.enabled():
            registry = obs.get_metrics()
            registry.counter("sweep/replications").inc()
            registry.timer("sweep/replication").observe(elapsed)
        if bus.active:
            bus.emit(
                "sweep.replication",
                figure=definition.key,
                x=x,
                rep=rep,
                wall_s=elapsed,
                values=values,
            )
    return values


def _run_batched_group(
    definition: SweepDefinition,
    x,
    members: List[Tuple[int, TaskGraph]],
    batch: CompiledBatch,
    results: List[Optional[Dict[str, float]]],
) -> None:
    """One same-shape group through the batched kernel.

    Batchable schedulers run once over the whole group
    (:func:`repro.core.batch.run_batch`); anything else in the set
    (PETS, reference-only ablations, ...) runs scalar per instance.
    Per-instance metric values land in ``results`` at the caller's
    replication positions, bit-identical to the scalar path.
    """
    metric_fn = _METRICS[definition.metric]
    bus = obs.get_bus()
    with obs.span(
        "sweep.batch",
        figure=definition.key,
        x=x,
        size=batch.n_lanes,
        shape=batch.label,
    ):
        if bus.active:
            bus.emit(
                "sweep.batch",
                figure=definition.key,
                x=x,
                size=batch.n_lanes,
                shape=batch.label,
            )
        makespans: Dict[str, np.ndarray] = {}
        for name in definition.schedulers:
            if name not in BATCHABLE:
                continue
            batched = run_batch(batch, name)
            makespans[name] = batched.makespans
            # the same per-scheduler counter totals the scalar runs
            # would have recorded (no-ops while profiling is off)
            for key, total in batched.counters.items():
                obs.count(key, total)
        if obs.enabled():
            obs.get_metrics().counter("sweep/replications").inc(batch.n_lanes)
        for lane, (idx, graph) in enumerate(members):
            values: Dict[str, float] = {}
            for name in definition.schedulers:
                if name in makespans:
                    makespan = float(makespans[name][lane])
                else:
                    makespan = make_scheduler(name).run(graph).makespan
                values[name] = metric_fn(graph, makespan)
            results[idx] = values


def run_replications(
    definition: SweepDefinition,
    x,
    x_index: int,
    rep_lo: int,
    rep_hi: int,
    seed: int,
    validate: bool = False,
) -> List[Dict[str, float]]:
    """Replications ``[rep_lo, rep_hi)`` of one x point, in rep order.

    Bit-identical to calling :func:`run_replication` per rep.  When the
    active context allows it (``batch="auto"``, fast engine, compiled
    layer on, no validation) the instances are grouped by graph shape
    and same-shape groups run through the batched multi-DAG kernel
    (:mod:`repro.core.batch`); ragged shapes, singleton groups,
    non-batchable schedulers and instances outside the kernel's
    duplication-window gate fall back to the scalar path.
    """
    reps = range(rep_lo, rep_hi)
    ctx = current_context()
    batchable = [n for n in definition.schedulers if n in BATCHABLE]
    if (
        definition.stream is not None
        or ctx.batch != "auto"
        or validate
        or ctx.engine != "fast"
        or not compiled_enabled()
        or rep_hi - rep_lo < 2
        or not batchable
    ):
        return [
            run_replication(definition, x, x_index, rep, seed, validate)
            for rep in reps
        ]
    # materialize the whole chunk up front: replication RNG streams are
    # keyed independently, so build order cannot change any draw
    built = [
        _build_instance(definition, x, x_index, rep, seed) for rep in reps
    ]
    compiled = [compile_graph(graph) for graph in built]
    # group by representative comparison, not by hashing: a chunk's
    # instances almost always share one shape, so comparing each
    # candidate against the group representatives (two int compares
    # plus identity-short-circuited array_equal in same_shape) replaces
    # serializing every instance's successor-CSR bytes per replication
    representatives: List[int] = []
    groups: List[List[int]] = []
    for idx, instance in enumerate(compiled):
        if not instance_batchable(instance, batchable):
            continue
        for members, rep_idx in zip(groups, representatives):
            if same_shape(compiled[rep_idx], instance):
                members.append(idx)
                break
        else:
            representatives.append(idx)
            groups.append([idx])
    results: List[Optional[Dict[str, float]]] = [None] * len(built)
    cap = max_lanes(compiled[0].n_tasks, compiled[0].n_procs)
    for idxs in groups:
        if len(idxs) < 2:
            continue  # singleton shape: batching buys nothing
        for lo in range(0, len(idxs), cap):
            sub = idxs[lo:lo + cap]
            batch = CompiledBatch([compiled[i] for i in sub])
            _run_batched_group(
                definition, x, [(i, built[i]) for i in sub], batch, results
            )
    for idx, rep in enumerate(reps):
        if results[idx] is None:
            results[idx] = run_replication(
                definition, x, x_index, rep, seed, validate, graph=built[idx]
            )
    return results


def run_single_point(
    definition: SweepDefinition,
    x,
    reps: int,
    seed: int = 0,
    x_index: int = 0,
    validate: bool = False,
) -> Dict[str, RunningStats]:
    """All replications of one x point; returns per-scheduler stats."""
    accumulators = {name: RunningStats() for name in definition.schedulers}
    for values in run_replications(
        definition, x, x_index, 0, reps, seed, validate
    ):
        for name, value in values.items():
            accumulators[name].add(value)
    return accumulators


def run_sweep(
    definition: SweepDefinition,
    reps: int = 30,
    seed: int = 0,
    validate: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run a full sweep; deterministic for a given ``seed``.

    With profiling enabled (:func:`repro.obs.enable`) the run's metrics
    land in ``result.metrics`` -- and also merge up into the enclosing
    registry, so a surrounding observability session sees the totals.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    result = SweepResult(definition=definition, reps=reps, seed=seed)
    bus = obs.get_bus()
    with obs.scoped() as registry, obs.span(
        "sweep.run", figure=definition.key, reps=reps
    ):
        for i, x in enumerate(definition.x_values):
            if progress:
                progress(f"{definition.key}: {definition.x_label}={x} ({reps} reps)")
            if bus.active:
                bus.emit(
                    "sweep.point",
                    figure=definition.key,
                    x_label=definition.x_label,
                    x=x,
                    reps=reps,
                )
            with obs.span(
                "sweep.point", figure=definition.key, x=x, reps=reps
            ):
                result.stats[x] = run_single_point(
                    definition, x, reps, seed=seed, x_index=i,
                    validate=validate,
                )
        if registry:
            result.metrics = registry.snapshot()
    return result

"""Process-parallel sweep execution.

Replications are embarrassingly parallel: each draws its own graph from
an independent ``(seed, x_index, rep)`` RNG stream, so chunking them
across worker processes reproduces the serial result *bit for bit* --
the property the test suite asserts.

Figure definitions close over local state (graph factories), which does
not survive pickling; workers therefore receive the definition through
fork-inherited module state (``fork`` is the default start method on
Linux, where this library targets HPC workloads).  On platforms without
``fork`` the runner transparently falls back to serial execution.

Observability: when profiling is enabled (the flag fork-inherits into
the workers) each worker records into its own scoped registry and ships
the snapshot home with its chunk; the parent merges them in submission
order, so every counter total is bit-identical to the serial runner.
The parent additionally times each chunk and publishes the balance of
the decomposition as ``sweep/chunk_wall`` (per-chunk seconds) and
``sweep/chunk_imbalance`` (max/mean chunk wall -- 1.0 is a perfectly
balanced pool).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.experiments.harness import (
    SweepDefinition,
    SweepResult,
    run_replication,
    run_sweep,
)
from repro.metrics.stats import RunningStats
from repro.obs.metrics import MetricsRegistry

__all__ = ["run_sweep_parallel"]

# fork-inherited worker state: set in the parent right before the pool
# is created; never mutated while a pool is alive.
_WORKER_STATE: Dict[str, object] = {}

#: one worker chunk: (x_index, x, rep_lo, rep_hi)
Chunk = Tuple[int, object, int, int]
#: what a worker sends home: (x_index, values, metrics snapshot, wall)
ChunkResult = Tuple[int, List[Dict[str, float]], Dict, float]


def _run_chunk(chunk: Chunk) -> ChunkResult:
    """Worker: run replications [rep_lo, rep_hi) of x point ``x_index``."""
    x_index, x, rep_lo, rep_hi = chunk  # type: ignore[misc]
    definition: SweepDefinition = _WORKER_STATE["definition"]  # type: ignore[assignment]
    seed: int = _WORKER_STATE["seed"]  # type: ignore[assignment]
    validate: bool = _WORKER_STATE["validate"]  # type: ignore[assignment]
    started = time.perf_counter()
    with obs.scoped(merge_up=False) as registry:
        values = [
            run_replication(definition, x, x_index, rep, seed, validate)
            for rep in range(rep_lo, rep_hi)
        ]
        snapshot = registry.snapshot() if registry else {}
    return x_index, values, snapshot, time.perf_counter() - started


def run_sweep_parallel(
    definition: SweepDefinition,
    reps: int = 30,
    seed: int = 0,
    validate: bool = False,
    workers: Optional[int] = None,
    chunk_size: int = 5,
) -> SweepResult:
    """Parallel :func:`~repro.experiments.harness.run_sweep`.

    Identical output to the serial runner for the same ``seed`` --
    including the metrics snapshot: counter totals merge by addition, so
    they match a serial run bit for bit.  ``workers`` defaults to the
    CPU count; ``chunk_size`` balances task granularity against dispatch
    overhead.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return run_sweep(definition, reps, seed, validate)
    n_workers = workers or os.cpu_count() or 1
    if n_workers == 1:
        return run_sweep(definition, reps, seed, validate)

    chunks: List[Chunk] = []
    for i, x in enumerate(definition.x_values):
        for lo in range(0, reps, chunk_size):
            chunks.append((i, x, lo, min(lo + chunk_size, reps)))

    _WORKER_STATE["definition"] = definition
    _WORKER_STATE["seed"] = seed
    _WORKER_STATE["validate"] = validate
    try:
        with context.Pool(processes=n_workers) as pool:
            results = pool.map(_run_chunk, chunks)
    finally:
        _WORKER_STATE.clear()

    sweep = SweepResult(definition=definition, reps=reps, seed=seed)
    for x in definition.x_values:
        sweep.stats[x] = {
            name: RunningStats() for name in definition.schedulers
        }
    # accumulate in deterministic (x, rep) order for bit-exact means;
    # pool.map preserves submission order, which is already (x, rep)
    by_x: Dict[int, List[Dict[str, float]]] = {}
    merged = MetricsRegistry()
    bus = obs.get_bus()
    for chunk, (x_index, values, snapshot, wall) in zip(chunks, results):
        by_x.setdefault(x_index, []).extend(values)
        if snapshot:
            merged.merge(snapshot)
        if obs.enabled():
            merged.timer("sweep/chunk_wall").observe(wall)
        if bus.active:
            bus.emit(
                "sweep.chunk",
                figure=definition.key,
                x=chunk[1],
                rep_lo=chunk[2],
                rep_hi=chunk[3],
                wall_s=wall,
            )
    for i, x in enumerate(definition.x_values):
        for values in by_x[i]:
            for name, value in values.items():
                sweep.stats[x][name].add(value)

    if obs.enabled():
        chunk_timer = merged.timer("sweep/chunk_wall")
        if chunk_timer.count and chunk_timer.mean > 0.0:
            merged.gauge("sweep/chunk_imbalance").set(
                chunk_timer.max / chunk_timer.mean
            )
        merged.gauge("sweep/workers").set(n_workers)
    if merged:
        sweep.metrics = merged.snapshot()
        # keep an enclosing observability session in the loop, exactly
        # like the serial runner's scoped registry merging up
        obs.get_metrics().merge(sweep.metrics)
    return sweep

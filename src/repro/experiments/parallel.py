"""Process-parallel sweep execution.

Replications are embarrassingly parallel: each draws its own graph from
an independent ``(seed, x_index, rep)`` RNG stream, so chunking them
across worker processes reproduces the serial result *bit for bit* --
the property the test suite asserts.

Figure definitions close over local state (graph factories), which does
not survive pickling; workers therefore receive the definition through
fork-inherited module state (``fork`` is the default start method on
Linux, where this library targets HPC workloads).  On platforms without
``fork`` the runner transparently falls back to serial execution.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (
    SweepDefinition,
    SweepResult,
    run_replication,
    run_sweep,
)
from repro.metrics.stats import RunningStats

__all__ = ["run_sweep_parallel"]

# fork-inherited worker state: set in the parent right before the pool
# is created; never mutated while a pool is alive.
_WORKER_STATE: Dict[str, object] = {}


def _run_chunk(
    chunk: Tuple[int, object, int, int]
) -> Tuple[int, List[Dict[str, float]]]:
    """Worker: run replications [rep_lo, rep_hi) of x point ``x_index``."""
    x_index, x, rep_lo, rep_hi = chunk  # type: ignore[misc]
    definition: SweepDefinition = _WORKER_STATE["definition"]  # type: ignore[assignment]
    seed: int = _WORKER_STATE["seed"]  # type: ignore[assignment]
    validate: bool = _WORKER_STATE["validate"]  # type: ignore[assignment]
    values = [
        run_replication(definition, x, x_index, rep, seed, validate)
        for rep in range(rep_lo, rep_hi)
    ]
    return x_index, values


def run_sweep_parallel(
    definition: SweepDefinition,
    reps: int = 30,
    seed: int = 0,
    validate: bool = False,
    workers: Optional[int] = None,
    chunk_size: int = 5,
) -> SweepResult:
    """Parallel :func:`~repro.experiments.harness.run_sweep`.

    Identical output to the serial runner for the same ``seed``.
    ``workers`` defaults to the CPU count; ``chunk_size`` balances task
    granularity against dispatch overhead.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return run_sweep(definition, reps, seed, validate)
    n_workers = workers or os.cpu_count() or 1
    if n_workers == 1:
        return run_sweep(definition, reps, seed, validate)

    chunks = []
    for i, x in enumerate(definition.x_values):
        for lo in range(0, reps, chunk_size):
            chunks.append((i, x, lo, min(lo + chunk_size, reps)))

    _WORKER_STATE["definition"] = definition
    _WORKER_STATE["seed"] = seed
    _WORKER_STATE["validate"] = validate
    try:
        with context.Pool(processes=n_workers) as pool:
            results = pool.map(_run_chunk, chunks)
    finally:
        _WORKER_STATE.clear()

    sweep = SweepResult(definition=definition, reps=reps, seed=seed)
    for x in definition.x_values:
        sweep.stats[x] = {
            name: RunningStats() for name in definition.schedulers
        }
    # accumulate in deterministic (x, rep) order for bit-exact means
    results.sort(key=lambda item: item[0])
    by_x: Dict[int, List[Dict[str, float]]] = {}
    for x_index, values in results:
        by_x.setdefault(x_index, []).extend(values)
    for i, x in enumerate(definition.x_values):
        for values in by_x[i]:
            for name, value in values.items():
                sweep.stats[x][name].add(value)
    return sweep

"""Process-parallel sweep execution.

Replications are embarrassingly parallel: each draws its own graph from
an independent ``(seed, x_index, rep)`` RNG stream, so chunking them
across worker processes reproduces the serial result *bit for bit* --
the property the test suite asserts.

Figure definitions close over local state (graph factories), which does
not survive pickling; workers therefore receive definitions through
fork-inherited module state (``fork`` is the default start method on
Linux, where this library targets HPC workloads).  On platforms without
``fork`` the runner transparently falls back to serial execution.

Results stream home through ``imap``: chunks are submitted in ``(x,
rep)`` order and ``imap`` yields them in submission order, so the
parent folds each chunk into the Welford accumulators the moment it
arrives -- identical accumulation order to the serial runner (hence
bit-identical means/stds), without first materializing every chunk
result like ``pool.map`` did.

:func:`sweep_pool` forks one worker pool usable across *several* sweeps
(``repro all-figures --workers N`` runs every figure through a single
pool instead of forking per figure).  All definitions must be
registered before the fork so the workers inherit them.

Observability: when profiling is enabled (the flag fork-inherits into
the workers) each worker records into its own scoped registry and ships
the snapshot home with its chunk; the parent merges them in submission
order, so every counter total is bit-identical to the serial runner.
The parent additionally times each chunk and publishes the balance of
the decomposition as ``sweep/chunk_wall`` (per-chunk seconds) and
``sweep/chunk_imbalance`` (max/mean chunk wall -- 1.0 is a perfectly
balanced pool), alongside the ``sweep/workers`` and
``sweep/chunk_size`` gauges describing the decomposition itself.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.experiments.harness import (
    SweepDefinition,
    SweepResult,
    run_replication,
    run_sweep,
)
from repro.metrics.stats import RunningStats
from repro.obs.metrics import MetricsRegistry

__all__ = ["run_sweep_parallel", "sweep_pool"]

# fork-inherited worker state: set in the parent right before the pool
# is created; never mutated while a pool is alive.
_WORKER_STATE: Dict[str, object] = {}

#: one worker chunk:
#: (definition key, x_index, x, rep_lo, rep_hi, seed, validate)
Chunk = Tuple[str, int, object, int, int, int, bool]
#: what a worker sends home: (x_index, values, metrics snapshot, wall)
ChunkResult = Tuple[int, List[Dict[str, float]], Dict, float]


def _run_chunk(chunk: Chunk) -> ChunkResult:
    """Worker: run replications [rep_lo, rep_hi) of x point ``x_index``."""
    key, x_index, x, rep_lo, rep_hi, seed, validate = chunk
    definitions: Dict[str, SweepDefinition] = _WORKER_STATE["definitions"]  # type: ignore[assignment]
    definition = definitions[key]
    started = time.perf_counter()
    with obs.scoped(merge_up=False) as registry:
        values = [
            run_replication(definition, x, x_index, rep, seed, validate)
            for rep in range(rep_lo, rep_hi)
        ]
        snapshot = registry.snapshot() if registry else {}
    return x_index, values, snapshot, time.perf_counter() - started


@contextmanager
def sweep_pool(
    definitions: Iterable[SweepDefinition], workers: Optional[int] = None
) -> Iterator[multiprocessing.pool.Pool]:
    """Fork one worker pool shared by several :func:`run_sweep_parallel` calls.

    Every definition that will run on the pool must be passed here:
    workers inherit them through the fork, so definitions registered
    after the pool exists are invisible to the workers.  Raises
    ``ValueError`` on platforms without the ``fork`` start method.
    """
    context = multiprocessing.get_context("fork")
    n_workers = workers or os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError("workers must be >= 1")
    registry: Dict[str, SweepDefinition] = {}
    for definition in definitions:
        registry[definition.key] = definition
    _WORKER_STATE["definitions"] = registry
    try:
        with context.Pool(processes=n_workers) as pool:
            yield pool
    finally:
        _WORKER_STATE.clear()


def run_sweep_parallel(
    definition: SweepDefinition,
    reps: int = 30,
    seed: int = 0,
    validate: bool = False,
    workers: Optional[int] = None,
    chunk_size: int = 5,
    pool: Optional[multiprocessing.pool.Pool] = None,
) -> SweepResult:
    """Parallel :func:`~repro.experiments.harness.run_sweep`.

    Identical output to the serial runner for the same ``seed`` --
    including the metrics snapshot: counter totals merge by addition, so
    they match a serial run bit for bit.  ``workers`` defaults to the
    CPU count; ``chunk_size`` balances task granularity against dispatch
    overhead.  Pass a ``pool`` from :func:`sweep_pool` to reuse one set
    of forked workers across several sweeps (the definition must have
    been registered with that pool).
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if pool is not None:
        registered = _WORKER_STATE.get("definitions", {})
        if definition.key not in registered:  # type: ignore[operator]
            raise ValueError(
                f"definition {definition.key!r} is not registered with the "
                "shared pool; pass it to sweep_pool()"
            )
        n_workers = getattr(pool, "_processes", None) or os.cpu_count() or 1
        return _collect(
            definition, pool, n_workers, reps, seed, validate, chunk_size
        )
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return run_sweep(definition, reps, seed, validate)
    n_workers = workers or os.cpu_count() or 1
    if n_workers == 1:
        return run_sweep(definition, reps, seed, validate)
    with sweep_pool([definition], n_workers) as own_pool:
        return _collect(
            definition, own_pool, n_workers, reps, seed, validate, chunk_size
        )


def _collect(
    definition: SweepDefinition,
    pool,
    n_workers: int,
    reps: int,
    seed: int,
    validate: bool,
    chunk_size: int,
) -> SweepResult:
    """Submit the chunks and stream-accumulate results in order."""
    chunks: List[Chunk] = []
    for i, x in enumerate(definition.x_values):
        for lo in range(0, reps, chunk_size):
            chunks.append(
                (definition.key, i, x, lo, min(lo + chunk_size, reps), seed, validate)
            )

    sweep = SweepResult(definition=definition, reps=reps, seed=seed)
    for x in definition.x_values:
        sweep.stats[x] = {
            name: RunningStats() for name in definition.schedulers
        }
    merged = MetricsRegistry()
    bus = obs.get_bus()
    # chunks are submitted in (x, rep) order and imap yields them in
    # submission order: accumulating as results stream home therefore
    # feeds the Welford accumulators in exactly the serial order.
    for chunk, (x_index, values, snapshot, wall) in zip(
        chunks, pool.imap(_run_chunk, chunks)
    ):
        accumulators = sweep.stats[chunk[2]]
        for rep_values in values:
            for name, value in rep_values.items():
                accumulators[name].add(value)
        if snapshot:
            merged.merge(snapshot)
        if obs.enabled():
            merged.timer("sweep/chunk_wall").observe(wall)
        if bus.active:
            bus.emit(
                "sweep.chunk",
                figure=definition.key,
                x=chunk[2],
                rep_lo=chunk[3],
                rep_hi=chunk[4],
                wall_s=wall,
            )

    if obs.enabled():
        chunk_timer = merged.timer("sweep/chunk_wall")
        if chunk_timer.count and chunk_timer.mean > 0.0:
            merged.gauge("sweep/chunk_imbalance").set(
                chunk_timer.max / chunk_timer.mean
            )
        merged.gauge("sweep/workers").set(n_workers)
        merged.gauge("sweep/chunk_size").set(chunk_size)
    if merged:
        sweep.metrics = merged.snapshot()
        # keep an enclosing observability session in the loop, exactly
        # like the serial runner's scoped registry merging up
        obs.get_metrics().merge(sweep.metrics)
    return sweep

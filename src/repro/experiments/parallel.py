"""Process-parallel sweep execution.

Replications are embarrassingly parallel: each draws its own graph from
an independent ``(seed, x_index, rep)`` RNG stream, so chunking them
across worker processes reproduces the serial result *bit for bit* --
the property the test suite asserts.

Workers are configured explicitly, not by fork inheritance: the pool
initializer ships the active :class:`~repro.runtime.context.RunContext`
(with the parent's *effective* observability state folded in) plus the
sweep definitions to every worker, which :func:`~repro.runtime.context
.adopt`\\ s the context as its own.  Definitions built from declarative
:class:`~repro.experiments.graphspec.GraphSpec`\\ s pickle, so the pool
runs under any start method -- ``fork``, ``spawn`` or ``forkserver`` --
with bit-identical results.  Legacy closure-based definitions still
work, but only under ``fork`` (the initializer arguments then travel
through inherited memory instead of pickling).

Results stream home through ``imap``: chunks are submitted in ``(x,
rep)`` order and ``imap`` yields them in submission order, so the
parent folds each chunk into the Welford accumulators the moment it
arrives -- identical accumulation order to the serial runner (hence
bit-identical means/stds), without first materializing every chunk
result like ``pool.map`` did.

Checkpoint/resume: pass an :class:`~repro.runtime.session
.ExperimentSession` and every completed chunk is appended durably to
the session's ledger; on a later run the ledger's chunks are *replayed*
from disk in submission order, interleaved with freshly computed ones,
so a killed sweep resumes bit-identically (JSON floats round-trip
exactly).

:func:`sweep_pool` creates one worker pool usable across *several*
sweeps (``repro all-figures --workers N`` runs every figure through a
single pool instead of spawning per figure).  All definitions must be
passed at pool creation so the initializer can ship them.

Observability: when profiling is enabled each worker records into its
own scoped registry and ships the snapshot home with its chunk; the
parent merges them in submission order, so every counter total is
bit-identical to the serial runner.  The parent additionally times each
chunk and publishes the balance of the decomposition as
``sweep/chunk_wall`` (per-chunk seconds) and ``sweep/chunk_imbalance``
(max/mean chunk wall -- 1.0 is a perfectly balanced pool), alongside
the ``sweep/workers`` and ``sweep/chunk_size`` gauges describing the
decomposition itself.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.experiments.harness import (
    SweepDefinition,
    SweepResult,
    run_replications,
    run_sweep,
)
from repro.metrics.stats import RunningStats
from repro.obs.metrics import MetricsRegistry
from repro.runtime.context import (
    START_METHODS,
    RunContext,
    adopt,
    current_context,
)
from repro.runtime.session import ExperimentSession
from repro.runtime.telemetry import HeartbeatWriter

__all__ = ["chunk_plan", "run_sweep_parallel", "sweep_pool"]

# worker-process state, installed by the pool initializer (never by
# fork inheritance): the adopted context, the definition registry, and
# (when the context names a telemetry directory) this worker's
# heartbeat writer and span sink.
_WORKER_STATE: Dict[str, object] = {}

#: one worker chunk:
#: (definition key, x_index, x, rep_lo, rep_hi, seed, validate)
Chunk = Tuple[str, int, object, int, int, int, bool]
#: what a worker sends home: (x_index, values, metrics snapshot, wall)
ChunkResult = Tuple[int, List[Dict[str, float]], Dict, float]

#: progress callback: (completed chunks, total chunks)
ProgressFn = Callable[[int, int], None]


def _init_worker(
    context: RunContext, definitions: List[SweepDefinition]
) -> None:
    """Pool initializer: adopt the shipped context, register definitions.

    Under ``fork`` the arguments arrive through inherited memory (so
    closure-based definitions still work); under ``spawn``/
    ``forkserver`` they are pickled, which is why portable definitions
    carry a :class:`~repro.experiments.graphspec.GraphSpec`.

    When the context names a telemetry directory the worker writes a
    heartbeat file there after every chunk, and -- when tracing is on --
    streams its ``span.end`` events into ``spans-<pid>.jsonl`` in the
    same directory (flushed per chunk: ``Pool.terminate`` must not cost
    more than the chunk in flight).
    """
    adopt(context)
    _WORKER_STATE["definitions"] = {d.key: d for d in definitions}
    _WORKER_STATE.pop("heartbeat", None)
    _WORKER_STATE.pop("span_sink", None)
    if context.telemetry:
        heartbeat = HeartbeatWriter(context.telemetry, role="worker")
        heartbeat.beat(force=True)
        _WORKER_STATE["heartbeat"] = heartbeat
        if context.trace:
            sink = obs.JsonlSink(
                os.path.join(
                    context.telemetry, f"spans-{os.getpid()}.jsonl"
                )
            )
            obs.get_bus().subscribe(sink, topics=[obs.SPAN_TOPIC])
            _WORKER_STATE["span_sink"] = sink


def _execute_chunk(definition: SweepDefinition, chunk: Chunk) -> ChunkResult:
    """Run replications [rep_lo, rep_hi) of x point ``x_index``."""
    _key, x_index, x, rep_lo, rep_hi, seed, validate = chunk
    started = time.perf_counter()
    with obs.scoped(merge_up=False) as registry, obs.span(
        "sweep.chunk", figure=_key, x=x, rep_lo=rep_lo, rep_hi=rep_hi
    ):
        values = run_replications(
            definition, x, x_index, rep_lo, rep_hi, seed, validate
        )
        snapshot = registry.snapshot() if registry else {}
    return x_index, values, snapshot, time.perf_counter() - started


def _run_chunk(chunk: Chunk) -> ChunkResult:
    """Worker entry point: resolve the definition, run the chunk."""
    definitions: Dict[str, SweepDefinition] = _WORKER_STATE["definitions"]  # type: ignore[assignment]
    result = _execute_chunk(definitions[chunk[0]], chunk)
    heartbeat = _WORKER_STATE.get("heartbeat")
    if heartbeat is not None:
        heartbeat.bump(last_event_ts=time.time())
    sink = _WORKER_STATE.get("span_sink")
    if sink is not None:
        sink.flush()
    return result


def _resolve_start_method(
    start_method: Optional[str], context: RunContext
) -> str:
    """Pick the pool start method: explicit > context > fork > spawn > serial.

    An *explicit* ``start_method`` argument is strict: unknown names and
    platform-unsupported methods raise.  The context's ``start_method``
    is a default: if the platform lacks it, resolution falls through the
    auto chain (fork, then spawn, then serial in-process execution).
    """
    if start_method is not None:
        if start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS}, "
                f"got {start_method!r}"
            )
        if start_method != "serial":
            multiprocessing.get_context(start_method)  # raises if unsupported
        return start_method
    if context.start_method is not None:
        if context.start_method == "serial":
            return "serial"
        try:
            multiprocessing.get_context(context.start_method)
            return context.start_method
        except ValueError:
            pass  # fall through to the auto chain
    for candidate in ("fork", "spawn"):
        try:
            multiprocessing.get_context(candidate)
        except ValueError:  # pragma: no cover - platform dependent
            continue
        return candidate
    return "serial"


def _default_workers(workers: Optional[int], context: RunContext) -> int:
    """Explicit ``workers`` > a parallel context > the CPU count."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    if context.workers > 1:
        return context.workers
    return os.cpu_count() or 1


@contextmanager
def sweep_pool(
    definitions: Iterable[SweepDefinition],
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    context: Optional[RunContext] = None,
) -> Iterator[multiprocessing.pool.Pool]:
    """One worker pool shared by several :func:`run_sweep_parallel` calls.

    Every definition that will run on the pool must be passed here: the
    pool initializer ships them to the workers, so definitions appearing
    after the pool exists are invisible to it.  ``start_method`` (or
    ``context.start_method``) picks how workers start; under anything
    but ``fork`` every definition must be portable (declarative
    ``graph`` spec, not a closure).  The shipped context is the active
    one with the parent's *effective* observability state folded in, so
    ``obs.enable()`` in the parent still reaches spawn-started workers.
    """
    definitions = list(definitions)
    registry: Dict[str, SweepDefinition] = {
        d.key: d for d in definitions
    }
    ctx = context if context is not None else current_context()
    method = _resolve_start_method(start_method, ctx)
    if method == "serial":
        raise ValueError(
            "start method resolved to 'serial'; a worker pool cannot be "
            "created (run the sweeps through run_sweep_parallel instead)"
        )
    if method != "fork":
        closures = sorted(d.key for d in definitions if not d.portable)
        if closures:
            raise ValueError(
                f"definitions {closures} use make_graph closures, which "
                f"cannot be shipped to {method!r} workers; give them a "
                "GraphSpec or use start_method='fork'"
            )
    n_workers = _default_workers(workers, ctx)
    effective = ctx.with_(
        metrics=obs.enabled(), workers=n_workers, start_method=method,
        trace=obs.tracing(),
    )
    mp_context = multiprocessing.get_context(method)
    with mp_context.Pool(
        processes=n_workers,
        initializer=_init_worker,
        initargs=(effective, definitions),
    ) as pool:
        pool._repro_definitions = registry  # type: ignore[attr-defined]
        yield pool


def run_sweep_parallel(
    definition: SweepDefinition,
    reps: int = 30,
    seed: int = 0,
    validate: bool = False,
    workers: Optional[int] = None,
    chunk_size: int = 5,
    pool: Optional[multiprocessing.pool.Pool] = None,
    start_method: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    session: Optional[ExperimentSession] = None,
) -> SweepResult:
    """Parallel :func:`~repro.experiments.harness.run_sweep`.

    Identical output to the serial runner for the same ``seed`` --
    including the metrics snapshot: counter totals merge by addition, so
    they match a serial run bit for bit.  ``workers`` defaults to the
    active context's worker count (the CPU count when the context says
    serial); ``chunk_size`` balances task granularity against dispatch
    overhead.  Pass a ``pool`` from :func:`sweep_pool` to reuse one set
    of workers across several sweeps (the definition must have been
    registered with that pool).

    ``progress`` is called as ``progress(done, total)`` after every
    completed chunk.  ``session`` makes the run resumable: completed
    chunks are appended durably to the session ledger, and chunks
    already present in the ledger are replayed from disk instead of
    recomputed -- in submission order, so the resumed result is
    bit-identical to an uninterrupted run.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if pool is not None:
        registered = getattr(pool, "_repro_definitions", {})
        if definition.key not in registered:
            raise ValueError(
                f"definition {definition.key!r} is not registered with the "
                "shared pool; pass it to sweep_pool()"
            )
        n_workers = getattr(pool, "_processes", None) or os.cpu_count() or 1
        return _collect(
            definition, pool, n_workers, reps, seed, validate, chunk_size,
            progress=progress, session=session,
        )
    ctx = current_context()
    n_workers = _default_workers(workers, ctx)
    method = _resolve_start_method(start_method, ctx)
    if method == "serial" or n_workers == 1:
        if session is None and progress is None:
            return run_sweep(definition, reps, seed, validate)
        # in-process chunk execution: same chunk decomposition (so the
        # ledger keys line up with any parallel run) without a pool
        return _collect(
            definition, None, 1, reps, seed, validate, chunk_size,
            progress=progress, session=session,
        )
    with sweep_pool(
        [definition], n_workers, start_method=method
    ) as own_pool:
        return _collect(
            definition, own_pool, n_workers, reps, seed, validate, chunk_size,
            progress=progress, session=session,
        )


def chunk_plan(
    definition: SweepDefinition, reps: int, seed: int, validate: bool,
    chunk_size: int,
) -> List[Chunk]:
    """The sweep's chunk decomposition, in submission (= serial) order.

    This is the unit of scheduling everywhere: worker pools submit these
    chunks, the session ledger keys completed work by them, and
    :mod:`repro.experiments.campaign` enumerates its shardable task ids
    from them -- one shared decomposition, so a campaign's tasks line up
    one-to-one with the chunks a checkpointed run would execute.
    """
    chunks: List[Chunk] = []
    for i, x in enumerate(definition.x_values):
        for lo in range(0, reps, chunk_size):
            chunks.append(
                (definition.key, i, x, lo, min(lo + chunk_size, reps), seed, validate)
            )
    return chunks


def _collect(
    definition: SweepDefinition,
    pool,
    n_workers: int,
    reps: int,
    seed: int,
    validate: bool,
    chunk_size: int,
    progress: Optional[ProgressFn] = None,
    session: Optional[ExperimentSession] = None,
) -> SweepResult:
    """Stream-accumulate chunk results (live or ledger-replayed) in order."""
    chunks = chunk_plan(definition, reps, seed, validate, chunk_size)
    completed = (
        session.completed_chunks(definition.key) if session is not None else {}
    )
    live = [c for c in chunks if (c[1], c[3], c[4]) not in completed]

    sweep = SweepResult(definition=definition, reps=reps, seed=seed)
    for x in definition.x_values:
        sweep.stats[x] = {
            name: RunningStats() for name in definition.schedulers
        }
    merged = MetricsRegistry()
    bus = obs.get_bus()
    ctx = current_context()
    heartbeat = (
        HeartbeatWriter(ctx.telemetry, role="main") if ctx.telemetry else None
    )
    if pool is not None:
        live_iter = pool.imap(_run_chunk, live)
    else:
        live_iter = (_execute_chunk(definition, c) for c in live)
    # chunks are submitted in (x, rep) order and imap yields them in
    # submission order; ledger-replayed chunks interleave at exactly the
    # position they were originally submitted.  Accumulating in this
    # order therefore feeds the Welford accumulators in exactly the
    # serial order, live and replayed runs alike.
    done, total = 0, len(chunks)
    with obs.span(
        "sweep.run", figure=definition.key, reps=reps, workers=n_workers
    ):
        for chunk in chunks:
            key = (chunk[1], chunk[3], chunk[4])
            row = completed.get(key)
            replayed = row is not None
            if replayed:
                values, snapshot, wall = (
                    row["values"], row["metrics"], row["wall"]
                )
            else:
                _x_index, values, snapshot, wall = next(live_iter)
            accumulators = sweep.stats[chunk[2]]
            for rep_values in values:
                for name, value in rep_values.items():
                    accumulators[name].add(value)
            if snapshot:
                merged.merge(snapshot)
            if obs.enabled():
                merged.timer("sweep/chunk_wall").observe(wall)
            if session is not None and not replayed:
                # record_chunk emits the chunk's sweep.chunk event itself
                session.record_chunk(
                    definition.key, chunk[1], chunk[2], chunk[3], chunk[4],
                    values, snapshot, wall,
                )
            elif bus.active:
                bus.emit(
                    "sweep.chunk",
                    figure=definition.key,
                    x=chunk[2],
                    rep_lo=chunk[3],
                    rep_hi=chunk[4],
                    wall_s=wall,
                    replayed=replayed,
                )
            done += 1
            if heartbeat is not None:
                heartbeat.bump(last_event_ts=time.time())
            if progress is not None:
                progress(done, total)
    if heartbeat is not None:
        heartbeat.beat(force=True)

    if obs.enabled():
        chunk_timer = merged.timer("sweep/chunk_wall")
        if chunk_timer.count and chunk_timer.mean > 0.0:
            merged.gauge("sweep/chunk_imbalance").set(
                chunk_timer.max / chunk_timer.mean
            )
        merged.gauge("sweep/workers").set(n_workers)
        merged.gauge("sweep/chunk_size").set(chunk_size)
    if merged:
        sweep.metrics = merged.snapshot()
        # keep an enclosing observability session in the loop, exactly
        # like the serial runner's scoped registry merging up
        obs.get_metrics().merge(sweep.metrics)
    return sweep

"""Metrics registry: counters, gauges, timers and streaming histograms.

Names follow a ``scope/metric`` convention (``HDLTS/eft_evaluations``,
``sweep/replication``) so one registry can hold every scheduler's
figures side by side.  A registry serializes to a plain-dict
:meth:`~MetricsRegistry.snapshot` and folds snapshots back in with
:meth:`~MetricsRegistry.merge`, which is how the process-parallel sweep
runner combines per-worker measurements: counts merge by addition, so
counter totals are bit-identical to a serial run regardless of how the
work was chunked.

Registries stack: :func:`scoped` pushes a fresh registry that the
instrumented code writes into, and (by default) merges its content into
the parent when it pops -- so a sweep can own its delta while an outer
CLI session still sees the totals.
"""

from __future__ import annotations

import bisect
import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "scoped",
    "merge_snapshots",
    "format_metrics",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` to the counter."""
        self.value += n


class Gauge:
    """A point-in-time value; merges keep the maximum observed."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Timer:
    """Accumulated wall-clock time: count, total and extrema in seconds."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, seconds: float) -> None:
        """Fold one measured duration into the accumulator."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Average seconds per observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the wall time of its block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)


#: default histogram bucket upper bounds: geometric, micro- to hecto-second
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 3)
)


class Histogram:
    """Streaming histogram over fixed bucket upper bounds.

    Holds per-bucket counts plus count/sum/min/max; never stores the
    samples themselves, so it merges exactly across processes.
    """

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # one bucket per bound plus the overflow bucket
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one sample into the bucket counts."""
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges, timers and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (create on first use) --------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge()
            return g

    def timer(self, name: str) -> Timer:
        """The timer registered under ``name`` (created on first use)."""
        try:
            return self._timers[name]
        except KeyError:
            t = self._timers[name] = Timer()
            return t

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        """The histogram under ``name`` (created with ``bounds`` on first use)."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(bounds)
            return h

    def __bool__(self) -> bool:
        """True once anything has been registered."""
        return bool(
            self._counters or self._gauges or self._timers or self._histograms
        )

    # -- serialization ---------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict form: picklable, JSON-able, mergeable."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "timers": {
                k: {
                    "count": t.count,
                    "total": t.total,
                    "min": t.min if t.count else 0.0,
                    "max": t.max if t.count else 0.0,
                }
                for k, t in sorted(self._timers.items())
            },
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "buckets": list(h.buckets),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and timer/histogram counts add; extrema combine; gauges
        keep the maximum (the only order-independent choice).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = max(gauge.value, float(value))
        for name, data in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            if not data["count"]:
                continue
            timer.count += int(data["count"])
            timer.total += float(data["total"])
            timer.min = min(timer.min, float(data["min"]))
            timer.max = max(timer.max, float(data["max"]))
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, data["bounds"])
            if tuple(data["bounds"]) != hist.bounds:
                raise ValueError(
                    f"histogram {name!r}: incompatible bucket bounds"
                )
            for i, n in enumerate(data["buckets"]):
                hist.buckets[i] += int(n)
            if data["count"]:
                hist.count += int(data["count"])
                hist.sum += float(data["sum"])
                hist.min = min(hist.min, float(data["min"]))
                hist.max = max(hist.max, float(data["max"]))

    def clear(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()


def merge_snapshots(*snapshots: Dict[str, Dict[str, object]]) -> Dict:
    """Pure merge of snapshot dicts (used by the parallel sweep runner)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot()


# -- the registry stack -------------------------------------------------
_STACK: List[MetricsRegistry] = [MetricsRegistry()]


def get_metrics() -> MetricsRegistry:
    """The registry instrumented code currently writes into."""
    return _STACK[-1]


@contextmanager
def scoped(merge_up: bool = True) -> Iterator[MetricsRegistry]:
    """Push a fresh registry for the duration of the block.

    With ``merge_up`` (the default) the scoped registry's content is
    folded into the enclosing registry on exit, so outer observers still
    see the totals while the block owns its own delta.
    """
    registry = MetricsRegistry()
    _STACK.append(registry)
    try:
        yield registry
    finally:
        _STACK.pop()
        if merge_up:
            _STACK[-1].merge(registry.snapshot())


# -- rendering ----------------------------------------------------------
def format_metrics(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Human-readable rendering of a snapshot (CLI ``--metrics``)."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        width = max(len(k) for k in counters)
        lines.append("counters:")
        lines.extend(f"  {k.ljust(width)}  {v}" for k, v in counters.items())
    gauges = snapshot.get("gauges", {})
    if gauges:
        width = max(len(k) for k in gauges)
        lines.append("gauges:")
        lines.extend(f"  {k.ljust(width)}  {v:g}" for k, v in gauges.items())
    timers = snapshot.get("timers", {})
    if timers:
        width = max(len(k) for k in timers)
        lines.append("timers:")
        for k, t in timers.items():
            count = t["count"]
            mean_ms = (t["total"] / count * 1e3) if count else 0.0
            lines.append(
                f"  {k.ljust(width)}  n={count}  total={t['total'] * 1e3:.2f}ms"
                f"  mean={mean_ms:.3f}ms  max={t['max'] * 1e3:.3f}ms"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        width = max(len(k) for k in histograms)
        lines.append("histograms:")
        for k, h in histograms.items():
            mean = (h["sum"] / h["count"]) if h["count"] else 0.0
            lines.append(
                f"  {k.ljust(width)}  n={h['count']}  mean={mean:g}"
                f"  min={h['min']:g}  max={h['max']:g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"

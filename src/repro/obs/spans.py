"""Hierarchical span tracing: timed, parented occurrences on the bus.

A *span* is one timed unit of work -- a scheduler run, one sweep
replication, one parallel worker chunk -- with a process-unique
``span_id``, the ``parent_id`` of the enclosing span (0 at the root), a
monotonic duration and a flat attribute dict.  Spans ride the existing
:class:`~repro.obs.events.EventBus`: closing a span emits one
``span.end`` event whose payload is the complete span record, so every
existing consumer (JSONL sinks, in-memory recorders, tests) works
unchanged, and the Chrome-trace exporter (:mod:`repro.obs.export`) is
just another subscriber reading those records back.

The quiet path follows the bus discipline: :func:`span` checks one
flag (an explicit override, else the ``trace`` field of the active
:class:`~repro.runtime.context.RunContext`) and returns a shared no-op
handle when tracing is off -- no id allocation, no clock read.  Worker
processes therefore start tracing simply by adopting a context with
``trace=True``; the pool initializer only has to attach a sink.

Span kinds emitted by the instrumented library code:

==========================  ==================================================
``sweep.run``               one whole sweep (serial or parallel collector)
``sweep.point``             one x point of a serial sweep
``sweep.chunk``             one worker chunk (replication range of one point)
``sweep.replication``       one replication: every scheduler on one instance
``scheduler.run``           one :meth:`Scheduler.run`
``phase``                   one profiler phase (opt-in, see below)
==========================  ==================================================

Phase spans mirror the :mod:`repro.obs.profile` timers (``HDLTS/commit``
and friends) and are *per decision step*, so they are gated behind the
separate :func:`phase_spans_scope` switch -- a single scheduler run
traces beautifully, a 10^5-replication sweep does not want 10^7 spans.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs.events import Event, get_bus
from repro.runtime.context import current_context

__all__ = [
    "SPAN_TOPIC",
    "span",
    "tracing",
    "tracing_scope",
    "phase_spans_enabled",
    "phase_spans_scope",
    "SpanRecorder",
]

#: the event name span records are published under
SPAN_TOPIC = "span.end"

#: explicit override: None defers to the active RunContext's ``trace``
_override: Optional[bool] = None

#: per-decision-step phase spans (off unless explicitly scoped on)
_phase_spans: bool = False

#: open-span stack of this process (span ids, innermost last)
_stack: List[int] = []

#: process-unique span ids (combine with the pid across processes)
_ids = itertools.count(1)


def tracing() -> bool:
    """Whether span tracing is currently on.

    An explicit override (:func:`tracing_scope`) wins; otherwise the
    ``trace`` field of the active run context decides -- which is how
    pool workers inherit tracing under any start method.
    """
    if _override is not None:
        return _override
    return current_context().trace


@contextmanager
def tracing_scope(flag: bool = True) -> Iterator[None]:
    """Temporarily force tracing on/off (restores the previous state)."""
    global _override
    previous = _override
    _override = flag
    try:
        yield
    finally:
        _override = previous


def phase_spans_enabled() -> bool:
    """Whether profiler phases also emit spans (see module docstring)."""
    return _phase_spans and tracing()


@contextmanager
def phase_spans_scope(flag: bool = True) -> Iterator[None]:
    """Scope the per-phase span bridge on/off (single-run deep dives)."""
    global _phase_spans
    previous = _phase_spans
    _phase_spans = flag
    try:
        yield
    finally:
        _phase_spans = previous


class _NoopSpan:
    """Shared do-nothing handle: the tracing-off fast path."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        """Ignore attributes (tracing is off)."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span; emits its record as one ``span.end`` event on exit."""

    __slots__ = ("kind", "attrs", "span_id", "parent_id", "_wall0", "_t0")

    def __init__(self, kind: str, attrs: Dict[str, object]) -> None:
        self.kind = kind
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self._wall0 = 0.0
        self._t0 = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.parent_id = _stack[-1] if _stack else 0
        self.span_id = next(_ids)
        _stack.append(self.span_id)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        dur = time.perf_counter() - self._t0
        if _stack and _stack[-1] == self.span_id:
            _stack.pop()
        bus = get_bus()
        if bus.active:
            payload: Dict[str, object] = {
                "kind": self.kind,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "pid": os.getpid(),
                "wall0": self._wall0,
                "dur_s": dur,
            }
            if exc_type is not None:
                payload["error"] = exc_type.__name__
            payload.update(self.attrs)
            bus.emit(SPAN_TOPIC, **payload)
        return False


def span(kind: str, /, **attrs: object):
    """Open a span of ``kind`` with flat attributes.

    Returns the shared no-op handle when tracing is off, so quiet call
    sites pay one flag check.  Use as a context manager::

        with spans.span("scheduler.run", name="HDLTS") as sp:
            ...
            sp.set(makespan=schedule.makespan)
    """
    if not tracing():
        return NOOP_SPAN
    return _Span(kind, attrs)


class SpanRecorder:
    """Bus subscriber collecting span records in memory.

    Subscribe with ``obs.subscribe(recorder, topics=("span.",))``; the
    records are the flat ``span.end`` payload dicts, ready for
    :func:`repro.obs.export.chrome_trace`.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def __call__(self, event: Event) -> None:
        """Collect one span record (bus subscriber hook)."""
        self.records.append(event.to_dict())

    def __len__(self) -> int:
        return len(self.records)

"""Exporters: Chrome trace-event JSON and Prometheus textfiles.

Two read-only views over the telemetry the library already records:

* :func:`chrome_trace` turns ``span.end`` records (from a
  :class:`~repro.obs.spans.SpanRecorder` or the per-process
  ``spans-<pid>.jsonl`` files under a run's telemetry directory) into a
  Chrome trace-event document that loads directly in Perfetto or
  ``chrome://tracing``.  Spans render as complete (``"ph": "X"``)
  events on one lane per OS process -- the run's main process plus one
  lane per pool worker.  Optionally a computed
  :class:`~repro.schedule.schedule.Schedule` is overlaid as a synthetic
  process whose lanes are the per-CPU Gantt rows
  (:func:`repro.schedule.gantt.gantt_lanes`), so a sim-time schedule
  and the wall-time run that produced it are inspectable in one UI.
* :func:`prometheus_text` renders a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` in the Prometheus
  text exposition format, suitable for the node-exporter textfile
  collector (``<run_dir>/telemetry/metrics.prom``).

Neither exporter imports anything heavier than ``json``; both are pure
functions over plain dicts.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.schedule.gantt import gantt_lanes
from repro.schedule.schedule import Schedule

__all__ = [
    "read_span_records",
    "chrome_trace",
    "write_chrome_trace",
    "schedule_trace_events",
    "prometheus_text",
    "write_prometheus",
]

PathLike = Union[str, pathlib.Path]

#: Chrome pid of the wall-time lanes (one tid per OS process)
WALL_PID = 1
#: Chrome pid of the synthetic sim-time schedule overlay
SCHEDULE_PID = 2

#: span-record keys consumed by the exporter (everything else -> args)
_CONSUMED = ("event", "ts", "kind", "span_id", "parent_id", "pid", "wall0", "dur_s")


def read_span_records(path: PathLike) -> List[Dict[str, object]]:
    """Load span records from a JSONL file of bus events.

    Non-span events are skipped, and reading tolerates a torn tail the
    same way the chunk ledger does: a line that does not parse (a
    process killed mid-write) ends the file.
    """
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                break
            if row.get("event") == "span.end":
                records.append(row)
    return records


def schedule_trace_events(
    schedule: Schedule,
    pid: int = SCHEDULE_PID,
    sim_unit_us: float = 1000.0,
    label: str = "schedule (sim time)",
) -> List[Dict[str, object]]:
    """A computed schedule's per-CPU Gantt as synthetic trace lanes.

    Each CPU becomes one thread lane holding a complete event per
    committed task copy; ``sim_unit_us`` maps one sim-time unit to
    microseconds (the default renders one unit as 1 ms in the UI).
    """
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": label},
        },
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"sort_index": 1},
        },
    ]
    for lane_index, (lane, slots) in enumerate(gantt_lanes(schedule)):
        tid = lane_index + 1
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": lane},
            }
        )
        for slot in slots:
            events.append(
                {
                    "name": slot.label,
                    "cat": "schedule",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": slot.start * sim_unit_us,
                    "dur": (slot.end - slot.start) * sim_unit_us,
                    "args": {
                        "start": slot.start,
                        "end": slot.end,
                        "duplicate": slot.duplicate,
                    },
                }
            )
    return events


def chrome_trace(
    records: Iterable[Dict[str, object]],
    schedule: Optional[Schedule] = None,
    sim_unit_us: float = 1000.0,
    run_label: str = "repro (wall time)",
) -> Dict[str, object]:
    """Build a Chrome trace-event document from span records.

    ``records`` are flat ``span.end`` payloads (what a
    :class:`~repro.obs.spans.SpanRecorder` collects, or
    :func:`read_span_records` loads).  Every OS process becomes one
    thread lane under a single "wall time" trace process; timestamps
    are wall-clock microseconds relative to the earliest span start, so
    lanes from different worker processes line up.  Pass ``schedule``
    to additionally overlay its Gantt as a sim-time process.
    """
    records = [dict(r) for r in records]
    events: List[Dict[str, object]] = []
    base = min(
        (float(r["wall0"]) for r in records if "wall0" in r), default=0.0
    )
    pids = sorted({int(r.get("pid", 0)) for r in records})
    mains = {
        int(r.get("pid", 0)) for r in records if r.get("kind") == "sweep.run"
    }
    if not mains and pids:
        mains = {pids[0]}

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": WALL_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": run_label},
        }
    )
    for sort_index, pid in enumerate(sorted(pids, key=lambda p: (p not in mains, p))):
        role = "main" if pid in mains else "worker"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": WALL_PID,
                "tid": pid,
                "ts": 0,
                "args": {"name": f"{role} {pid}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": WALL_PID,
                "tid": pid,
                "ts": 0,
                "args": {"sort_index": sort_index},
            }
        )
    for record in records:
        kind = str(record.get("kind", "span"))
        args = {
            k: v for k, v in record.items() if k not in _CONSUMED
        }
        args["span_id"] = record.get("span_id")
        args["parent_id"] = record.get("parent_id")
        events.append(
            {
                "name": str(record.get("name") or kind),
                "cat": kind,
                "ph": "X",
                "pid": WALL_PID,
                "tid": int(record.get("pid", 0)),
                "ts": (float(record.get("wall0", base)) - base) * 1e6,
                "dur": float(record.get("dur_s", 0.0)) * 1e6,
                "args": args,
            }
        )
    if schedule is not None:
        events.extend(
            schedule_trace_events(schedule, sim_unit_us=sim_unit_us)
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: PathLike,
    records: Iterable[Dict[str, object]],
    schedule: Optional[Schedule] = None,
    sim_unit_us: float = 1000.0,
) -> Dict[str, object]:
    """Write :func:`chrome_trace` output as JSON; returns the document."""
    doc = chrome_trace(records, schedule=schedule, sim_unit_us=sim_unit_us)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


# -- Prometheus text exposition -----------------------------------------
def _metric_name(name: str, prefix: str) -> str:
    """``scope/metric`` -> a legal Prometheus metric name."""
    return f"{prefix}_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _fmt(value: float) -> str:
    """Prometheus sample value (repr-exact floats, bare ints)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(
    snapshot: Dict[str, Dict[str, object]], prefix: str = "repro"
) -> str:
    """Render a metrics snapshot in the Prometheus text format.

    Counters become ``<prefix>_<name>_total``, gauges stay plain,
    timers expose a summary (``_seconds_count`` / ``_seconds_sum``) plus
    min/max gauges, and histograms expose cumulative ``_bucket{le=...}``
    series.  The output ends with a newline as the textfile collector
    requires.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(int(value))}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(float(value))}")
    for name, data in snapshot.get("timers", {}).items():
        metric = _metric_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_fmt(int(data['count']))}")
        lines.append(f"{metric}_sum {_fmt(float(data['total']))}")
        for bound in ("min", "max"):
            lines.append(f"# TYPE {metric}_{bound} gauge")
            lines.append(f"{metric}_{bound} {_fmt(float(data[bound]))}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["buckets"]):
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {_fmt(int(data["count"]))}')
        lines.append(f"{metric}_sum {_fmt(float(data['sum']))}")
        lines.append(f"{metric}_count {_fmt(int(data['count']))}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: PathLike,
    snapshot: Dict[str, Dict[str, object]],
    prefix: str = "repro",
) -> None:
    """Write :func:`prometheus_text` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(snapshot, prefix=prefix))

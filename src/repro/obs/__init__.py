"""Observability: event bus, metrics registry and profiling contexts.

A dependency-free measurement layer for the whole toolkit:

* :mod:`repro.obs.events` -- a structured event bus.  Schedulers, the
  simulator, the online executor and the sweep harness emit typed
  events (``scheduler.decision``, ``sim.task_finish``, ...); any number
  of subscribers -- the Table-I trace recorder, a JSONL sink, a test --
  listen without the producers knowing.
* :mod:`repro.obs.metrics` -- counters, gauges, wall-clock timers and
  streaming histograms in a named registry, snapshot-able to plain
  dicts and exactly mergeable across worker processes.
* :mod:`repro.obs.profile` -- nested ``with phase("..."):`` timers and
  an ``@instrumented`` decorator behind a global switch; disabled (the
  default) they reduce to one bool test and a shared no-op context.

Typical session (what ``repro profile`` does)::

    from repro import obs

    with obs.session(metrics=True) as sess:
        HDLTS().run(graph)
    print(obs.format_metrics(sess.snapshot))
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.events import Event, EventBus, JsonlSink, get_bus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    format_metrics,
    get_metrics,
    merge_snapshots,
    scoped,
)
from repro.obs.profile import (
    count,
    current_scope,
    disable,
    enable,
    enabled,
    enabled_scope,
    instrumented,
    phase,
    scoped_count,
)
from repro.obs.spans import (
    SPAN_TOPIC,
    SpanRecorder,
    phase_spans_scope,
    span,
    tracing,
    tracing_scope,
)

__all__ = [
    "Event",
    "EventBus",
    "JsonlSink",
    "get_bus",
    "emit",
    "subscribe",
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "scoped",
    "merge_snapshots",
    "format_metrics",
    "enable",
    "disable",
    "enabled",
    "enabled_scope",
    "phase",
    "instrumented",
    "count",
    "scoped_count",
    "current_scope",
    "SPAN_TOPIC",
    "SpanRecorder",
    "span",
    "tracing",
    "tracing_scope",
    "phase_spans_scope",
    "session",
    "ObsSession",
]


def emit(name: str, /, **payload: object) -> None:
    """Emit an event on the process-global bus."""
    get_bus().emit(name, **payload)


def subscribe(subscriber, topics=None):
    """Subscribe to the process-global bus; returns the unsubscriber."""
    return get_bus().subscribe(subscriber, topics)


class ObsSession:
    """One observability session: optional JSONL sink + scoped metrics.

    Use through :func:`session`.  After exit, :attr:`snapshot` holds the
    metrics recorded during the block (empty when ``metrics=False``) and
    :attr:`n_events` counts the events written to the sink.
    """

    def __init__(
        self, events_path: Optional[str] = None, metrics: bool = False
    ) -> None:
        self._events_path = events_path
        self._metrics = metrics
        self._sink: Optional[JsonlSink] = None
        self._unsubscribe = None
        self._scope = None
        self._enabled_scope = None
        self.snapshot: Dict[str, Dict[str, object]] = {}
        self.n_events = 0

    def __enter__(self) -> "ObsSession":
        if self._events_path:
            self._sink = JsonlSink(self._events_path)
            self._unsubscribe = get_bus().subscribe(self._sink)
        if self._metrics:
            # force recording on for the block, restoring the previous
            # override on exit (symmetric even when the active RunContext
            # already has metrics=True)
            self._enabled_scope = enabled_scope(True)
            self._enabled_scope.__enter__()
            self._scope = scoped(merge_up=False)
            self._registry = self._scope.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        if self._scope is not None:
            self.snapshot = self._registry.snapshot()
            self._scope.__exit__(None, None, None)
            self._enabled_scope.__exit__(None, None, None)
        if self._unsubscribe is not None:
            self._unsubscribe()
        if self._sink is not None:
            self.n_events = self._sink.n_written
            self._sink.close()


def session(
    events_path: Optional[str] = None, metrics: bool = False
) -> ObsSession:
    """Scope a JSONL event sink and/or a metrics-enabled registry."""
    return ObsSession(events_path=events_path, metrics=metrics)

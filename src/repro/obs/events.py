"""Structured event bus: the nervous system of the observability layer.

Producers emit named events (``scheduler.decision``, ``sim.task_finish``,
``sweep.replication``, ...) with a flat JSON-serializable payload;
subscribers receive :class:`Event` records.  The bus is dependency-free
and built for hot paths: :meth:`EventBus.emit` returns immediately when
nobody listens, and call sites that must build a payload dict should
gate on :attr:`EventBus.active` so a quiet bus costs one attribute read.

Event taxonomy (see ``docs/observability.md`` for the payload schemas):

==========================  ==================================================
``scheduler.run``           one completed :meth:`Scheduler.run`
``scheduler.decision``      one mapping decision (a Table-I row)
``scheduler.duplication``   an entry duplicate was materialized
``sim.task_finish``         the simulator committed one task copy
``dynamic.dispatch``        an online dispatch (successful or lost)
``sweep.point``             one x point of a sweep started
``sweep.replication``       one replication of one x point finished
``sweep.chunk``             one parallel worker chunk finished
``span.end``                a hierarchical span closed (:mod:`repro.obs.spans`)
==========================  ==================================================
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Event", "EventBus", "JsonlSink", "get_bus"]

#: how many recent delivery failures a bus remembers (for diagnostics)
_ERROR_KEEP = 16

Subscriber = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """One structured occurrence: a dotted name plus a flat payload."""

    name: str
    payload: Dict[str, object] = field(default_factory=dict)
    ts: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-ready form (payload keys hoisted to the top level)."""
        out: Dict[str, object] = {"event": self.name, "ts": self.ts}
        out.update(self.payload)
        return out


def _topic_matches(topic: str, name: str) -> bool:
    """``"scheduler."`` matches the family; an exact name matches itself."""
    if topic == "*" or topic == name:
        return True
    return topic.endswith(".") and name.startswith(topic)


class EventBus:
    """Synchronous fan-out of events to subscribers.

    Subscribers are plain callables; :meth:`subscribe` returns an
    unsubscribe closure so scoped listeners (trace recorders, JSONL
    sinks) can detach without knowing about each other.

    Delivery is *isolated*: a subscriber (or backend) that raises does
    not corrupt the publishing run or wedge the other subscribers --
    the exception is recorded on :attr:`errors`, a ``RuntimeWarning``
    fires once per offender per process, and delivery continues.

    Besides subscribers the bus can carry one pluggable **backend**
    (:meth:`set_backend`): a durable delivery target -- e.g. a
    :class:`~repro.service.worker.StoreEventSink` persisting events
    into the service store so workers in other processes can publish
    progress home.  A backend receives every *published* event
    (optionally topic-filtered) but does **not** flip :attr:`active`:
    ``active`` is the hot-path gate, and service/progress events are
    emitted unconditionally by their producers, while per-decision
    instrumentation stays quiet unless a subscriber asks for it.
    """

    def __init__(self) -> None:
        self._subscribers: List[Tuple[Subscriber, Optional[Tuple[str, ...]]]] = []
        self._backend: Optional[Tuple[Subscriber, Optional[Tuple[str, ...]]]] = None
        self._warned: set = set()
        #: recent delivery failures: (subscriber repr, exception)
        self.errors: List[Tuple[str, BaseException]] = []

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached.

        Hot paths check this before building an event payload so an
        idle bus adds no allocations to the instrumented code.  A
        backend alone does not count: it receives the unconditionally
        emitted (cold-path) events without dragging per-decision
        payload construction into every run.
        """
        return bool(self._subscribers)

    def set_backend(
        self,
        backend: Optional[Subscriber],
        topics: Optional[Sequence[str]] = None,
    ) -> Optional[Subscriber]:
        """Install (or, with ``None``, remove) the bus backend.

        Returns the previous backend so scoped installers can restore
        it.  Unlike subscribers the backend survives :meth:`clear` --
        it represents where this process durably publishes, not a
        transient listener.
        """
        previous = self._backend[0] if self._backend is not None else None
        if backend is None:
            self._backend = None
        else:
            self._backend = (
                backend, tuple(topics) if topics is not None else None
            )
        return previous

    def subscribe(
        self,
        subscriber: Subscriber,
        topics: Optional[Sequence[str]] = None,
    ) -> Callable[[], None]:
        """Attach ``subscriber``; returns a function that detaches it.

        ``topics`` filters delivery: exact names (``"scheduler.decision"``),
        family prefixes ending in a dot (``"scheduler."``), or ``"*"``.
        ``None`` receives everything.
        """
        entry = (subscriber, tuple(topics) if topics is not None else None)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def emit(self, name: str, /, **payload: object) -> None:
        """Deliver one event to every matching subscriber and the backend.

        A no-op (no Event allocation, no clock read) when nobody --
        subscriber or backend -- would receive it.
        """
        if not self._subscribers and self._backend is None:
            return
        event = Event(name=name, payload=payload, ts=time.time())
        self.publish(event)

    def publish(self, event: Event) -> None:
        """Deliver an already-constructed :class:`Event`.

        The backend receives the event first (progress must outlive a
        crashing listener), then every matching subscriber.  A raising
        target is quarantined for this delivery only: the error lands
        on :attr:`errors`, a ``RuntimeWarning`` fires the first time
        that target misbehaves, and the remaining targets still get
        the event.
        """
        if self._backend is not None:
            backend, topics = self._backend
            if topics is None or any(
                _topic_matches(t, event.name) for t in topics
            ):
                self._deliver(backend, event)
        for subscriber, topics in list(self._subscribers):
            if topics is None or any(_topic_matches(t, event.name) for t in topics):
                self._deliver(subscriber, event)

    def _deliver(self, target: Subscriber, event: Event) -> None:
        try:
            target(event)
        except Exception as exc:
            self.errors.append((repr(target), exc))
            del self.errors[:-_ERROR_KEEP]
            key = id(target)
            if key not in self._warned:
                self._warned.add(key)
                warnings.warn(
                    f"event bus subscriber {target!r} raised "
                    f"{type(exc).__name__} on {event.name!r}; further "
                    "errors from it will be recorded silently",
                    RuntimeWarning,
                    stacklevel=4,
                )

    def clear(self) -> None:
        """Detach every subscriber and forget recorded delivery errors
        (test isolation helper).  The backend, if any, stays installed:
        remove it explicitly with ``set_backend(None)``."""
        self._subscribers.clear()
        self.errors.clear()
        self._warned.clear()


def _json_default(obj: object) -> object:
    """Serialize numpy scalars / containers without importing numpy."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    return str(obj)


class JsonlSink:
    """Bus subscriber writing one JSON object per event to a file.

    Every line round-trips through ``json.loads``.  The sink remembers
    the PID that opened the file and ignores events delivered in forked
    worker processes, so a parallel sweep never interleaves writes.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._pid = os.getpid()
        self.n_written = 0

    def __call__(self, event: Event) -> None:
        """Write one event as a JSON line (bus subscriber hook)."""
        if os.getpid() != self._pid or self._fh.closed:
            return
        json.dump(event.to_dict(), self._fh, default=_json_default)
        self._fh.write("\n")
        self.n_written += 1

    def flush(self) -> None:
        """Push buffered lines to disk (worker loops call this between
        chunks so a terminated pool leaves complete span files)."""
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        """Support ``with JsonlSink(path) as sink:`` usage."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the sink on scope exit."""
        self.close()


#: the process-global default bus used by the instrumented library code
_BUS = EventBus()


def get_bus() -> EventBus:
    """The process-global event bus."""
    return _BUS

"""Profiling contexts: nested phase timers with a global on/off switch.

``with phase("eft_vector"):`` times a block into the current
:class:`~repro.obs.metrics.MetricsRegistry` under the joined phase
stack (``HDLTS/eft_vector`` when entered inside ``phase("HDLTS")``),
and ``@instrumented`` wraps a whole function the same way.

The switch is the whole design: profiling defaults to *off*, and a
disabled :func:`phase` returns one shared no-op context manager -- no
allocation, no clock read, one cheap enabled test -- so the
instrumented hot paths of the schedulers cost nothing in production
runs.

Whether recording is on resolves in two steps: an explicit module
override (:func:`enable` / :func:`disable` -- the legacy process-global
toggles, now deprecated shims) wins when set; otherwise the ``metrics``
field of the active :class:`~repro.runtime.context.RunContext` decides.
A CLI run therefore turns measurement on by *activating a context*, and
the parallel sweep runner ships that context to worker processes --
under any pool start method, not just ``fork``.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.runtime.context import current_context as _current_context

__all__ = [
    "enable",
    "disable",
    "enabled",
    "enabled_scope",
    "phase",
    "instrumented",
    "count",
    "scoped_count",
    "current_scope",
]

#: explicit legacy override: None defers to the active RunContext
_override: Optional[bool] = None
_stack: List[str] = []


def enable() -> None:
    """Force phase timing and counter recording on (process-wide).

    .. deprecated::
        Prefer activating a :class:`~repro.runtime.context.RunContext`
        with ``metrics=True``; this shim sets a process-global override
        that wins over any context.
    """
    from repro.runtime.deprecation import warn_once

    warn_once(
        "obs.profile.enable",
        "obs.enable() is deprecated; activate a RunContext with "
        "metrics=True (or use obs.enabled_scope()) instead",
    )
    global _override
    _override = True


def disable() -> None:
    """Clear the override set by :func:`enable`.

    Recording then falls back to the active run context (off under the
    default context) -- matching the legacy off-after-disable behavior
    while staying composable with context activation.
    """
    global _override
    _override = None
    _stack.clear()


def enabled() -> bool:
    """Whether the profiling layer is currently recording."""
    if _override is not None:
        return _override
    return _current_context().metrics


@contextmanager
def enabled_scope(flag: bool = True) -> Iterator[None]:
    """Temporarily force the enabled state (restores the previous one)."""
    global _override
    previous = _override
    _override = flag
    try:
        yield
    finally:
        _override = previous
        if not enabled():
            _stack.clear()


class _NoopPhase:
    """Shared do-nothing context: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopPhase()


class _Phase:
    """An active phase timer; records into the current registry on exit.

    When the per-phase span bridge is on (:func:`repro.obs.spans
    .phase_spans_scope`) the phase additionally opens a ``phase`` span,
    so single-run deep dives land in the Chrome-trace export; the timer
    itself is only observed while metric recording is enabled.
    """

    __slots__ = ("name", "_key", "_started", "_record", "_span")

    def __init__(self, name: str) -> None:
        self.name = name
        self._key = ""
        self._started = 0.0
        self._record = True
        self._span = None

    def __enter__(self) -> "_Phase":
        _stack.append(self.name)
        self._key = "/".join(_stack)
        self._record = enabled()
        if _spans.phase_spans_enabled():
            self._span = _spans.span("phase", name=self._key)
            self._span.__enter__()
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._started
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None
        if _stack and _stack[-1] == self.name:
            _stack.pop()
        if self._record:
            _metrics.get_metrics().timer(self._key).observe(elapsed)
        return False


def phase(name: str):
    """Context manager timing a named (nestable) phase.

    Returns the shared no-op singleton when profiling is disabled, so a
    hot loop pays only the ``enabled`` test (plus one flag read for the
    span bridge).
    """
    if not (enabled() or _spans.phase_spans_enabled()):
        return _NOOP
    return _Phase(name)


def current_scope() -> Optional[str]:
    """Root of the active phase stack (the scheduler name inside a run)."""
    return _stack[0] if _stack and enabled() else None


def count(name: str, n: int = 1) -> None:
    """Increment a counter, but only while profiling is enabled."""
    if enabled():
        _metrics.get_metrics().counter(name).inc(n)


def scoped_count(name: str, n: int = 1) -> None:
    """Like :func:`count`, prefixing the current phase root (if any).

    Lets shared helpers (e.g. the baselines' EFT machinery) attribute
    counts to whichever scheduler's run they execute inside.
    """
    if enabled():
        root = _stack[0] if _stack else None
        key = f"{root}/{name}" if root else name
        _metrics.get_metrics().counter(key).inc(n)


def instrumented(name: Optional[str] = None) -> Callable:
    """Decorator timing every call of a function as a phase.

    ``name`` defaults to the function's ``__qualname__``.
    """

    def decorate(fn: Callable) -> Callable:
        phase_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not (enabled() or _spans.phase_spans_enabled()):
                return fn(*args, **kwargs)
            with _Phase(phase_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate

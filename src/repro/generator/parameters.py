"""Generator parameters (the paper's Table II).

``TABLE_II`` reproduces the published grid verbatim; a full cross product
is 125,000 combinations (8 x 5 x 5 x 5 x 5 x 6 x 5 / the paper quotes
"125K unique application workflow graphs").  :func:`iter_table_ii` yields
:class:`GeneratorConfig` objects for any sub-grid so the experiment
harness can run the full factorial or a sliced version.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = ["GeneratorConfig", "TABLE_II", "iter_table_ii"]


@dataclass(frozen=True)
class GeneratorConfig:
    """One parameter combination for the random DAG generator.

    Attributes mirror Section V-B:

    * ``v`` -- number of tasks;
    * ``alpha`` -- shape: height ~ sqrt(v)/alpha, width ~ sqrt(v)*alpha;
    * ``density`` -- mean out-degree (edges per task);
    * ``ccr`` -- communication-to-computation ratio (Eq. 14);
    * ``n_procs`` -- CPUs in the platform;
    * ``w_dag`` -- mean computation cost of the DAG's tasks;
    * ``beta`` -- per-CPU heterogeneity of execution time (Eq. 13).
    """

    v: int = 100
    alpha: float = 1.0
    density: int = 3
    ccr: float = 1.0
    n_procs: int = 4
    w_dag: float = 50.0
    beta: float = 1.0
    #: force a single real entry task (level 0 of width 1).  The paper's
    #: generator emits multi-entry graphs and folds them with a zero-cost
    #: pseudo task; a *real* entry is needed to exercise Algorithm 1
    #: (entry duplication), e.g. in the duplication ablation bench.
    single_entry: bool = False
    #: heterogeneity structure of the cost matrix ``W``:
    #: ``"inconsistent"`` -- Eq. (13): each (task, CPU) cost drawn
    #: independently, so a CPU fast for one task may be slow for another
    #: (the paper's model); ``"consistent"`` -- machine-speed model:
    #: one speed factor per CPU (drawn once from the beta band) divides
    #: every task's cost, so CPUs are totally ordered.  Consistent
    #: matrices have zero *relative* heterogeneity, which neutralizes
    #: PV/SDBATS-style priorities -- a key ablation axis.
    heterogeneity: str = "inconsistent"

    def __post_init__(self) -> None:
        if self.v < 1:
            raise ValueError("v must be >= 1")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.density < 1:
            raise ValueError("density must be >= 1")
        if self.ccr < 0:
            raise ValueError("ccr must be >= 0")
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self.w_dag <= 0:
            raise ValueError("w_dag must be positive")
        if not 0 <= self.beta <= 2:
            raise ValueError("beta must lie in [0, 2]")
        if self.heterogeneity not in ("inconsistent", "consistent"):
            raise ValueError(
                "heterogeneity must be 'inconsistent' or 'consistent', "
                f"got {self.heterogeneity!r}"
            )

    def with_(self, **kwargs) -> "GeneratorConfig":
        """Functional update, e.g. ``cfg.with_(ccr=3.0)``."""
        return replace(self, **kwargs)


#: the published parameter grid, verbatim from Table II
TABLE_II: Dict[str, Tuple] = {
    "v": (100, 200, 300, 400, 500, 1000, 5000, 10000),
    "alpha": (0.5, 1.0, 1.5, 2.0, 2.5),
    "density": (1, 2, 3, 4, 5),
    "ccr": (1.0, 2.0, 3.0, 4.0, 5.0),
    "n_procs": (2, 4, 6, 8, 10),
    "w_dag": (50, 60, 70, 80, 90, 100),
    "beta": (0.4, 0.8, 1.2, 1.6, 2.0),
}


def iter_table_ii(
    overrides: Optional[Dict[str, Sequence]] = None,
) -> Iterator[GeneratorConfig]:
    """Iterate configurations over the Table II grid.

    ``overrides`` replaces any axis with a smaller (or single-value)
    sequence -- e.g. ``iter_table_ii({"v": (100,), "ccr": (1, 3, 5)})``
    -- which is how the figure experiments freeze all but one axis.
    """
    grid = {key: tuple(values) for key, values in TABLE_II.items()}
    if overrides:
        unknown = set(overrides) - set(grid)
        if unknown:
            raise KeyError(f"unknown Table II axes: {sorted(unknown)}")
        grid.update({k: tuple(v) for k, v in overrides.items()})
    keys = list(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield GeneratorConfig(**dict(zip(keys, combo)))

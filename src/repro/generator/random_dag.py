"""Random layered-DAG structure generation (Section V-B).

The generator follows the Topcuoglu method the paper adopts:

1. **Shape.**  The number of levels is drawn around ``sqrt(v) / alpha``
   and each level's width around ``sqrt(v) * alpha`` -- small ``alpha``
   gives tall thin graphs (low parallelism), large ``alpha`` short fat
   ones -- then widths are normalized so the level sizes sum exactly
   to ``v``.
2. **Edges.**  Every task gets ``density`` out-edges on average, aimed at
   tasks in later levels (strongly biased to the next level, as in the
   published examples).  A repair pass guarantees every task outside
   level 0 has at least one parent, so the DAG is connected from its
   entry tasks.
3. **Costs.**  Eq. (13) for computation (``w_i ~ U(0, 2 W_dag)``,
   per-CPU spread ``beta``) and Eq. (14) for communication
   (``comm = w_i * CCR``).

The generator can emit graphs with several entry/exit tasks (the paper's
generator does); the evaluation harness normalizes them with zero-cost
pseudo tasks exactly as Section III prescribes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.generator.parameters import GeneratorConfig
from repro.model.task_graph import TaskGraph

__all__ = ["RandomDAGGenerator", "generate_random_graph"]


def _weighted_sample_noreplace(
    rng: np.random.Generator, k: int, cdf: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """``rng.choice(n, size=k, replace=False, p=weights)``, draw-exact.

    Re-implements numpy's weighted no-replacement branch on top of the
    same ``rng.random()`` calls so the bit-generator stream (and with it
    every downstream draw) is untouched, while letting the caller hoist
    the cdf across calls that share one weight vector.  The dedupe is an
    order-preserving set pass -- exactly what numpy's
    ``unique(return_index=True)`` + ``take`` computes.  Guarded by an
    oracle test against ``Generator.choice`` itself
    (``tests/generator/test_random_dag.py``).
    """
    found = np.zeros(k, dtype=np.int64)
    n_uniq = 0
    p = None
    while n_uniq < k:
        x = rng.random((k - n_uniq,))
        if n_uniq > 0:
            # collision retry: zero out what we already took and
            # rebuild the cdf, exactly as numpy does on its p copy
            if p is None:
                p = weights.copy()
            p[found[0:n_uniq]] = 0
            cdf = np.cumsum(p)
            cdf /= cdf[-1]
        new = cdf.searchsorted(x, side="right")
        lst = new.tolist()
        if len(set(lst)) != len(lst):
            seen: set = set()
            kept = [v for v in lst if not (v in seen or seen.add(v))]
            new = np.array(kept, dtype=np.int64)
        found[n_uniq:n_uniq + new.size] = new
        n_uniq += new.size
    return found


class RandomDAGGenerator:
    """Reusable generator bound to one configuration."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def level_sizes(self, rng: np.random.Generator) -> List[int]:
        """Partition ``v`` tasks into levels of the configured shape."""
        v, alpha = self.config.v, self.config.alpha
        if v == 1:
            return [1]
        if self.config.single_entry:
            # reserve level 0 for the lone entry, shape the rest normally
            rest = self.config.with_(single_entry=False, v=v - 1)
            return [1] + RandomDAGGenerator(rest).level_sizes(rng)
        mean_height = max(1.0, math.sqrt(v) / alpha)
        height = max(1, int(round(rng.uniform(0.8, 1.2) * mean_height)))
        height = min(height, v)  # can't have more levels than tasks
        mean_width = math.sqrt(v) * alpha
        raw = rng.uniform(0.5 * mean_width, 1.5 * mean_width, size=height)
        sizes = np.maximum(1, np.round(raw * (v / raw.sum()))).astype(int)
        # exact-sum repair: trim/grow greedily (levels keep >= 1 task)
        diff = int(sizes.sum()) - v
        i = 0
        while diff != 0:
            idx = int(np.argmax(sizes)) if diff > 0 else int(np.argmin(sizes))
            if diff > 0 and sizes[idx] > 1:
                sizes[idx] -= 1
                diff -= 1
            elif diff < 0:
                sizes[idx] += 1
                diff += 1
            else:  # all levels at width 1 but still too many: drop a level
                sizes = sizes[:-1]
                diff = int(sizes.sum()) - v
            i += 1
            if i > 10 * len(sizes) + v:  # pragma: no cover - safety net
                raise RuntimeError("level-size repair failed to converge")
        return [int(s) for s in sizes if s > 0]

    def _edges(
        self, levels: List[List[int]], rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        """Out-degree-driven wiring plus the orphan-repair pass."""
        density = self.config.density
        edges: List[Tuple[int, int]] = []
        seen = set()

        def later_pool(level_index: int) -> List[int]:
            """Candidate targets: mostly next level, some further."""
            pool = list(levels[level_index + 1])
            # small tail from deeper levels lets long edges appear
            for deeper in levels[level_index + 2 : level_index + 4]:
                pool.extend(deeper)
            return pool

        for li in range(len(levels) - 1):
            # the candidate pool and its bias weights depend only on the
            # level, so build them once and share across the level's
            # sources (the rng.choice draw sequence is unchanged)
            pool = later_pool(li)
            k = min(density, len(pool))
            if k == 0:
                continue
            # bias: draw with 80% weight on the immediate next level
            next_n = len(levels[li + 1])
            weights = np.full(len(pool), 0.2 / max(1, len(pool) - next_n))
            weights[:next_n] = 0.8 / next_n
            weights /= weights.sum()
            # every source in the level samples with the same weight
            # vector, so the cdf is hoisted too; the draw-exact sampler
            # keeps the rng.choice bit stream unchanged
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            for src in levels[li]:
                targets = _weighted_sample_noreplace(rng, k, cdf, weights)
                for t in targets.tolist():
                    key = (src, pool[t])
                    if key not in seen:
                        seen.add(key)
                        edges.append(key)

        # repair: every non-entry-level task needs a parent
        has_parent = {dst for _, dst in seen}
        for li in range(1, len(levels)):
            for dst in levels[li]:
                if dst not in has_parent:
                    src = int(rng.choice(levels[li - 1]))
                    key = (src, dst)
                    if key not in seen:
                        seen.add(key)
                        edges.append(key)
                    has_parent.add(dst)
        return edges

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def generate(
        self,
        rng: Optional[np.random.Generator] = None,
        structure_rng: Optional[np.random.Generator] = None,
    ) -> TaskGraph:
        """Draw one random task graph.

        ``structure_rng`` (optional) feeds the *structure* draws -- level
        shape and edge wiring -- while ``rng`` keeps feeding the cost
        draws.  Passing a freshly seeded ``structure_rng`` per instance
        therefore fixes the DAG shape across replications while the
        costs stay independent (what the batched multi-DAG kernel's
        shape grouping wants).  With the default (``None``) every draw
        comes from ``rng``, bit-identical to the historical behaviour.
        """
        if rng is None:
            rng = np.random.default_rng()
        if structure_rng is None:
            structure_rng = rng
        cfg = self.config
        sizes = self.level_sizes(structure_rng)
        levels: List[List[int]] = []
        next_id = 0
        for width in sizes:
            levels.append(list(range(next_id, next_id + width)))
            next_id += width

        edge_list = self._edges(levels, structure_rng)

        mean_costs = rng.uniform(0.0, 2.0 * cfg.w_dag, size=cfg.v)
        if cfg.heterogeneity == "consistent":
            # machine-speed model: one factor per CPU from the beta band
            factors = rng.uniform(
                1.0 - cfg.beta / 2.0, 1.0 + cfg.beta / 2.0, size=cfg.n_procs
            )
            w = mean_costs[:, None] * factors[None, :]
        else:
            low = mean_costs * (1.0 - cfg.beta / 2.0)
            high = mean_costs * (1.0 + cfg.beta / 2.0)
            w = rng.uniform(
                low[:, None], high[:, None], size=(cfg.v, cfg.n_procs)
            )

        # bulk-build the graph: same rows, edges and insertion order the
        # incremental add_task/add_edge path produced, without per-item
        # validation.  No RNG draws happen past this point, so the draw
        # sequence (and with it every sweep result) is unchanged.
        edge_src = [src for src, _ in edge_list]
        edge_dst = [dst for _, dst in edge_list]
        if edge_list:
            src_arr = np.fromiter(edge_src, dtype=np.intp, count=len(edge_src))
            edge_costs = (mean_costs[src_arr] * cfg.ccr).tolist()
        else:
            edge_costs = []
        return TaskGraph._bulk(
            cfg.n_procs, list(w), None, edge_src, edge_dst, edge_costs
        )


def generate_random_graph(
    config: GeneratorConfig,
    rng: Optional[np.random.Generator] = None,
    structure_rng: Optional[np.random.Generator] = None,
) -> TaskGraph:
    """One-shot convenience wrapper around :class:`RandomDAGGenerator`."""
    return RandomDAGGenerator(config).generate(rng, structure_rng)

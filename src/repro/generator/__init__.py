"""Synthetic random task-graph generator (Section V-B).

Re-implements the paper's generator: the Topcuoglu-style parameter set
(V, alpha, density, CCR, number of CPUs, W_dag, beta -- Table II), the
cost model of Eqs. (13)-(14), and support for multi-entry / multi-exit
graphs that the evaluation folds into single-entry/exit form with
zero-cost pseudo tasks.
"""

from repro.generator.parameters import GeneratorConfig, TABLE_II, iter_table_ii
from repro.generator.random_dag import RandomDAGGenerator, generate_random_graph

__all__ = [
    "GeneratorConfig",
    "TABLE_II",
    "iter_table_ii",
    "RandomDAGGenerator",
    "generate_random_graph",
]

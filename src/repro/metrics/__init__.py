"""Comparison metrics of the paper's Section V-A.

* :func:`slr` -- Scheduling Length Ratio (Eq. 10): makespan over the
  critical-path lower bound;
* :func:`speedup` -- Eq. 11: best single-CPU sequential time over makespan;
* :func:`efficiency` -- Eq. 12: speedup per CPU;
* critical-path lower bounds and aggregation helpers for averaged runs.
"""

from repro.metrics.critical_path import (
    critical_path_min,
    cp_min_lower_bound,
    critical_path_mean,
)
from repro.metrics.metrics import (
    slr,
    speedup,
    efficiency,
    sequential_time,
    evaluate,
    MetricReport,
)
from repro.metrics.stats import RunningStats, summarize

__all__ = [
    "critical_path_min",
    "critical_path_mean",
    "cp_min_lower_bound",
    "slr",
    "speedup",
    "efficiency",
    "sequential_time",
    "evaluate",
    "MetricReport",
    "RunningStats",
    "summarize",
]

"""SLR, speedup and efficiency (Eqs. 10-12)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.critical_path import cp_min_lower_bound
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = [
    "slr",
    "speedup",
    "efficiency",
    "sequential_time",
    "evaluate",
    "MetricReport",
]


def sequential_time(graph: TaskGraph) -> float:
    """Eq. 11 numerator: the best single-CPU sequential execution time
    (minimum over CPUs of the column sum of ``W``)."""
    if graph.n_tasks == 0:
        return 0.0
    from repro.model.compiled import compile_graph, compiled_enabled

    if compiled_enabled():
        return compile_graph(graph).sequential_time()
    return float(graph.cost_matrix().sum(axis=0).min())


def slr(graph: TaskGraph, makespan: float) -> float:
    """Scheduling Length Ratio (Eq. 10). Values >= 1; lower is better."""
    if makespan < 0:
        raise ValueError("makespan must be >= 0")
    bound = cp_min_lower_bound(graph)
    if bound <= 0:
        raise ValueError(
            "critical-path lower bound is zero (all-zero-cost graph); SLR undefined"
        )
    return makespan / bound


def speedup(graph: TaskGraph, makespan: float) -> float:
    """Speedup (Eq. 11): sequential time over parallel makespan."""
    if makespan <= 0:
        raise ValueError("makespan must be positive for speedup")
    return sequential_time(graph) / makespan


def efficiency(graph: TaskGraph, makespan: float) -> float:
    """Efficiency (Eq. 12): speedup per CPU; 1.0 is ideal scaling."""
    return speedup(graph, makespan) / graph.n_procs


@dataclass(frozen=True)
class MetricReport:
    """All Section V-A metrics for one (graph, schedule) pair."""

    makespan: float
    slr: float
    speedup: float
    efficiency: float

    def as_dict(self) -> dict:
        """The metrics as a plain dict (for serialization)."""
        return {
            "makespan": self.makespan,
            "slr": self.slr,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
        }


def evaluate(graph: TaskGraph, schedule: Schedule) -> MetricReport:
    """Compute every comparison metric for a finished schedule."""
    makespan = schedule.makespan
    return MetricReport(
        makespan=makespan,
        slr=slr(graph, makespan),
        speedup=speedup(graph, makespan),
        efficiency=efficiency(graph, makespan),
    )

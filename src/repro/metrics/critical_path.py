"""Critical-path computations for the SLR denominator (Eq. 10).

The paper's SLR divides the makespan by ``sum over CP_MIN of min_p W(i,p)``
-- the length of the critical path when every task runs at its fastest.
Following the HEFT paper's convention (which the HDLTS paper cites for its
metrics), ``CP_MIN`` is the longest entry-to-exit chain measured in
*minimum computation costs only*: communication is excluded from the bound
so that it is a true lower bound on any schedule's makespan (a schedule on
one CPU pays no communication), guaranteeing ``SLR >= 1``.

``critical_path_mean`` additionally provides the mean-cost + communication
critical path used descriptively elsewhere in the literature.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph

__all__ = ["critical_path_min", "cp_min_lower_bound", "critical_path_mean"]


def _longest_path(
    graph: TaskGraph, node_weight: np.ndarray, use_comm: bool
) -> Tuple[float, List[int]]:
    """Longest path (weight, task chain) over the DAG."""
    n = graph.n_tasks
    dist = np.full(n, -np.inf)
    parent = np.full(n, -1, dtype=int)
    for task in graph.topological_order():
        if graph.in_degree(task) == 0:
            dist[task] = node_weight[task]
    for task in graph.topological_order():
        for succ in graph.successors(task):
            comm = graph.comm_cost(task, succ) if use_comm else 0.0
            candidate = dist[task] + comm + node_weight[succ]
            if candidate > dist[succ]:
                dist[succ] = candidate
                parent[succ] = task
    end = int(np.argmax(dist))
    path = [end]
    while parent[path[-1]] >= 0:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return float(dist[end]), path


def critical_path_min(graph: TaskGraph) -> Tuple[float, List[int]]:
    """``CP_MIN``: longest chain of minimum computation costs.

    Returns ``(length, tasks)`` where ``length`` is the Eq. 10
    denominator -- a lower bound on the makespan of any schedule.
    """
    min_costs = graph.cost_matrix().min(axis=1)
    return _longest_path(graph, min_costs, use_comm=False)


def cp_min_lower_bound(graph: TaskGraph) -> float:
    """Just the Eq. 10 denominator value.

    Compiled layer enabled: computed once per graph instance (every
    scheduler of a paired replication divides by the same bound, so the
    longest-path pass runs once instead of once per scheduler).
    """
    from repro.model.compiled import compile_graph, compiled_enabled

    if compiled_enabled():
        return compile_graph(graph).cp_min_bound()
    return critical_path_min(graph)[0]


def critical_path_mean(graph: TaskGraph) -> Tuple[float, List[int]]:
    """Mean-cost critical path *including* communication (descriptive)."""
    mean_costs = graph.cost_matrix().mean(axis=1)
    return _longest_path(graph, mean_costs, use_comm=True)

"""Aggregation of metrics across replicated runs.

The paper averages every figure's metric over up to 1000 randomized runs
per parameter combination.  :class:`RunningStats` is a Welford
accumulator so sweeps never hold all samples in memory; :func:`summarize`
is the convenience wrapper for in-memory sample lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["RunningStats", "summarize"]


class RunningStats:
    """Welford's online mean/variance accumulator."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one finite sample into the accumulator."""
        if not math.isfinite(value):
            raise ValueError(f"non-finite sample: {value}")
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold every sample of an iterable."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero for a single sample."""
        if self.n == 0:
            raise ValueError("no samples")
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n else 0.0

    @property
    def min(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._max

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI for the mean (default ~95%)."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


@dataclass(frozen=True)
class Summary:
    n: int
    mean: float
    std: float
    stderr: float
    min: float
    max: float


def summarize(values: Iterable[float]) -> Summary:
    """One-shot summary of a sample list."""
    stats = RunningStats()
    stats.extend(values)
    return Summary(
        n=stats.n,
        mean=stats.mean,
        std=stats.std,
        stderr=stats.stderr,
        min=stats.min,
        max=stats.max,
    )

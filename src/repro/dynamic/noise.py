"""Execution-time perturbation models.

Each factory returns a ``duration_fn(task, proc) -> float`` suitable for
:class:`~repro.schedule.simulator.ScheduleSimulator` and
:class:`~repro.dynamic.online.OnlineHDLTS`.  Draws are memoized per
``(task, proc)`` so the *same* realized duration is observed no matter
how many times or in which order a run queries it -- this is what makes
"static schedule under noise" and "online scheduling under noise"
comparable on identical realizations.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph

__all__ = ["exact_durations", "gaussian_noise", "uniform_noise"]

DurationFn = Callable[[int, int], float]


def exact_durations(graph: TaskGraph) -> DurationFn:
    """No perturbation: realized durations equal the estimates."""
    return graph.cost


def _memoized(draw: Callable[[int, int], float]) -> DurationFn:
    cache: Dict[Tuple[int, int], float] = {}

    def duration(task: int, proc: int) -> float:
        key = (task, proc)
        if key not in cache:
            cache[key] = draw(task, proc)
        return cache[key]

    return duration


def gaussian_noise(
    graph: TaskGraph, sigma: float, rng: np.random.Generator
) -> DurationFn:
    """Multiplicative gaussian noise: ``d = W * max(eps, N(1, sigma))``.

    ``sigma`` is the relative standard deviation (0.2 = 20% uncertainty).
    Factors are clipped at 5% so durations stay positive.
    """
    if sigma < 0:
        raise ValueError("sigma must be >= 0")

    def draw(task: int, proc: int) -> float:
        factor = max(0.05, rng.normal(1.0, sigma))
        return graph.cost(task, proc) * factor

    return _memoized(draw)


def uniform_noise(
    graph: TaskGraph, spread: float, rng: np.random.Generator
) -> DurationFn:
    """Multiplicative uniform noise: ``d = W * U(1 - spread, 1 + spread)``."""
    if not 0 <= spread < 1:
        raise ValueError("spread must lie in [0, 1)")

    def draw(task: int, proc: int) -> float:
        return graph.cost(task, proc) * rng.uniform(1.0 - spread, 1.0 + spread)

    return _memoized(draw)

"""Robustness analysis of schedulers under execution-time uncertainty.

The paper's closing argument is that HDLTS "can increase the efficiency
of scheduling for uncertain conditions".  This module measures that:
for a scheduler and a noise level, draw many (graph, realization)
pairs, execute both arms (frozen static schedule vs online decisions)
and summarize the realized-makespan distribution -- mean, spread, tail
(p95) and the *robustness ratio* mean/p95 (1.0 = no tail at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.base import Scheduler
from repro.core.hdlts import HDLTS
from repro.dynamic.noise import gaussian_noise
from repro.dynamic.online import OnlineHDLTS, replay_static
from repro.model.task_graph import TaskGraph

__all__ = ["RobustnessReport", "robustness_report"]

GraphFactory = Callable[[np.random.Generator], TaskGraph]


@dataclass(frozen=True)
class RobustnessReport:
    """Realized-makespan distribution for one arm."""

    arm: str
    sigma: float
    n: int
    mean: float
    std: float
    p95: float
    worst: float

    @property
    def robustness(self) -> float:
        """mean / p95 -- closer to 1.0 means a thinner bad tail."""
        return self.mean / self.p95 if self.p95 > 0 else 1.0


def _summary(arm: str, sigma: float, samples: List[float]) -> RobustnessReport:
    arr = np.asarray(samples)
    return RobustnessReport(
        arm=arm,
        sigma=sigma,
        n=arr.size,
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        p95=float(np.percentile(arr, 95)),
        worst=float(arr.max()),
    )


def robustness_report(
    make_graph: GraphFactory,
    sigma: float,
    reps: int = 30,
    seed: int = 0,
    static_scheduler: Optional[Scheduler] = None,
) -> tuple:
    """Compare static-replay and online arms under identical noise.

    Returns ``(static_report, online_report)``.  The same memoized
    realization feeds both arms of each replication, so differences are
    decision differences, not sampling noise.
    """
    if reps < 2:
        raise ValueError("reps must be >= 2")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    scheduler = static_scheduler or HDLTS()
    static_samples: List[float] = []
    online_samples: List[float] = []
    for rep in range(reps):
        rng = np.random.default_rng([seed, rep])
        graph = make_graph(rng)
        if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
            graph = graph.normalized()
        noise = gaussian_noise(graph, sigma, rng)
        plan = scheduler.run(graph).schedule
        static_samples.append(replay_static(graph, plan, noise).makespan)
        online_samples.append(OnlineHDLTS().execute(graph, noise).makespan)
    return (
        _summary("static", sigma, static_samples),
        _summary("online", sigma, online_samples),
    )

"""Online HDLTS: the penalty-value loop run at execution time.

``OnlineHDLTS`` makes exactly the decisions HDLTS would -- dynamic ITQ,
penalty-value selection, min-EFT mapping, effective entry duplication --
but against the *realized* platform: estimated costs ``W`` drive the
decisions while actual durations come from a perturbation model, and
CPUs may fail-stop mid-run.  A task caught on a failing CPU is lost and
re-dispatched when the failure is detected; the dead CPU is excluded
from then on.

``replay_static`` is the comparison arm: a schedule computed offline by
any static scheduler, executed under the same realized durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.itq import IndependentTaskQueue
from repro.dynamic.failures import FailStop, failure_times
from repro.dynamic.noise import DurationFn, exact_durations
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule
from repro.schedule.simulator import ScheduleSimulator

__all__ = ["OnlineHDLTS", "OnlineResult", "OnlineRecord", "replay_static"]


@dataclass(frozen=True)
class OnlineRecord:
    """One dispatch (successful or lost) during an online run."""

    task: int
    proc: int
    start: float
    finish: float
    duplicate: bool = False
    lost: bool = False


@dataclass
class OnlineResult:
    """Realized execution of an online (or replayed static) run."""

    makespan: float
    finish_times: Dict[int, float]
    proc_of: Dict[int, int]
    records: List[OnlineRecord] = field(default_factory=list)
    n_lost: int = 0
    dead_procs: Tuple[int, ...] = ()

    def finish_of(self, task: int) -> float:
        """Realized finish time of ``task``."""
        return self.finish_times[task]


class AllProcessorsFailed(RuntimeError):
    """Every CPU died before the workflow finished."""


class OnlineHDLTS:
    """Runtime HDLTS under uncertainty (the paper's future-work mode)."""

    name = "OnlineHDLTS"

    def __init__(self, duplicate_entry: bool = True) -> None:
        self.duplicate_entry = duplicate_entry

    # ------------------------------------------------------------------
    def execute(
        self,
        graph: TaskGraph,
        duration_fn: Optional[DurationFn] = None,
        failures: Optional[Iterable[FailStop]] = None,
    ) -> OnlineResult:
        """Run the workflow online; returns the realized execution."""
        if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
            graph = graph.normalized()
        if duration_fn is None:
            duration_fn = exact_durations(graph)
        entry = graph.entry_task
        n_procs = graph.n_procs
        w = graph.cost_matrix()
        fail_at = failure_times(failures, n_procs)

        avail = np.zeros(n_procs)
        # an entry duplicate executes over [0, W(entry, k)) exactly like
        # offline Algorithm 1; dup_free[k] is the largest window still
        # idle at time zero, mirroring the timeline's fits(0, duration)
        # semantics (zero-duration slots at t=0 occupy nothing)
        dup_free = np.full(n_procs, np.inf)
        dead: set = set()

        def note_interval(proc: int, start: float, finish: float) -> None:
            if finish - start <= 1e-9:  # point slot blocks only beyond it
                if start > 0.0:
                    dup_free[proc] = min(dup_free[proc], start)
            elif start <= 0.0:
                dup_free[proc] = 0.0
            else:
                dup_free[proc] = min(dup_free[proc], start)

        def dup_fits(proc: int, duration: float) -> bool:
            return duration <= 1e-9 or duration <= dup_free[proc] + 1e-9
        # realized copies of each task's output: task -> [(proc, finish)]
        copies: Dict[int, List[Tuple[int, float]]] = {}
        finish_times: Dict[int, float] = {}
        proc_of: Dict[int, int] = {}
        records: List[OnlineRecord] = []
        n_lost = 0

        def arrival(parent: int, child: int, proc: int) -> float:
            comm = graph.comm_cost(parent, child)
            return min(
                fin + (0.0 if cproc == proc else comm)
                for cproc, fin in copies[parent]
            )

        def ready_row(task: int, floor: float) -> np.ndarray:
            row = np.full(n_procs, floor)
            for parent in graph.predecessors(task):
                for proc in range(n_procs):
                    t = arrival(parent, task, proc)
                    # effective entry duplication, online flavour: a copy
                    # of the entry can start *now* (at avail) on this CPU
                    if (
                        self.duplicate_entry
                        and parent == entry
                        and not any(c == proc for c, _ in copies[entry])
                        and dup_fits(proc, w[entry, proc])
                    ):
                        t = min(t, w[entry, proc])
                    if t > row[proc]:
                        row[proc] = t
            return row

        bus = obs.get_bus()

        def record(entry_record: OnlineRecord) -> None:
            records.append(entry_record)
            if bus.active:
                bus.emit(
                    "dynamic.dispatch",
                    task=entry_record.task,
                    proc=entry_record.proc,
                    start=entry_record.start,
                    finish=entry_record.finish,
                    duplicate=entry_record.duplicate,
                    lost=entry_record.lost,
                )
            if entry_record.lost:
                obs.count("online/lost")
            else:
                obs.count("online/dispatches")

        def try_dispatch(task: int, proc: int, ready: float) -> Optional[float]:
            """Run ``task`` on ``proc``; returns realized finish or None
            (lost to a failure, with the CPU marked dead)."""
            nonlocal n_lost
            # materialize an entry duplicate first when it is what makes
            # this CPU attractive (same strict-improvement rule as offline)
            if (
                self.duplicate_entry
                and task != entry
                and entry in graph.predecessors(task)
                and not any(c == proc for c, _ in copies[entry])
            ):
                via_network = arrival(entry, task, proc)
                # Algorithm 1's window: the duplicate runs over [0, W)
                # and must strictly beat the network (estimate-driven,
                # like every other online decision)
                if w[entry, proc] < via_network and dup_fits(
                    proc, w[entry, proc]
                ):
                    # run the duplicate (it may itself be lost)
                    dup_start = 0.0
                    dup_finish = dup_start + duration_fn(entry, proc)
                    tau = fail_at.get(proc, np.inf)
                    if dup_finish > tau:
                        dead.add(proc)
                        avail[proc] = max(avail[proc], tau)
                        note_interval(proc, dup_start, tau)
                        record(
                            OnlineRecord(entry, proc, dup_start, tau, True, True)
                        )
                        n_lost += 1
                        return None
                    avail[proc] = max(avail[proc], dup_finish)
                    note_interval(proc, dup_start, dup_finish)
                    copies[entry].append((proc, dup_finish))
                    record(
                        OnlineRecord(entry, proc, dup_start, dup_finish, True)
                    )
                    # the local copy may tighten the task's ready time
                    ready = self._ready_on(graph, task, proc, arrival)
            start = max(avail[proc], ready)
            duration = duration_fn(task, proc)
            finish = start + duration
            tau = fail_at.get(proc, np.inf)
            if finish > tau:
                dead.add(proc)
                avail[proc] = tau
                note_interval(proc, start, max(start, tau))
                record(
                    OnlineRecord(task, proc, start, max(start, tau), False, True)
                )
                n_lost += 1
                return None
            avail[proc] = finish
            note_interval(proc, start, finish)
            copies.setdefault(task, []).append((proc, finish))
            finish_times[task] = finish
            proc_of[task] = proc
            record(OnlineRecord(task, proc, start, finish))
            return finish

        itq = IndependentTaskQueue(graph)
        while itq:
            ready_list = itq.ready_tasks()
            alive = [p for p in range(n_procs) if p not in dead]
            if not alive:
                raise AllProcessorsFailed(
                    f"all CPUs failed with {graph.n_tasks - len(finish_times)} tasks left"
                )
            rows = np.array([ready_row(t, 0.0) for t in ready_list])
            est = np.maximum(rows, avail[None, :])
            eft = est + w[ready_list]
            eft[:, sorted(dead)] = np.inf
            if len(alive) > 1:
                priorities = np.asarray(eft[:, alive]).std(axis=1, ddof=1)
            else:
                priorities = np.zeros(len(ready_list))
            index = int(np.argmax(priorities))
            task = ready_list[index]

            floor = 0.0
            excluded: set = set(dead)
            while True:
                candidates = [p for p in range(n_procs) if p not in excluded]
                if not candidates:
                    raise AllProcessorsFailed(
                        f"no CPU left for task {task}"
                    )
                row = ready_row(task, floor)
                scores = {
                    p: max(row[p], avail[p]) + w[task, p] for p in candidates
                }
                proc = min(scores, key=lambda p: (scores[p], p))
                finish = try_dispatch(task, proc, row[proc])
                if finish is not None:
                    break
                # failure detected: re-dispatch no earlier than detection
                floor = max(floor, avail[proc])
                excluded = set(dead)
            itq.complete(task)

        makespan = max(finish_times.values(), default=0.0)
        return OnlineResult(
            makespan=makespan,
            finish_times=finish_times,
            proc_of=proc_of,
            records=records,
            n_lost=n_lost,
            dead_procs=tuple(sorted(dead)),
        )

    @staticmethod
    def _ready_on(graph, task, proc, arrival) -> float:
        best = 0.0
        for parent in graph.predecessors(task):
            t = arrival(parent, task, proc)
            if t > best:
                best = t
        return best


def replay_static(
    graph: TaskGraph,
    schedule: Schedule,
    duration_fn: Optional[DurationFn] = None,
) -> OnlineResult:
    """Execute a statically computed schedule under perturbed durations.

    The placement and per-CPU order are fixed; only timing floats.  This
    is the baseline the online mode is compared against (a static
    schedule cannot survive CPU failures, so failures apply only to the
    online arm).
    """
    sim = ScheduleSimulator(graph).run(schedule, duration_fn)
    # one record per committed *copy*: duplicates carry their own
    # realized interval and flag (a task with a duplicate used to be
    # reported twice with the primary's times and no flag)
    records = [
        OnlineRecord(task, proc, start, finish, duplicate)
        for task, proc, start, finish, duplicate in sim.copies
    ]
    return OnlineResult(
        makespan=sim.makespan,
        finish_times=sim.finish_times,
        proc_of=sim.proc_of,
        records=records,
    )

"""Static scheduling with failure repair (re-planning).

The middle ground between the two arms the other modules provide:

* a **frozen static** schedule cannot survive a CPU failure at all;
* **OnlineHDLTS** makes every decision at runtime;
* :func:`repair_after_failure` executes a static schedule normally, and
  when a CPU fail-stops it *re-plans*: work already completed is kept,
  the task lost on the dead CPU and everything not yet dispatched are
  rescheduled with the HDLTS policy on the surviving CPUs, starting at
  the detection instant.

This is the classic checkpoint-and-replan recovery; comparing its
makespan with OnlineHDLTS's quantifies how much of the online mode's
value is *failure handling* versus *continuous re-prioritization*.

Data model (matching :class:`~repro.dynamic.online.OnlineHDLTS`):
outputs of tasks that *completed* before the failure remain readable
even when they were produced on the dead CPU -- the usual
results-are-persisted assumption of fail-stop recovery models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.dynamic.failures import FailStop
from repro.dynamic.noise import DurationFn, exact_durations
from repro.dynamic.online import OnlineRecord, OnlineResult
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["repair_after_failure"]


def _replay_until_failure(
    graph: TaskGraph,
    schedule: Schedule,
    duration_fn: DurationFn,
    failure: FailStop,
) -> Tuple[
    Dict[int, List[Tuple[int, float]]],
    List[float],
    Set[int],
    Dict[int, Tuple[int, float]],
    List[OnlineRecord],
]:
    """Execute the static plan in min-start order until a dispatch is
    lost to the failure; returns (copies, cpu clocks, executed tasks,
    primary placements, records)."""
    position = {t: i for i, t in enumerate(graph.topological_order())}
    queues: List[List[Tuple[int, bool]]] = []
    for timeline in schedule.timelines:
        slots = sorted(
            timeline.slots(),
            key=lambda s: (s.start, s.end, position[s.task]),
        )
        queues.append([(s.task, s.duplicate) for s in slots])

    n_procs = graph.n_procs
    heads = [0] * n_procs
    clocks = [0.0] * n_procs
    copies: Dict[int, List[Tuple[int, float]]] = {}
    executed: Set[int] = set()
    primary_finish: Dict[int, Tuple[int, float]] = {}
    records: List[OnlineRecord] = []

    def arrival(parent: int, child: int, proc: int) -> Optional[float]:
        parent_copies = copies.get(parent)
        if not parent_copies:
            return None
        comm = graph.comm_cost(parent, child)
        return min(
            fin + (0.0 if cproc == proc else comm)
            for cproc, fin in parent_copies
        )

    while True:
        best_proc, best_start = -1, float("inf")
        for proc in range(n_procs):
            if heads[proc] >= len(queues[proc]):
                continue
            task, _ = queues[proc][heads[proc]]
            ready = 0.0
            feasible = True
            for parent in graph.predecessors(task):
                t = arrival(parent, task, proc)
                if t is None:
                    feasible = False
                    break
                ready = max(ready, t)
            if not feasible:
                continue
            start = max(clocks[proc], ready)
            if start < best_start:
                best_proc, best_start = proc, start
        if best_proc < 0:
            break  # plan fully executed (or nothing runnable)
        proc = best_proc
        task, is_dup = queues[proc][heads[proc]]
        duration = duration_fn(task, proc)
        finish = best_start + duration
        if proc == failure.proc and finish > failure.at_time:
            # this dispatch is lost; the failure is now detected
            records.append(
                OnlineRecord(
                    task,
                    proc,
                    best_start,
                    max(best_start, failure.at_time),
                    is_dup,
                    lost=True,
                )
            )
            heads[proc] += 1
            break
        clocks[proc] = finish
        copies.setdefault(task, []).append((proc, finish))
        if not is_dup:
            executed.add(task)
            primary_finish[task] = (proc, finish)
        records.append(OnlineRecord(task, proc, best_start, finish, is_dup))
        heads[proc] += 1
    return copies, clocks, executed, primary_finish, records


def repair_after_failure(
    graph: TaskGraph,
    schedule: Schedule,
    failure: FailStop,
    duration_fn: Optional[DurationFn] = None,
) -> OnlineResult:
    """Execute ``schedule``; on the fail-stop, re-plan with HDLTS.

    Returns the realized execution.  Raises if the graph cannot finish
    on the survivors (single-CPU platform losing its only CPU).
    """
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        raise ValueError("repair expects the (normalized) scheduled graph")
    if duration_fn is None:
        duration_fn = exact_durations(graph)
    if failure.proc >= graph.n_procs:
        raise ValueError("failure names a CPU outside the platform")
    if graph.n_procs == 1:
        raise ValueError("no survivor CPUs to repair onto")

    copies, clocks, executed, primary_finish, records = _replay_until_failure(
        graph, schedule, duration_fn, failure
    )

    detection = failure.at_time
    survivors = [p for p in range(graph.n_procs) if p != failure.proc]
    avail = [max(clocks[p], detection) for p in range(graph.n_procs)]
    w = graph.cost_matrix()

    remaining = [t for t in graph.tasks() if t not in executed]
    indegree = {
        t: sum(1 for p in graph.predecessors(t) if p not in executed)
        for t in remaining
    }
    ready_set = sorted(t for t in remaining if indegree[t] == 0)
    finish_times: Dict[int, float] = {
        t: primary_finish[t][1] for t in executed
    }
    proc_of: Dict[int, int] = {t: primary_finish[t][0] for t in executed}

    def arrival(parent: int, child: int, proc: int) -> float:
        comm = graph.comm_cost(parent, child)
        return min(
            fin + (0.0 if cproc == proc else comm)
            for cproc, fin in copies[parent]
        )

    n_lost = sum(1 for r in records if r.lost)
    # HDLTS loop restricted to survivors, floored at the detection time
    while ready_set:
        rows = np.full((len(ready_set), len(survivors)), detection)
        for i, task in enumerate(ready_set):
            for j, proc in enumerate(survivors):
                ready = detection
                for parent in graph.predecessors(task):
                    ready = max(ready, arrival(parent, task, proc))
                rows[i, j] = ready
        est = np.maximum(
            rows, np.array([avail[p] for p in survivors])[None, :]
        )
        eft = est + w[np.ix_(ready_set, survivors)]
        if len(survivors) > 1:
            priorities = eft.std(axis=1, ddof=1)
        else:
            priorities = np.zeros(len(ready_set))
        i = int(np.argmax(priorities))
        task = ready_set[i]
        j = int(np.argmin(eft[i]))
        proc = survivors[j]
        start = float(est[i, j])
        finish = start + duration_fn(task, proc)
        avail[proc] = finish
        copies.setdefault(task, []).append((proc, finish))
        finish_times[task] = finish
        proc_of[task] = proc
        records.append(OnlineRecord(task, proc, start, finish))
        ready_set.remove(task)
        for succ in graph.successors(task):
            if succ in indegree:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready_set.append(succ)
        ready_set.sort()

    return OnlineResult(
        makespan=max(finish_times.values(), default=0.0),
        finish_times=finish_times,
        proc_of=proc_of,
        records=records,
        n_lost=n_lost,
        dead_procs=(failure.proc,),
    )

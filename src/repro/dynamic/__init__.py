"""Dynamic / uncertain-environment extension (the paper's future work).

The paper argues HDLTS suits dynamic environments because every decision
is made from live platform state; its conclusion defers that evaluation
to future work.  This package builds it:

* :mod:`repro.dynamic.noise` -- execution-time perturbation models
  (multiplicative gaussian / uniform noise over the estimated ``W``);
* :mod:`repro.dynamic.failures` -- fail-stop CPU failures;
* :mod:`repro.dynamic.online` -- :class:`OnlineHDLTS`, which re-runs the
  ITQ/penalty-value loop *at runtime*: decisions use estimated costs, but
  the platform state they see is the realized one.  Compared against
  executing a statically computed schedule under the same perturbations
  (via :class:`~repro.schedule.simulator.ScheduleSimulator`).
"""

from repro.dynamic.noise import exact_durations, gaussian_noise, uniform_noise
from repro.dynamic.failures import FailStop
from repro.dynamic.online import OnlineHDLTS, OnlineResult, replay_static
from repro.dynamic.robustness import RobustnessReport, robustness_report
from repro.dynamic.repair import repair_after_failure

__all__ = [
    "exact_durations",
    "gaussian_noise",
    "uniform_noise",
    "FailStop",
    "OnlineHDLTS",
    "OnlineResult",
    "replay_static",
    "RobustnessReport",
    "robustness_report",
    "repair_after_failure",
]

"""Fail-stop CPU failure model.

A CPU dies at ``at_time`` and never recovers.  The online scheduler does
*not* know the failure in advance: a task caught running on the CPU when
it dies is lost and must be re-dispatched, and the failure becomes known
to the scheduler only at ``at_time`` (detection is immediate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

__all__ = ["FailStop"]


@dataclass(frozen=True)
class FailStop:
    """One fail-stop event."""

    proc: int
    at_time: float

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ValueError("proc must be >= 0")
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")


def failure_times(
    failures: Optional[Iterable[FailStop]], n_procs: int
) -> Dict[int, float]:
    """Earliest failure time per CPU (validated against the platform)."""
    table: Dict[int, float] = {}
    for failure in failures or ():
        if failure.proc >= n_procs:
            raise ValueError(
                f"failure on CPU {failure.proc} but platform has {n_procs}"
            )
        current = table.get(failure.proc)
        if current is None or failure.at_time < current:
            table[failure.proc] = failure.at_time
    return table

"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
table1        reproduce Table I and the Fig. 1 makespan comparison
figure KEY    run one evaluation figure (fig2..fig14) and print the table
all-figures   run every figure (EXPERIMENTS.md is generated from this)
run KEY       run a figure inside a resumable run directory (checkpointed)
resume DIR    resume an interrupted ``run`` from its chunk ledger
top DIR       live terminal view of a run or campaign directory
status DIR    one-shot progress report over a run or campaign directory
campaign      sharded parameter campaigns: init / tasks / run-shard /
              merge / status (columnar shard stores, streaming merge)
submit DIR    enqueue a sweep job into a service directory, get a ticket
serve DIR     run daemon workers draining the service queue
ps DIR        list a service directory's jobs and workers
watch DIR T   follow ticket T; print its merged tables when done
cancel DIR T  cancel a queued or running ticket
schedule      schedule one workflow instance and show the Gantt chart
generate      draw a random task graph and print its shape statistics
dynamic       online-HDLTS vs static-schedule comparison under noise/failures
profile       run schedulers under full instrumentation, print the breakdown

Every invocation builds one :class:`~repro.runtime.context.RunContext`
from its flags and activates it for the whole command -- no process
globals are flipped; see docs/architecture.md.

The ``schedule``, ``figure`` and ``dynamic`` commands accept
``--events FILE`` (stream every observability event as JSONL) and
``--metrics`` (record and print counters/timers); ``profile`` is the
dedicated deep-dive.  ``run``/``resume`` default their sinks into
``<run_dir>/telemetry/`` and add ``--trace`` (hierarchical spans merged
into a Chrome trace); ``schedule --trace-json`` records a phase-level
trace with the computed schedule's Gantt overlaid.  See
docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

#: workflow choices shared by schedule/export/diagnose/profile
#: (``fig1`` is an alias for the paper's worked example)
_WORKFLOWS = ["paper", "fig1", "fft", "montage", "molecular", "gaussian", "random"]


def _add_workflow_args(parser: argparse.ArgumentParser) -> None:
    """The common workflow-instance knobs."""
    parser.add_argument("--workflow", default="paper", choices=_WORKFLOWS)
    parser.add_argument("--scheduler", default="HDLTS")
    parser.add_argument(
        "--size", type=int, default=8,
        help="fft points / montage nodes / gaussian matrix size / random tasks",
    )
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--ccr", type=float, default=1.0)
    parser.add_argument("--beta", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    """Worker-pool knobs shared by figure/all-figures/run."""
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=5,
        help="replications per worker chunk (parallel runs)",
    )
    parser.add_argument(
        "--start-method",
        default=None,
        dest="start_method",
        choices=["fork", "spawn", "forkserver", "serial"],
        help="worker pool start method (default: fork where available, "
        "then spawn, else serial)",
    )
    parser.add_argument(
        "--batch",
        default="auto",
        choices=["auto", "off"],
        help="batched multi-DAG kernel: 'auto' groups same-shape "
        "replications per x point, 'off' forces the scalar path "
        "(bit-identical results either way)",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by schedule/figure/dynamic."""
    parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="write every observability event as JSONL to FILE",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="record counters/timers and print them after the run",
    )


def _add_stream_workload_args(
    parser: argparse.ArgumentParser, seed: bool = True
) -> None:
    """The job-stream workload knobs shared by stream run/sweep.

    ``seed=False`` skips ``--seed`` for parsers that define their own
    (``repro submit`` shares one seed across figure and stream sweeps).
    """
    parser.add_argument("--jobs", type=int, default=10, help="jobs per stream")
    parser.add_argument("--v", type=int, default=20, help="tasks per job DAG")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--ccr", type=float, default=1.0)
    parser.add_argument("--beta", type=float, default=1.0)
    parser.add_argument(
        "--sigma", type=float, default=0.0,
        help="relative duration noise (0 = exact execution)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="Poisson arrival rate in jobs per time unit (default 0.02)",
    )
    parser.add_argument(
        "--interval", type=float, default=None,
        help="deterministic inter-arrival interval (excludes --rate)",
    )
    if seed:
        parser.add_argument("--seed", type=int, default=0)


def _add_run_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability flags of run/resume (sinks default into telemetry/)."""
    parser.add_argument(
        "--events", nargs="?", const="", default=None, metavar="FILE",
        help="stream every observability event as JSONL to FILE "
        "(default: <run_dir>/telemetry/events.jsonl)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="record counters/timers; print them and write a Prometheus "
        "textfile snapshot to <run_dir>/telemetry/metrics.prom",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record hierarchical spans in every process and merge them "
        "into a Chrome trace at <run_dir>/telemetry/trace.json",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HDLTS (IPPS 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table I on the Fig. 1 graph")

    p_fig = sub.add_parser("figure", help="run one evaluation figure")
    p_fig.add_argument("key", help="fig2, fig3, fig4, fig6, fig7, fig8, fig10, fig11, fig13, fig14")
    p_fig.add_argument("--reps", type=int, default=30, help="replications per point")
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--full", action="store_true", help="fig3: include 5000/10000 tasks")
    p_fig.add_argument("--validate", action="store_true", help="feasibility-check every schedule")
    _add_parallel_args(p_fig)
    p_fig.add_argument("--chart", action="store_true", help="also render an ASCII line chart")
    p_fig.add_argument("--csv", default=None, metavar="FILE", help="also write tidy CSV to FILE")
    _add_obs_args(p_fig)

    p_all = sub.add_parser("all-figures", help="run every figure")
    p_all.add_argument("--reps", type=int, default=30)
    p_all.add_argument("--seed", type=int, default=0)
    p_all.add_argument("--full", action="store_true")
    _add_parallel_args(p_all)

    p_run = sub.add_parser(
        "run", help="run one figure checkpointed into a resumable run directory"
    )
    p_run.add_argument("key", help="figure key (fig2 .. fig14)")
    p_run.add_argument("--reps", type=int, default=30, help="replications per point")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--full", action="store_true", help="fig3: include 5000/10000 tasks")
    p_run.add_argument("--validate", action="store_true", help="feasibility-check every schedule")
    _add_parallel_args(p_run)
    p_run.add_argument(
        "--run-dir", default=None, dest="run_dir", metavar="DIR",
        help="run directory holding manifest + chunk ledger (default runs/KEY)",
    )
    p_run.add_argument("--csv", default=None, metavar="FILE", help="also write tidy CSV to FILE")
    _add_run_obs_args(p_run)

    p_res = sub.add_parser(
        "resume", help="resume an interrupted run from its chunk ledger"
    )
    p_res.add_argument("run_dir", metavar="RUN_DIR", help="directory written by 'repro run'")
    p_res.add_argument("--csv", default=None, metavar="FILE", help="also write tidy CSV to FILE")
    _add_run_obs_args(p_res)

    p_top = sub.add_parser(
        "top", help="live terminal view of a run or campaign directory"
    )
    p_top.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="directory written by 'repro run' or 'repro campaign init'",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between repaints (live mode)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (CI / scripting)",
    )

    p_status = sub.add_parser(
        "status", help="one-shot progress report over a run or campaign directory"
    )
    p_status.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="directory written by 'repro run' or 'repro campaign init'",
    )
    p_status.add_argument(
        "--json", action="store_true", dest="json_out",
        help="emit the machine-readable status document "
        "(repro.status/1 or repro.campaign-status/1)",
    )

    p_camp = sub.add_parser(
        "campaign",
        help="sharded parameter campaigns with columnar result stores",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    c_init = camp_sub.add_parser(
        "init", help="write a campaign spec and empty shard layout"
    )
    c_init.add_argument("dir", metavar="DIR", help="campaign directory to create")
    c_init.add_argument(
        "--figures", default=None, metavar="KEY,KEY,...",
        help="comma-separated figure keys to sweep (fig2 .. fig14)",
    )
    c_init.add_argument(
        "--grid", type=int, default=None, metavar="N",
        help="also sweep N sampled Table II configurations "
        "(the factorial protocol, shardable)",
    )
    c_init.add_argument("--full", action="store_true", help="fig3: include 5000/10000 tasks")
    c_init.add_argument("--reps", type=int, default=30, help="replications per point")
    c_init.add_argument("--shards", type=int, default=2, help="independently runnable shards")
    c_init.add_argument("--seed", type=int, default=0)
    c_init.add_argument(
        "--chunk-size", type=int, default=5, dest="chunk_size",
        help="replications per task (the unit of kill/resume granularity)",
    )
    c_init.add_argument("--validate", action="store_true", help="feasibility-check every schedule")
    c_init.add_argument("--batch", default="auto", choices=["auto", "off"])

    c_tasks = camp_sub.add_parser(
        "tasks", help="list the campaign's deterministic task ids"
    )
    c_tasks.add_argument("dir", metavar="DIR")
    c_tasks.add_argument("--shard", type=int, default=None, help="only this shard's tasks")
    c_tasks.add_argument("--limit", type=int, default=None, help="print at most N tasks")

    c_shard = camp_sub.add_parser(
        "run-shard", help="run (or resume) one shard to completion"
    )
    c_shard.add_argument("dir", metavar="DIR")
    c_shard.add_argument("shard", type=int, help="shard index (0-based)")
    c_shard.add_argument(
        "--max-tasks", type=int, default=None, dest="max_tasks",
        help="stop after N new tasks (testing / draining)",
    )

    c_merge = camp_sub.add_parser(
        "merge", help="streaming-merge every shard store into final stats"
    )
    c_merge.add_argument("dir", metavar="DIR")
    c_merge.add_argument(
        "--partial", action="store_true",
        help="merge whatever tasks have completed (live preview) "
        "instead of requiring a complete campaign",
    )
    c_merge.add_argument(
        "--out", default=None, metavar="FILE",
        help="merged columnar table (.npz, or .parquet with pyarrow "
        "installed); default DIR/merged.npz",
    )
    c_merge.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write tidy CSV (single-sweep campaigns)",
    )

    c_status = camp_sub.add_parser(
        "status", help="one-shot progress report over a campaign directory"
    )
    c_status.add_argument("dir", metavar="DIR")
    c_status.add_argument(
        "--json", action="store_true", dest="json_out",
        help="emit the machine-readable repro.campaign-status/1 document",
    )

    p_submit = sub.add_parser(
        "submit",
        help="enqueue a sweep job into a service directory, print the ticket",
    )
    p_submit.add_argument(
        "dir", metavar="DIR",
        help="service directory (created, with its store, on first use)",
    )
    p_submit.add_argument(
        "--figures", default=None, metavar="KEY,KEY,...",
        help="comma-separated figure keys to sweep (fig2 .. fig14)",
    )
    p_submit.add_argument(
        "--grid", type=int, default=None, metavar="N",
        help="also sweep N sampled Table II configurations",
    )
    p_submit.add_argument(
        "--full", action="store_true", help="fig3: include 5000/10000 tasks"
    )
    p_submit.add_argument(
        "--stream", default=None, metavar="AXIS", dest="stream",
        choices=["rate", "interval", "n_jobs"],
        help="also submit a job-stream sweep over AXIS "
        "(workload knobs below apply)",
    )
    _add_stream_workload_args(p_submit, seed=False)
    p_submit.add_argument(
        "--x", default=None, metavar="X1,X2,...",
        help="x values for the swept stream axis (defaults per axis)",
    )
    p_submit.add_argument(
        "--metric", default="sojourn",
        help="stream metric per replication (sojourn, p95_sojourn, ...)",
    )
    p_submit.add_argument(
        "--policies", default=None, metavar="A,B,...",
        help="stream policies (default: OnlineHDLTS + static baselines)",
    )
    p_submit.add_argument("--reps", type=int, default=30,
                          help="replications per point")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument(
        "--chunk-size", type=int, default=5, dest="chunk_size",
        help="replications per task (the unit of lease/reclaim granularity)",
    )
    p_submit.add_argument("--validate", action="store_true",
                          help="feasibility-check every schedule")
    p_submit.add_argument("--batch", default="auto", choices=["auto", "off"])
    p_submit.add_argument("--title", default="", help="free-form job label")
    p_submit.add_argument(
        "--json", action="store_true", dest="json_out",
        help="emit the machine-readable repro.submit/1 document",
    )

    p_serve = sub.add_parser(
        "serve", help="run daemon workers draining a service directory"
    )
    p_serve.add_argument("dir", metavar="DIR", help="service directory")
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="daemon worker count (>1 spawns one OS process each)",
    )
    p_serve.add_argument(
        "--lease", type=float, default=60.0, dest="lease_s",
        help="task lease duration in seconds (crash-reclaim horizon)",
    )
    p_serve.add_argument(
        "--poll", type=float, default=0.5, dest="poll_s",
        help="idle sleep between claim attempts, seconds",
    )
    p_serve.add_argument(
        "--drain", action="store_true",
        help="exit once nothing is claimable or leased, instead of idling",
    )
    p_serve.add_argument(
        "--max-tasks", type=int, default=None, dest="max_tasks",
        help="stop each worker after N committed tasks (testing)",
    )

    p_ps = sub.add_parser(
        "ps", help="list a service directory's jobs and workers"
    )
    p_ps.add_argument("dir", metavar="DIR", help="service directory")
    p_ps.add_argument(
        "--json", action="store_true", dest="json_out",
        help="emit the machine-readable repro.ps/1 document",
    )

    p_watch = sub.add_parser(
        "watch",
        help="follow one ticket; print its merged sweep tables when done",
    )
    p_watch.add_argument("dir", metavar="DIR", help="service directory")
    p_watch.add_argument("ticket", metavar="TICKET",
                         help="ticket printed by 'repro submit'")
    p_watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between status polls",
    )
    p_watch.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write tidy CSV to FILE (single-sweep jobs)",
    )

    p_cancel = sub.add_parser(
        "cancel", help="cancel a queued or running ticket"
    )
    p_cancel.add_argument("dir", metavar="DIR", help="service directory")
    p_cancel.add_argument("ticket", metavar="TICKET")

    p_sched = sub.add_parser("schedule", help="schedule one workflow instance")
    _add_workflow_args(p_sched)
    p_sched.add_argument("--trace", action="store_true", help="print the step trace (HDLTS only)")
    p_sched.add_argument(
        "--trace-json", default=None, metavar="FILE", dest="trace_json",
        help="record phase-level spans and write a Chrome trace "
        "(with the schedule's Gantt overlaid) to FILE",
    )
    _add_obs_args(p_sched)

    p_gen = sub.add_parser("generate", help="generate a random DAG, print stats")
    p_gen.add_argument("--v", type=int, default=100)
    p_gen.add_argument("--alpha", type=float, default=1.0)
    p_gen.add_argument("--density", type=int, default=3)
    p_gen.add_argument("--ccr", type=float, default=1.0)
    p_gen.add_argument("--procs", type=int, default=4)
    p_gen.add_argument("--wdag", type=float, default=50.0)
    p_gen.add_argument("--beta", type=float, default=1.0)
    p_gen.add_argument("--seed", type=int, default=0)

    p_exp = sub.add_parser("export", help="schedule a workflow, export graph + schedule")
    _add_workflow_args(p_exp)
    p_exp.add_argument("--out", default=".", help="output directory")
    p_exp.add_argument("--format", default="all", choices=["json", "dot", "all"])

    p_diag = sub.add_parser("diagnose", help="schedule a workflow, print diagnostics")
    _add_workflow_args(p_diag)

    p_prof = sub.add_parser(
        "profile",
        help="run schedulers fully instrumented, print the phase breakdown",
    )
    _add_workflow_args(p_prof)
    p_prof.add_argument(
        "--repeat", type=int, default=1,
        help="instrumented runs per scheduler (timings accumulate)",
    )
    p_prof.add_argument(
        "--json", default=None, metavar="FILE", dest="json_out",
        help="also write the machine-readable profile document to FILE",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="invariant fuzz campaign over every scheduler and engine combo",
    )
    p_fuzz.add_argument("--instances", type=int, default=100,
                        help="random DAG instances to draw")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (instance i uses seed [seed, i])")
    p_fuzz.add_argument(
        "--schedulers", default=None, metavar="A,B,...",
        help="comma-separated registry names (default: every scheduler)",
    )
    p_fuzz.add_argument(
        "--corpus", default=None, metavar="FILE",
        help="append shrunk reproducers to this JSONL corpus file",
    )
    p_fuzz.add_argument(
        "--emit-golden", default=None, metavar="FILE", dest="emit_golden",
        help="pin every instance's makespans as golden corpus entries",
    )
    p_fuzz.add_argument(
        "--inject", default=None, choices=["wrong-duration", "early-start"],
        help="corrupt every schedule post-build (oracle smoke test; "
        "violations become the expected outcome)",
    )
    p_fuzz.add_argument(
        "--metamorphic-every", type=int, default=4, dest="metamorphic_every",
        help="run the metamorphic battery every k-th instance (0 = never)",
    )
    p_fuzz.add_argument(
        "--no-exact", action="store_false", dest="exact",
        help="skip the branch-and-bound oracle on tiny instances",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_false", dest="shrink",
        help="report failures without delta-debugging them first",
    )
    p_fuzz.add_argument(
        "--stream", action="store_true",
        help="fuzz the job-stream arena (stream invariants + rate->0 "
        "differential vs the offline executors) instead of schedules",
    )
    p_fuzz.add_argument(
        "--policies", default=None, metavar="A,B,...",
        help="stream policies for --stream (default: OnlineHDLTS plus "
        "the static baselines)",
    )
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="suppress per-instance progress lines")
    _add_obs_args(p_fuzz)

    p_stream = sub.add_parser(
        "stream",
        help="continuous job-stream arena: online scheduling of "
        "interleaved DAG instances under load",
    )
    stream_sub = p_stream.add_subparsers(dest="stream_command", required=True)

    s_run = stream_sub.add_parser(
        "run", help="run one stream, print per-job and fleet tables"
    )
    _add_stream_workload_args(s_run)
    s_run.add_argument(
        "--policy", default="OnlineHDLTS",
        help='"OnlineHDLTS" or "Static/<RegistryName>" (per-job offline '
        "schedule replayed on the shared fleet)",
    )
    s_run.add_argument(
        "--jobs-csv", default=None, dest="jobs_csv", metavar="FILE",
        help="also write the per-job table as tidy CSV",
    )
    _add_obs_args(s_run)

    s_sweep = stream_sub.add_parser(
        "sweep", help="sweep the injection rate (or interval / jobs)"
    )
    _add_stream_workload_args(s_sweep)
    s_sweep.add_argument(
        "--axis", default="rate", choices=["rate", "interval", "n_jobs"],
        help="which workload knob the x values drive",
    )
    s_sweep.add_argument(
        "--x", default=None, metavar="X1,X2,...",
        help="comma-separated x values for the swept axis "
        "(defaults depend on the axis)",
    )
    s_sweep.add_argument(
        "--metric", default="sojourn",
        help="stream metric per replication (sojourn, p95_sojourn, "
        "throughput, utilization, queue_depth, energy_per_job, ...)",
    )
    s_sweep.add_argument(
        "--policies", default=None, metavar="A,B,...",
        help="comma-separated policies (default: OnlineHDLTS plus the "
        "static baselines)",
    )
    s_sweep.add_argument("--reps", type=int, default=10,
                         help="replications per point")
    s_sweep.add_argument(
        "--validate", action="store_true",
        help="run the stream invariant registry on every replication",
    )
    _add_parallel_args(s_sweep)
    s_sweep.add_argument("--chart", action="store_true",
                         help="also render an ASCII line chart")
    s_sweep.add_argument("--csv", default=None, metavar="FILE",
                         help="also write tidy CSV to FILE")
    _add_obs_args(s_sweep)

    p_dyn = sub.add_parser("dynamic", help="online vs static under uncertainty")
    p_dyn.add_argument("--sigma", type=float, default=0.3, help="relative execution-time noise")
    p_dyn.add_argument("--fail-proc", type=int, default=None)
    p_dyn.add_argument("--fail-at", type=float, default=None)
    p_dyn.add_argument("--reps", type=int, default=20)
    p_dyn.add_argument("--v", type=int, default=100)
    p_dyn.add_argument("--procs", type=int, default=4)
    p_dyn.add_argument("--seed", type=int, default=0)
    _add_obs_args(p_dyn)

    return parser


# ----------------------------------------------------------------------
def _cmd_fuzz(args) -> int:
    from repro.qa.fuzz import FuzzConfig, run_campaign

    config = FuzzConfig(
        instances=args.instances,
        seed=args.seed,
        schedulers=(
            [n.strip() for n in args.schedulers.split(",") if n.strip()]
            if args.schedulers
            else None
        ),
        exact=args.exact,
        metamorphic_every=args.metamorphic_every,
        corpus_path=args.corpus,
        golden_path=args.emit_golden,
        inject=args.inject,
        shrink=args.shrink,
        stream=args.stream,
        stream_policies=(
            [n.strip() for n in args.policies.split(",") if n.strip()]
            if args.policies
            else None
        ),
    )
    progress = None if args.quiet else print
    report = run_campaign(config, progress=progress)
    print(report.format())
    if args.inject is not None:
        # the smoke test *expects* the oracles to catch the corruption
        if report.ok:
            print(
                "error: injected corruption was not caught by any invariant",
                file=sys.stderr,
            )
            return 1
        print(
            f"injection '{args.inject}' caught on "
            f"{len(report.violations)} builds (as expected)"
        )
        return 0
    return 0 if report.ok else 1


def _cmd_table1() -> int:
    from repro.core.trace import format_trace
    from repro.experiments.report import format_makespans
    from repro.experiments.table1 import (
        PAPER_FIG1_MAKESPANS,
        fig1_makespans,
        table1_trace,
    )

    print("Table I: HDLTS schedule produced at each step (Fig. 1 graph)\n")
    print(format_trace(table1_trace()))
    print("\nFig. 1 makespans, measured vs published:\n")
    print(format_makespans(fig1_makespans(), PAPER_FIG1_MAKESPANS))
    return 0


def _chunk_progress(key: str):
    """A chunk-completion callback printing sweep progress to stderr."""

    def progress(done: int, total: int) -> None:
        print(f"  .. {key}: chunk {done}/{total}", file=sys.stderr)

    return progress


def _cmd_figure(
    key: str,
    reps: int,
    seed: int,
    full: bool,
    validate: bool,
    workers: int = 1,
    chart: bool = False,
    csv_path=None,
    chunk_size: int = 5,
    pool=None,
    definition=None,
    start_method=None,
) -> int:
    from repro.experiments import format_sweep, get_figure, run_sweep
    from repro.experiments.parallel import run_sweep_parallel

    if definition is None:
        definition = (
            get_figure(key, full=full) if key == "fig3" else get_figure(key)
        )
    if pool is not None or workers > 1:
        result = run_sweep_parallel(
            definition,
            reps=reps,
            seed=seed,
            validate=validate,
            workers=workers,
            chunk_size=chunk_size,
            pool=pool,
            start_method=start_method,
            progress=_chunk_progress(definition.key),
        )
    else:
        result = run_sweep(
            definition,
            reps=reps,
            seed=seed,
            validate=validate,
            progress=lambda msg: print(f"  .. {msg}", file=sys.stderr),
        )
    print(format_sweep(result))
    if chart:
        from repro.experiments.chart import ascii_chart

        print()
        print(ascii_chart(result))
    if csv_path:
        from repro.experiments.export import sweep_to_csv

        sweep_to_csv(result, csv_path)
        print(f"(csv written to {csv_path})", file=sys.stderr)
    return 0


def _cmd_all_figures(
    reps: int,
    seed: int,
    full: bool,
    workers: int = 1,
    chunk_size: int = 5,
    start_method=None,
) -> int:
    from repro.experiments import get_figure, list_figures
    from repro.experiments.parallel import _resolve_start_method
    from repro.runtime.context import current_context

    _cmd_table1()
    keys = list_figures()
    definitions = {
        key: (get_figure(key, full=full) if key == "fig3" else get_figure(key))
        for key in keys
    }

    def run_all(pool=None) -> int:
        for key in keys:
            print()
            _cmd_figure(
                key,
                reps,
                seed,
                full and key == "fig3",
                validate=False,
                workers=workers,
                chunk_size=chunk_size,
                pool=pool,
                definition=definitions[key],
            )
        return 0

    method = _resolve_start_method(start_method, current_context())
    if workers > 1 and method != "serial":
        # one pool created up front and reused by every figure, instead
        # of paying a pool start/teardown per figure
        from repro.experiments.parallel import sweep_pool

        with sweep_pool(
            definitions.values(), workers, start_method=method
        ) as pool:
            return run_all(pool)
    return run_all()


def _default_run_dir(key: str) -> str:
    import os

    return os.path.join("runs", key)


def _finish_run(session, definition, result, csv_path=None) -> int:
    """Print the sweep table (and optional CSV) for a completed run."""
    from repro.experiments import format_sweep

    print(format_sweep(result))
    if csv_path:
        from repro.experiments.export import sweep_to_csv

        sweep_to_csv(result, csv_path)
        print(f"(csv written to {csv_path})", file=sys.stderr)
    print(f"(run directory: {session.path})", file=sys.stderr)
    return 0


def _run_dir_context(context, args, run_dir):
    """Fold the run-directory observability flags into ``context``.

    The telemetry directory is always named (heartbeats are cheap and
    make ``repro top`` work on every run); event streaming, metric
    snapshots and span tracing stay opt-in.  ``--events`` without a FILE
    resolves to the conventional ``telemetry/events.jsonl``.
    """
    from repro.runtime.telemetry import telemetry_dir

    tdir = telemetry_dir(run_dir)
    events = getattr(args, "events", None)
    if events == "":
        events = str(tdir / "events.jsonl")
    return context.with_(
        telemetry=str(tdir),
        trace=bool(getattr(args, "trace", False)) or context.trace,
        metrics=bool(getattr(args, "metrics", False)) or context.metrics,
        events=events or context.events,
    )


def _run_with_telemetry(context, run_dir, command) -> int:
    """Run ``command()`` with the run directory's sinks attached.

    ``context.events`` streams the bus as JSONL; ``context.metrics``
    scopes a registry, prints it afterwards and writes a Prometheus
    textfile snapshot; ``context.trace`` subscribes this process's span
    sink (workers subscribe their own in the pool initializer) and
    merges every per-process span file into one Chrome trace.
    """
    import os

    from repro import obs
    from repro.runtime.telemetry import telemetry_dir

    tdir = telemetry_dir(run_dir)
    tdir.mkdir(parents=True, exist_ok=True)
    span_sink = None
    unsubscribe = None
    if context.trace:
        span_sink = obs.JsonlSink(str(tdir / f"spans-{os.getpid()}.jsonl"))
        unsubscribe = obs.subscribe(span_sink, topics=[obs.SPAN_TOPIC])
    try:
        with obs.session(
            events_path=context.events, metrics=context.metrics
        ) as sess:
            code = command()
    finally:
        if unsubscribe is not None:
            unsubscribe()
        if span_sink is not None:
            span_sink.close()
    if context.metrics:
        from repro.obs.export import write_prometheus

        prom_path = tdir / "metrics.prom"
        write_prometheus(prom_path, sess.snapshot)
        print()
        print("observability metrics:")
        print(obs.format_metrics(sess.snapshot))
        print(f"(metrics snapshot written to {prom_path})", file=sys.stderr)
    if context.events:
        print(
            f"({sess.n_events} events written to {context.events})",
            file=sys.stderr,
        )
    if context.trace:
        from repro.obs.export import read_span_records, write_chrome_trace

        records = []
        for path in sorted(tdir.glob("spans-*.jsonl")):
            records.extend(read_span_records(path))
        trace_path = tdir / "trace.json"
        write_chrome_trace(trace_path, records)
        print(
            f"({len(records)} spans merged into {trace_path})",
            file=sys.stderr,
        )
    return code


def _cmd_run(args) -> int:
    from repro.experiments import get_figure
    from repro.experiments.parallel import run_sweep_parallel
    from repro.runtime.context import activate, current_context
    from repro.runtime.session import ExperimentSession

    definition = (
        get_figure(args.key, full=args.full)
        if args.key == "fig3"
        else get_figure(args.key)
    )
    run_dir = args.run_dir or _default_run_dir(args.key)
    context = _run_dir_context(current_context(), args, run_dir)
    session = ExperimentSession.create(
        run_dir, context, [definition], reps=args.reps
    )

    def execute() -> int:
        result = run_sweep_parallel(
            definition,
            reps=args.reps,
            seed=args.seed,
            validate=args.validate,
            workers=args.workers,
            chunk_size=args.chunk_size,
            start_method=args.start_method,
            progress=_chunk_progress(definition.key),
            session=session,
        )
        return _finish_run(session, definition, result, csv_path=args.csv)

    with activate(context), session:
        return _run_with_telemetry(context, run_dir, execute)


def _cmd_resume(args) -> int:
    from repro.experiments.parallel import run_sweep_parallel
    from repro.runtime.context import activate
    from repro.runtime.session import ExperimentSession

    session = ExperimentSession.open(args.run_dir)
    context = _run_dir_context(session.context, args, args.run_dir)

    def execute() -> int:
        code = 0
        for definition in session.definitions:
            result = run_sweep_parallel(
                definition,
                reps=session.reps,
                seed=context.seed,
                validate=context.validate,
                workers=context.workers,
                chunk_size=context.chunk_size,
                start_method=context.start_method,
                progress=_chunk_progress(definition.key),
                session=session,
            )
            code = _finish_run(
                session, definition, result, csv_path=args.csv
            ) or code
        return code

    with activate(context), session:
        return _run_with_telemetry(context, args.run_dir, execute)


def _cmd_top(args) -> int:
    from repro.runtime.telemetry import watch

    return watch(args.run_dir, interval_s=args.interval, once=args.once)


def _cmd_status(args) -> int:
    import json

    from repro.runtime.telemetry import format_status, status_document

    status = status_document(args.run_dir)
    if args.json_out:
        print(json.dumps(status, indent=2))
    else:
        print(format_status(status))
    return 0


def _campaign_definitions(args):
    """Resolve the sweep definitions an `init` invocation asks for."""
    from repro.experiments import get_figure

    definitions = []
    if args.figures:
        for key in [k.strip() for k in args.figures.split(",") if k.strip()]:
            definitions.append(
                get_figure(key, full=args.full) if key == "fig3"
                else get_figure(key)
            )
    if args.grid is not None:
        from repro.experiments.grid import grid_sweep_definition

        definitions.append(
            grid_sweep_definition(sample=args.grid, seed=args.seed)
        )
    if not definitions:
        raise ValueError(
            "campaign init needs at least one sweep: --figures KEY,... "
            "and/or --grid N"
        )
    return definitions


def _cmd_campaign_init(args) -> int:
    from repro.experiments.campaign import Campaign
    from repro.runtime.context import current_context

    campaign = Campaign.create(
        args.dir,
        _campaign_definitions(args),
        reps=args.reps,
        n_shards=args.shards,
        context=current_context(),
    )
    tasks = campaign.tasks()
    rows = sum(t.reps for t in tasks)
    print(
        f"campaign {campaign.path}: {len(campaign.definitions)} sweep(s), "
        f"{len(tasks)} tasks ({rows} replications) across "
        f"{campaign.n_shards} shard(s)"
    )
    print(
        f"run each shard (any process, any machine, any order) with:\n"
        f"  repro campaign run-shard {campaign.path} <0.."
        f"{campaign.n_shards - 1}>",
        file=sys.stderr,
    )
    return 0


def _cmd_campaign_tasks(args) -> int:
    from repro.experiments.campaign import Campaign

    campaign = Campaign.open(args.dir)
    tasks = (
        campaign.shard_tasks(args.shard) if args.shard is not None
        else campaign.tasks()
    )
    shown = tasks if args.limit is None else tasks[: args.limit]
    for task in shown:
        print(
            f"{task.task_id}  shard={campaign.shard_of(task)}  "
            f"x={task.x}  reps={task.reps}"
        )
    if len(shown) < len(tasks):
        print(f"... ({len(tasks) - len(shown)} more)", file=sys.stderr)
    return 0


def _cmd_campaign_run_shard(args) -> int:
    from repro.experiments.campaign import Campaign, run_shard

    campaign = Campaign.open(args.dir)

    def progress(done: int, total: int) -> None:
        print(f"  .. shard {args.shard}: task {done}/{total}", file=sys.stderr)

    report = run_shard(
        campaign, args.shard, progress=progress, max_tasks=args.max_tasks
    )
    state = "complete" if report.complete else "paused"
    print(
        f"shard {report.shard}: {report.executed} executed, "
        f"{report.replayed} resumed, {report.total} total ({state})"
    )
    return 0


def _cmd_campaign_merge(args) -> int:
    from repro.experiments.campaign import Campaign, merge, write_merged

    campaign = Campaign.open(args.dir)
    results = merge(campaign, strict=not args.partial)
    if args.partial:
        # zero-sample points make sweep tables unrenderable; report
        # coverage and land the (NaN-padded) merged table instead
        for definition in campaign.definitions:
            result = results[definition.key]
            rows = sum(
                result.stats[x][definition.schedulers[0]].n
                for x in definition.x_values
            )
            total = len(definition.x_values) * campaign.reps
            print(
                f"{definition.key}: partial merge, "
                f"{rows}/{total} replications folded"
            )
    else:
        from repro.experiments import format_sweep

        blocks = [
            format_sweep(results[d.key]) for d in campaign.definitions
        ]
        print("\n\n".join(blocks))
    path = write_merged(campaign, results, args.out)
    print(f"(merged table written to {path})", file=sys.stderr)
    if args.csv:
        if len(campaign.definitions) != 1:
            raise ValueError(
                "--csv supports single-sweep campaigns; this one has "
                f"{len(campaign.definitions)} sweeps"
            )
        from repro.experiments.export import sweep_to_csv

        sweep_to_csv(results[campaign.definitions[0].key], args.csv)
        print(f"(csv written to {args.csv})", file=sys.stderr)
    return 0


def _cmd_campaign(args) -> int:
    if args.campaign_command == "init":
        return _cmd_campaign_init(args)
    if args.campaign_command == "tasks":
        return _cmd_campaign_tasks(args)
    if args.campaign_command == "run-shard":
        return _cmd_campaign_run_shard(args)
    if args.campaign_command == "merge":
        return _cmd_campaign_merge(args)
    if args.campaign_command == "status":
        args.run_dir = args.dir
        return _cmd_status(args)
    raise AssertionError(
        f"unhandled campaign command {args.campaign_command}"
    )  # pragma: no cover


def _submit_definitions(args):
    """Resolve the sweep definitions one ``submit`` invocation asks for."""
    definitions = []
    if args.figures or args.grid is not None:
        definitions.extend(_campaign_definitions(args))
    if args.stream:
        args.axis = args.stream
        definitions.append(_stream_sweep_definition_from_args(args))
    if not definitions:
        raise ValueError(
            "submit needs at least one sweep: --figures KEY,..., "
            "--grid N and/or --stream AXIS"
        )
    return definitions


def _cmd_submit(args) -> int:
    import json

    from repro.runtime.context import current_context
    from repro.service import api

    definitions = _submit_definitions(args)
    job = api.submit(
        args.dir, definitions, args.reps, current_context(), title=args.title
    )
    doc = api.job_status(args.dir, job.ticket)
    if args.json_out:
        print(json.dumps(doc, indent=2))
        return 0
    print(
        f"submitted {job.ticket}: {len(definitions)} sweep(s), "
        f"{doc['tasks_total']} tasks x {args.reps} replications total"
    )
    print(
        f"drain it with:  repro serve {args.dir} --drain\n"
        f"follow it with: repro watch {args.dir} {job.ticket}",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.service.worker import serve

    mode = "drain the queue" if args.drain else "serve until interrupted"
    print(
        f"repro serve {args.dir}: {args.workers} worker(s), "
        f"lease {args.lease_s:g}s, {mode}",
        file=sys.stderr,
    )
    reports = serve(
        args.dir,
        workers=args.workers,
        lease_s=args.lease_s,
        poll_s=args.poll_s,
        drain=args.drain,
        max_tasks=args.max_tasks,
    )
    for report in reports:
        extra = (
            f", {report.replayed_discards} discarded (lease reclaimed)"
            if report.replayed_discards else ""
        )
        print(
            f"worker {report.worker}: {report.executed} executed, "
            f"{report.failed} failed{extra}"
        )
    return 0


def _cmd_ps(args) -> int:
    import json

    from repro.service import api

    doc = api.ps_document(args.dir)
    if args.json_out:
        print(json.dumps(doc, indent=2))
    else:
        print(api.format_ps(doc))
    return 0


def _cmd_watch(args) -> int:
    import time

    from repro.experiments import format_sweep
    from repro.service import api

    last = None
    while True:
        doc = api.job_status(args.dir, args.ticket)
        line = (
            f"{doc['ticket']}: {doc['state']}, "
            f"{doc['tasks_done']}/{doc['tasks_total']} tasks"
        )
        if line != last:
            print(line, file=sys.stderr)
            last = line
        if doc["state"] in ("done", "failed", "cancelled"):
            break
        time.sleep(args.interval)
    if doc["state"] != "done":
        detail = f": {doc['error']}" if doc.get("error") else ""
        print(f"job {args.ticket} {doc['state']}{detail}", file=sys.stderr)
        return 1
    results = api.result(args.dir, args.ticket)
    print("\n\n".join(format_sweep(results[key]) for key in doc["sweeps"]))
    if args.csv:
        if len(results) != 1:
            raise ValueError(
                f"--csv supports single-sweep jobs; this one has "
                f"{len(results)} sweeps"
            )
        from repro.experiments.export import sweep_to_csv

        sweep_to_csv(next(iter(results.values())), args.csv)
        print(f"(csv written to {args.csv})", file=sys.stderr)
    return 0


def _cmd_cancel(args) -> int:
    from repro.service import api

    if api.cancel(args.dir, args.ticket):
        print(f"cancelled {args.ticket}")
        return 0
    state = api.job_status(args.dir, args.ticket)["state"]
    print(
        f"job {args.ticket} is already {state}; nothing to cancel",
        file=sys.stderr,
    )
    return 1


def _make_workflow(args) -> "object":
    from repro.generator import GeneratorConfig, generate_random_graph
    from repro.workflows import (
        fft_workflow,
        gaussian_elimination_workflow,
        molecular_dynamics_workflow,
        montage_workflow,
        paper_example_graph,
    )

    rng = np.random.default_rng(args.seed)
    if args.workflow in ("paper", "fig1"):
        return paper_example_graph()
    if args.workflow == "fft":
        return fft_workflow(args.size, args.procs, rng=rng, ccr=args.ccr, beta=args.beta)
    if args.workflow == "montage":
        return montage_workflow(args.size, args.procs, rng=rng, ccr=args.ccr, beta=args.beta)
    if args.workflow == "molecular":
        return molecular_dynamics_workflow(args.procs, rng=rng, ccr=args.ccr, beta=args.beta)
    if args.workflow == "gaussian":
        return gaussian_elimination_workflow(args.size, args.procs, rng=rng, ccr=args.ccr, beta=args.beta)
    config = GeneratorConfig(
        v=args.size, ccr=args.ccr, n_procs=args.procs, beta=args.beta
    )
    return generate_random_graph(config, rng)


def _cmd_schedule(args) -> int:
    from repro.baselines.registry import make_scheduler
    from repro.core.trace import format_trace
    from repro.metrics import evaluate
    from repro.schedule import render_gantt, validate_schedule

    graph = _make_workflow(args)
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        graph = graph.normalized()
    scheduler = make_scheduler(args.scheduler)
    if args.trace and hasattr(scheduler, "record_trace"):
        scheduler.record_trace = True
    if args.trace_json:
        # phase-level deep dive: every obs.phase() inside the run
        # becomes a span, and the computed schedule's Gantt is overlaid
        # as a synthetic sim-time process
        from repro import obs

        recorder = obs.SpanRecorder()
        unsubscribe = obs.subscribe(recorder, topics=[obs.SPAN_TOPIC])
        try:
            with obs.tracing_scope(True), obs.phase_spans_scope(True):
                result = scheduler.run(graph)
        finally:
            unsubscribe()
    else:
        result = scheduler.run(graph)
    validate_schedule(graph, result.schedule)
    report = evaluate(graph, result.schedule)
    print(
        f"{args.workflow} workflow: {graph.n_tasks} tasks, {graph.n_edges} edges, "
        f"{graph.n_procs} CPUs"
    )
    print(
        f"{scheduler.name}: makespan={report.makespan:.2f} slr={report.slr:.3f} "
        f"speedup={report.speedup:.3f} efficiency={report.efficiency:.3f} "
        f"({result.wall_time * 1e3:.1f} ms)"
    )
    print()
    print(render_gantt(result.schedule))
    if args.trace and result.trace:
        print()
        print(format_trace(result.trace, extended=True))
    if args.trace_json:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(
            args.trace_json, recorder.records, schedule=result.schedule
        )
        print(
            f"({len(recorder.records)} spans written to {args.trace_json}; "
            "open in Perfetto or chrome://tracing)",
            file=sys.stderr,
        )
    return 0


def _cmd_generate(args) -> int:
    from repro.generator import GeneratorConfig, generate_random_graph
    from repro.model.validation import validate_task_graph

    config = GeneratorConfig(
        v=args.v,
        alpha=args.alpha,
        density=args.density,
        ccr=args.ccr,
        n_procs=args.procs,
        w_dag=args.wdag,
        beta=args.beta,
    )
    graph = generate_random_graph(config, np.random.default_rng(args.seed))
    validate_task_graph(graph)
    from repro.model.profile import graph_profile

    print(f"random DAG "
          f"(entries={len(graph.entry_tasks())}, exits={len(graph.exit_tasks())}, "
          f"requested CCR={config.ccr}):")
    print(graph_profile(graph).format())
    return 0


def _cmd_export(args) -> int:
    import pathlib

    from repro.baselines.registry import make_scheduler
    from repro.io import graph_to_dot, save_graph, save_schedule
    from repro.schedule import validate_schedule

    graph = _make_workflow(args)
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        graph = graph.normalized()
    result = make_scheduler(args.scheduler).run(graph)
    validate_schedule(graph, result.schedule)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    stem = f"{args.workflow}_{args.scheduler}".replace("/", "_")
    if args.format in ("json", "all"):
        save_graph(graph, out / f"{stem}.graph.json")
        save_schedule(result.schedule, out / f"{stem}.schedule.json")
        written += [f"{stem}.graph.json", f"{stem}.schedule.json"]
    if args.format in ("dot", "all"):
        (out / f"{stem}.dot").write_text(graph_to_dot(graph, result.schedule))
        written.append(f"{stem}.dot")
    print(f"makespan {result.makespan:.2f}; wrote " + ", ".join(written))
    return 0


def _cmd_diagnose(args) -> int:
    from repro.analysis import diagnose
    from repro.baselines.registry import make_scheduler
    from repro.schedule import validate_schedule

    graph = _make_workflow(args)
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        graph = graph.normalized()
    result = make_scheduler(args.scheduler).run(graph)
    validate_schedule(graph, result.schedule)
    print(f"{args.scheduler} on {args.workflow} "
          f"({graph.n_tasks} tasks, {graph.n_procs} CPUs):")
    print(diagnose(graph, result.schedule).format(graph))
    return 0


def _cmd_dynamic(args) -> int:
    from repro.core import HDLTS
    from repro.dynamic import FailStop, OnlineHDLTS, gaussian_noise, replay_static
    from repro.generator import GeneratorConfig, generate_random_graph
    from repro.metrics.stats import RunningStats

    failures = []
    if args.fail_proc is not None:
        failures = [FailStop(args.fail_proc, args.fail_at or 0.0)]
    static_stats, online_stats = RunningStats(), RunningStats()
    completed_static = 0
    for rep in range(args.reps):
        rng = np.random.default_rng([args.seed, rep])
        graph = generate_random_graph(
            GeneratorConfig(v=args.v, n_procs=args.procs), rng
        ).normalized()
        noise = gaussian_noise(graph, args.sigma, rng)
        online = OnlineHDLTS().execute(graph, noise, failures)
        online_stats.add(online.makespan)
        if not failures:
            static = HDLTS().run(graph).schedule
            static_stats.add(replay_static(graph, static, noise).makespan)
            completed_static += 1
    print(
        f"online HDLTS under sigma={args.sigma} noise"
        + (f" + failure of CPU {args.fail_proc} at t={args.fail_at}" if failures else "")
        + f": mean makespan {online_stats.mean:.2f} (n={online_stats.n})"
    )
    if completed_static:
        print(
            f"static HDLTS schedule replayed under the same noise: "
            f"mean makespan {static_stats.mean:.2f} (n={static_stats.n})"
        )
    else:
        print("static schedules cannot survive CPU failures (no comparison arm)")
    return 0


def _stream_arrival(args):
    """The arrival process a stream command asks for."""
    from repro.stream import ArrivalSpec

    if args.interval is not None:
        if args.rate is not None:
            raise ValueError("--rate and --interval are mutually exclusive")
        return ArrivalSpec("deterministic", interval=args.interval)
    return ArrivalSpec(
        "poisson", rate=args.rate if args.rate is not None else 0.02
    )


def _stream_spec_from_args(args, axis: str = "n_jobs"):
    """One :class:`StreamSpec` from the shared workload flags."""
    from repro.experiments.graphspec import GraphSpec
    from repro.stream import StreamSpec

    job = GraphSpec(
        "random",
        {
            "axis": "v",
            "n_procs": args.procs,
            "ccr": args.ccr,
            "beta": args.beta,
        },
    )
    noise = (
        {"kind": "gaussian", "sigma": args.sigma} if args.sigma else None
    )
    return StreamSpec(
        job=job,
        arrival=_stream_arrival(args),
        n_jobs=args.jobs,
        axis=axis,
        job_x=args.v,
        noise=noise,
    )


def _cmd_stream_run(args) -> int:
    from repro.stream import run_stream
    from repro.stream.metrics import (
        fleet_energy,
        per_job_busy_energy,
        queue_depth_series,
    )

    spec = _stream_spec_from_args(args)
    rng = np.random.default_rng([args.seed, 0, 0])
    instance = spec.build(args.jobs, rng)
    result = run_stream(instance, args.policy)
    energies = per_job_busy_energy(result)

    print(
        f"stream: {len(instance.jobs)} jobs on {instance.n_procs} CPUs, "
        f"policy {result.policy}"
    )
    header = (
        f"{'job':>4} {'arrival':>10} {'tasks':>6} {'status':>9} "
        f"{'start':>10} {'finish':>10} {'sojourn':>10} {'energy':>10}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for job in result.jobs:
        status = "finished" if job.finished else "lost"
        finish = f"{job.finish:.2f}" if job.finished else "-"
        sojourn = f"{job.sojourn:.2f}" if job.finished else "-"
        start = (
            f"{job.first_start:.2f}" if job.first_start == job.first_start
            else "-"
        )
        energy = energies.get(job.job, 0.0)
        print(
            f"{job.job:>4} {job.arrival:>10.2f} {job.n_tasks:>6} "
            f"{status:>9} {start:>10} {finish:>10} {sojourn:>10} "
            f"{energy:>10.1f}"
        )
        rows.append((job, status, energy))

    finished = result.finished_jobs()
    print()
    print(
        f"finished {len(finished)}/{len(result.jobs)} jobs "
        f"({len(result.lost_jobs())} lost), horizon {result.horizon:.2f}"
    )
    if finished:
        sojourns = np.array([j.sojourn for j in finished])
        p50, p95, p99 = np.percentile(sojourns, (50, 95, 99))
        print(
            f"sojourn mean {sojourns.mean():.2f}, "
            f"p50 {p50:.2f}, p95 {p95:.2f}, p99 {p99:.2f}"
        )
        print(
            f"throughput {len(finished) / result.horizon:.4f} jobs/time"
        )
    per_cpu = (
        result.busy_times() / result.horizon
        if result.horizon > 0.0
        else np.zeros(result.n_procs)
    )
    depth = max((d for _, d in queue_depth_series(result)), default=0)
    print(
        f"utilization mean {result.utilization():.3f} "
        f"(per CPU: {', '.join(f'{u:.3f}' for u in per_cpu)}), "
        f"peak queue depth {depth}"
    )
    report = fleet_energy(result)
    print(
        f"energy: busy {report.busy_energy:.1f} + idle "
        f"{report.idle_energy:.1f} + duplication "
        f"{report.duplication_energy:.1f} = {report.total:.1f}"
    )

    if args.jobs_csv:
        import csv

        with open(args.jobs_csv, "w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["job", "arrival", "n_tasks", "status", "first_start",
                 "finish", "sojourn", "makespan", "busy_energy"]
            )
            for job, status, energy in rows:
                writer.writerow(
                    [job.job, job.arrival, job.n_tasks, status,
                     job.first_start, job.finish, job.sojourn,
                     job.makespan, energy]
                )
        print(f"(per-job csv written to {args.jobs_csv})", file=sys.stderr)
    return 0


#: default x values per stream sweep axis
_STREAM_SWEEP_X = {
    "rate": (0.005, 0.01, 0.02, 0.05),
    "interval": (10.0, 25.0, 50.0, 100.0),
    "n_jobs": (5, 10, 20),
}


def _stream_sweep_definition_from_args(args):
    """One stream-sweep :class:`SweepDefinition` from the shared flags.

    Used by ``stream sweep`` (runs it in-process) and ``submit``
    (ships it to the service) -- the same flags yield the same
    definition, so both paths produce bit-identical sweeps.
    """
    from repro.stream.spec import DEFAULT_POLICIES, stream_sweep_definition

    # the swept axis dictates the arrival kind; the fixed flag (if any)
    # only seeds the non-swept parameter
    if args.axis == "rate":
        if args.interval is not None:
            raise ValueError("--axis rate sweeps Poisson arrivals; "
                             "--interval does not apply")
        args.rate = args.rate if args.rate is not None else 0.02
    elif args.axis == "interval":
        if args.rate is not None:
            raise ValueError("--axis interval sweeps deterministic "
                             "arrivals; --rate does not apply")
        args.interval = args.interval if args.interval is not None else 50.0
    spec = _stream_spec_from_args(args, axis=args.axis)
    if args.x:
        cast = int if args.axis == "n_jobs" else float
        x_values = tuple(
            cast(v.strip()) for v in args.x.split(",") if v.strip()
        )
    else:
        x_values = _STREAM_SWEEP_X[args.axis]
    policies = (
        tuple(n.strip() for n in args.policies.split(",") if n.strip())
        if args.policies
        else DEFAULT_POLICIES
    )
    return stream_sweep_definition(
        f"stream-{args.axis}",
        spec,
        x_values,
        metric=args.metric,
        policies=policies,
    )


def _cmd_stream_sweep(args) -> int:
    definition = _stream_sweep_definition_from_args(args)
    return _cmd_figure(
        definition.key,
        args.reps,
        args.seed,
        False,
        args.validate,
        workers=args.workers,
        chart=args.chart,
        csv_path=args.csv,
        chunk_size=args.chunk_size,
        start_method=args.start_method,
        definition=definition,
    )


def _cmd_stream(args) -> int:
    if args.stream_command == "run":
        return _run_observed(args, lambda: _cmd_stream_run(args))
    if args.stream_command == "sweep":
        return _run_observed(args, lambda: _cmd_stream_sweep(args))
    raise AssertionError(
        f"unhandled stream command {args.stream_command}"
    )  # pragma: no cover


def _cmd_profile(args) -> int:
    import json

    from repro import obs
    from repro.baselines.registry import make_scheduler
    from repro.experiments.report import format_profile, profile_document

    graph = _make_workflow(args)
    if len(graph.entry_tasks()) != 1 or len(graph.exit_tasks()) != 1:
        graph = graph.normalized()
    names = [n for n in args.scheduler.split(",") if n]
    if args.repeat < 1:
        raise ValueError("repeat must be >= 1")

    runs = []
    for requested in names:
        makespan = None
        algorithm = requested
        with obs.session(metrics=True) as sess:
            for _ in range(args.repeat):
                scheduler = make_scheduler(requested)
                result = scheduler.run(graph)
            makespan = result.makespan
            algorithm = scheduler.name
        runs.append(
            {
                "scheduler": requested,
                "algorithm": algorithm,
                "makespan": makespan,
                "metrics": sess.snapshot,
            }
        )

    doc = profile_document(args, graph, runs)
    print(format_profile(doc))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"(profile document written to {args.json_out})", file=sys.stderr)
    return 0


def _context_from_args(args):
    """One :class:`~repro.runtime.context.RunContext` from the CLI flags.

    Every command activates this for its whole run; commands without a
    given knob inherit the default.
    """
    from repro.runtime.context import DEFAULT_CONTEXT

    # run/resume use --events as an optional-FILE flag ("" = default
    # path under the run directory); the sentinel is resolved by
    # _run_dir_context once the run directory is known
    events = getattr(args, "events", None) or None
    return DEFAULT_CONTEXT.with_(
        seed=getattr(args, "seed", DEFAULT_CONTEXT.seed),
        validate=bool(getattr(args, "validate", False)),
        metrics=bool(getattr(args, "metrics", False)),
        events=events,
        workers=getattr(args, "workers", DEFAULT_CONTEXT.workers),
        chunk_size=getattr(args, "chunk_size", DEFAULT_CONTEXT.chunk_size),
        start_method=getattr(args, "start_method", None),
        batch=getattr(args, "batch", DEFAULT_CONTEXT.batch),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch; returns the process exit code."""
    from repro.runtime.context import activate

    args = build_parser().parse_args(argv)
    try:
        with activate(_context_from_args(args)):
            return _dispatch(args)
    except KeyboardInterrupt:
        if args.command == "run":
            run_dir = args.run_dir or _default_run_dir(args.key)
            print(
                f"\ninterrupted; completed chunks are checkpointed -- "
                f"resume with: repro resume {run_dir}",
                file=sys.stderr,
            )
        elif args.command == "resume":
            print(
                f"\ninterrupted; resume again with: repro resume {args.run_dir}",
                file=sys.stderr,
            )
        elif (
            args.command == "campaign"
            and getattr(args, "campaign_command", None) == "run-shard"
        ):
            print(
                f"\ninterrupted; completed tasks are durable -- resume "
                f"with: repro campaign run-shard {args.dir} {args.shard}",
                file=sys.stderr,
            )
        elif args.command == "serve":
            print(
                f"\ninterrupted; leases expire and committed tasks are "
                f"durable -- restart with: repro serve {args.dir}",
                file=sys.stderr,
            )
        elif args.command == "watch":
            print(
                f"\ninterrupted; the job keeps running -- follow again "
                f"with: repro watch {args.dir} {args.ticket}",
                file=sys.stderr,
            )
        else:
            print("\ninterrupted", file=sys.stderr)
        return 130
    except KeyError as err:
        print(f"error: {err.args[0] if err.args else err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except OSError as err:
        # unwritable --events / --json / --out destinations, clobbered
        # or missing run directories
        print(f"error: {err}", file=sys.stderr)
        return 2


def _run_observed(args, command) -> int:
    """Run ``command()`` inside an observability session when requested.

    ``--events FILE`` streams every bus event as JSONL; ``--metrics``
    records counters/timers for the run and prints them afterwards.
    """
    if not (args.events or args.metrics):
        return command()
    from repro import obs

    with obs.session(events_path=args.events, metrics=args.metrics) as sess:
        code = command()
    if args.metrics:
        print()
        print("observability metrics:")
        print(obs.format_metrics(sess.snapshot))
    if args.events:
        print(
            f"({sess.n_events} events written to {args.events})",
            file=sys.stderr,
        )
    return code


def _dispatch(args) -> int:
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "figure":
        return _run_observed(
            args,
            lambda: _cmd_figure(
                args.key,
                args.reps,
                args.seed,
                args.full,
                args.validate,
                args.workers,
                chart=args.chart,
                csv_path=args.csv,
                chunk_size=args.chunk_size,
                start_method=args.start_method,
            ),
        )
    if args.command == "all-figures":
        return _cmd_all_figures(
            args.reps,
            args.seed,
            args.full,
            args.workers,
            args.chunk_size,
            start_method=args.start_method,
        )
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "ps":
        return _cmd_ps(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "schedule":
        return _run_observed(args, lambda: _cmd_schedule(args))
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "fuzz":
        return _run_observed(args, lambda: _cmd_fuzz(args))
    if args.command == "dynamic":
        return _run_observed(args, lambda: _cmd_dynamic(args))
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "profile":
        return _cmd_profile(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Slack computation and DVFS-style slack reclamation.

A task's *slack* is how much later it could finish without delaying any
child's start, the next task on its CPU, or the makespan.  Slack
reclamation stretches each task into its own slack (equivalently, runs
it at a lower frequency) -- start times never move, so no constraint can
cascade -- trading idle-window time for cubic dynamic-power savings
while keeping the makespan bit-identical.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["task_slack", "reclaim_slack"]

_EPS = 1e-9


def _latest_finish(
    graph: TaskGraph, schedule: Schedule, task: int
) -> float:
    """Latest finish of ``task``'s primary copy that delays nothing.

    Conservative: every child is assumed to read *this* copy, even when
    a duplicate could serve it, so the bound is always safe.
    """
    assignment = schedule.assignment(task)
    bound = schedule.makespan
    for child in graph.successors(task):
        child_assignment = schedule.assignment(child)
        comm = (
            0.0
            if child_assignment.proc == assignment.proc
            else graph.comm_cost(task, child)
        )
        bound = min(bound, child_assignment.start - comm)
    # the next slot on the same CPU pins the finish too
    for slot in schedule.timelines[assignment.proc].slots():
        if slot.start >= assignment.finish - _EPS and slot.task != task:
            bound = min(bound, slot.start)
            break
    return bound


def task_slack(graph: TaskGraph, schedule: Schedule) -> Dict[int, float]:
    """Per-task slack (primary copies; never negative)."""
    if not schedule.is_complete():
        raise ValueError("schedule is incomplete")
    slack: Dict[int, float] = {}
    for task in graph.tasks():
        finish = schedule.finish_of(task)
        slack[task] = max(0.0, _latest_finish(graph, schedule, task) - finish)
    return slack


def reclaim_slack(
    graph: TaskGraph,
    schedule: Schedule,
    max_scale: float = 4.0,
) -> Tuple[Schedule, Dict[Tuple[int, int], float]]:
    """Stretch every primary copy into its slack.

    Returns ``(stretched schedule, scales)`` where
    ``scales[(task, proc)]`` is the slowdown factor (>= 1) suitable for
    :meth:`repro.energy.model.EnergyModel.energy_with_frequencies`.
    Starts are preserved, so the makespan is unchanged and feasibility
    follows from the per-task latest-finish bound.  Duplicate copies are
    left at full speed (their consumers may sit on other CPUs whose
    needs the conservative bound does not cover).
    """
    if max_scale < 1.0:
        raise ValueError("max_scale must be >= 1")
    slack = task_slack(graph, schedule)
    stretched = Schedule(graph)
    scales: Dict[Tuple[int, int], float] = {}
    for timeline in schedule.timelines:
        for slot in timeline.slots():
            duration = slot.end - slot.start
            if slot.duplicate or duration <= _EPS:
                stretched.place(
                    slot.task,
                    timeline.proc,
                    slot.start,
                    duration=duration,
                    duplicate=slot.duplicate,
                )
                continue
            scale = min(max_scale, (duration + slack[slot.task]) / duration)
            scales[(slot.task, timeline.proc)] = scale
            stretched.place(
                slot.task,
                timeline.proc,
                slot.start,
                duration=duration * scale,
            )
    return stretched, scales

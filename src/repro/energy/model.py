"""Per-CPU busy/idle power model and schedule energy accounting.

The standard two-state model of the energy-aware scheduling literature
(e.g. Mei, Li & Li [27], whose workload the paper reuses): a CPU draws
``busy_power`` while executing a task copy and ``idle_power`` otherwise;
the platform is on from time 0 until the makespan.  Duplicate copies
occupy real busy time, so duplication's energy cost -- the paper's
Section II-B argument -- shows up directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.schedule.schedule import Schedule

__all__ = ["EnergyModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one schedule."""

    busy_energy: float
    idle_energy: float
    #: busy energy attributable to duplicate copies only
    duplication_energy: float
    makespan: float

    @property
    def total(self) -> float:
        return self.busy_energy + self.idle_energy

    @property
    def duplication_overhead(self) -> float:
        """Duplicates' share of total energy."""
        return self.duplication_energy / self.total if self.total > 0 else 0.0


class EnergyModel:
    """Two-state (busy/idle) power model over a heterogeneous platform.

    ``busy_power`` / ``idle_power`` may be scalars (uniform platform) or
    per-CPU sequences.  Units are free; energy = power x time.
    """

    def __init__(
        self,
        n_procs: int,
        busy_power: Union[float, Sequence[float]] = 10.0,
        idle_power: Union[float, Sequence[float]] = 1.0,
    ) -> None:
        if n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        self.n_procs = n_procs
        self.busy_power = self._expand(busy_power, n_procs, "busy_power")
        self.idle_power = self._expand(idle_power, n_procs, "idle_power")
        if np.any(self.idle_power > self.busy_power):
            raise ValueError("idle power must not exceed busy power")

    @staticmethod
    def _expand(value, n_procs: int, name: str) -> np.ndarray:
        arr = (
            np.full(n_procs, float(value))
            if np.isscalar(value)
            else np.asarray(value, dtype=float)
        )
        if arr.shape != (n_procs,):
            raise ValueError(f"{name} must be scalar or length {n_procs}")
        if np.any(arr < 0):
            raise ValueError(f"{name} must be non-negative")
        return arr

    # ------------------------------------------------------------------
    def energy(self, schedule: Schedule) -> EnergyReport:
        """Account the energy of a finished schedule."""
        if self.n_procs != len(schedule.timelines):
            raise ValueError(
                f"model has {self.n_procs} CPUs, schedule has "
                f"{len(schedule.timelines)}"
            )
        makespan = schedule.makespan
        busy = 0.0
        dup = 0.0
        idle = 0.0
        for timeline in schedule.timelines:
            occupied = 0.0
            for slot in timeline.slots():
                duration = slot.end - slot.start
                occupied += duration
                busy += duration * self.busy_power[timeline.proc]
                if slot.duplicate:
                    dup += duration * self.busy_power[timeline.proc]
            idle += (makespan - occupied) * self.idle_power[timeline.proc]
        return EnergyReport(
            busy_energy=busy,
            idle_energy=idle,
            duplication_energy=dup,
            makespan=makespan,
        )

    def energy_with_frequencies(
        self, schedule: Schedule, scales: dict
    ) -> EnergyReport:
        """Energy when some task copies run slowed by DVFS.

        ``scales[(task, proc)] = s`` means the copy runs at relative
        frequency ``1/s`` (duration already stretched by ``s`` in the
        schedule); dynamic power scales as ``f^3``, so the copy's busy
        power is divided by ``s**3`` (energy by ``s**2``).
        """
        makespan = schedule.makespan
        busy = 0.0
        dup = 0.0
        idle = 0.0
        for timeline in schedule.timelines:
            occupied = 0.0
            for slot in timeline.slots():
                duration = slot.end - slot.start
                occupied += duration
                scale = scales.get((slot.task, timeline.proc), 1.0)
                power = self.busy_power[timeline.proc] / scale**3
                busy += duration * power
                if slot.duplicate:
                    dup += duration * power
            idle += (makespan - occupied) * self.idle_power[timeline.proc]
        return EnergyReport(
            busy_energy=busy,
            idle_energy=idle,
            duplication_energy=dup,
            makespan=makespan,
        )

"""Energy accounting and slack reclamation (extension).

Section II-B of the paper dismisses task duplication partly on energy
grounds ("with the cost of complexity and cost of higher energy
consumption"), and the Molecular-Dynamics workload is taken from an
energy-aware scheduling paper [27].  This package makes those claims
measurable:

* :class:`EnergyModel` -- per-CPU busy/idle power, energy of a schedule
  (duplicates burn real energy);
* :func:`reclaim_slack` -- DVFS-style slack reclamation: stretch
  non-critical tasks into their downstream slack at proportionally
  lower power (the classic cubic dynamic-power assumption), without
  changing the makespan.
"""

from repro.energy.model import EnergyModel, EnergyReport
from repro.energy.slack import reclaim_slack, task_slack

__all__ = ["EnergyModel", "EnergyReport", "reclaim_slack", "task_slack"]

"""Branch-and-bound optimal DAG scheduling (no duplication).

Exactness argument: for makespan minimization with communication delays
there is always an optimal schedule that is *eager* -- every task starts
at ``max(CPU avail, data ready)`` given its CPU and the per-CPU order --
because starting any task earlier can only make data available earlier.
Eager schedules are exactly the ones reachable by repeatedly dispatching
some ready task to some CPU, so DFS over (ready task, CPU) choices with
eager timing enumerates an optimal schedule.

Pruning:

* lower bound = max over unscheduled tasks of (earliest conceivable
  start given scheduled parents, ignoring contention and communication)
  + the task's min-cost bottom level (communication-free);
* per-branch bound: a dispatch whose finish plus the task's remaining
  communication-free bottom level already reaches the incumbent is cut.

(No empty-CPU symmetry pruning: on a *heterogeneous* platform idle CPUs
are not interchangeable -- their cost columns differ.)

Intended for instances up to roughly a dozen tasks; ``max_states``
bounds the search explicitly and raises when exceeded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["BranchAndBound", "optimal_makespan"]


class SearchBudgetExceeded(RuntimeError):
    """The instance is too large for exhaustive search."""


class BranchAndBound:
    """Exact scheduler via DFS branch-and-bound with eager timing."""

    name = "B&B"

    def __init__(self, max_states: int = 5_000_000) -> None:
        self.max_states = max_states
        self.states_explored = 0

    # ------------------------------------------------------------------
    def solve(
        self, graph: TaskGraph, upper_bound: Optional[float] = None
    ) -> Tuple[float, Schedule]:
        """Return ``(optimal makespan, one optimal schedule)``.

        ``upper_bound`` (e.g. a heuristic's makespan) seeds the pruning;
        the optimum is returned even when it equals the seed.
        """
        n = graph.n_tasks
        w = graph.cost_matrix()
        min_w = w.min(axis=1)

        # communication-free min-cost bottom levels (admissible heuristic)
        bottom = np.zeros(n)
        for task in reversed(graph.topological_order()):
            best = 0.0
            for succ in graph.successors(task):
                if bottom[succ] > best:
                    best = bottom[succ]
            bottom[task] = min_w[task] + best

        best_makespan = float("inf") if upper_bound is None else float(upper_bound) + 1e-9
        best_plan: Optional[List[Tuple[int, int, float]]] = None

        indegree = [graph.in_degree(t) for t in graph.tasks()]
        ready = [t for t in graph.tasks() if indegree[t] == 0]
        finish: Dict[int, float] = {}
        proc_of: Dict[int, int] = {}
        avail = [0.0] * graph.n_procs
        plan: List[Tuple[int, int, float]] = []
        self.states_explored = 0

        def lower_bound(current_max: float) -> float:
            bound = current_max
            for task in graph.tasks():
                if task in finish:
                    continue
                est = 0.0
                for parent in graph.predecessors(task):
                    if parent in finish and finish[parent] > est:
                        est = finish[parent]
                if est + bottom[task] > bound:
                    bound = est + bottom[task]
            return bound

        def dfs(current_max: float) -> None:
            nonlocal best_makespan, best_plan
            self.states_explored += 1
            if self.states_explored > self.max_states:
                raise SearchBudgetExceeded(
                    f"exceeded {self.max_states} states; instance too large"
                )
            if not ready:
                if current_max < best_makespan:
                    best_makespan = current_max
                    best_plan = list(plan)
                return
            if lower_bound(current_max) >= best_makespan:
                return
            for i in range(len(ready)):
                task = ready[i]
                # frontier bookkeeping: remove task, release children
                del ready[i]
                released = []
                for succ in graph.successors(task):
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        released.append(succ)
                ready.extend(released)

                for proc in graph.procs():
                    data_ready = 0.0
                    for parent in graph.predecessors(task):
                        arr = finish[parent] + (
                            0.0
                            if proc_of[parent] == proc
                            else graph.comm_cost(parent, task)
                        )
                        if arr > data_ready:
                            data_ready = arr
                    start = max(avail[proc], data_ready)
                    end = start + w[task, proc]
                    if end + (bottom[task] - min_w[task]) >= best_makespan:
                        continue  # this branch cannot improve
                    old_avail = avail[proc]
                    avail[proc] = end
                    finish[task] = end
                    proc_of[task] = proc
                    plan.append((task, proc, start))
                    dfs(max(current_max, end))
                    plan.pop()
                    del proc_of[task]
                    del finish[task]
                    avail[proc] = old_avail

                # undo frontier bookkeeping
                for succ in released:
                    ready.remove(succ)
                for succ in graph.successors(task):
                    indegree[succ] += 1
                ready.insert(i, task)

        dfs(0.0)
        if best_plan is None:
            raise RuntimeError("no schedule found (empty graph?)")

        schedule = Schedule(graph)
        for task, proc, start in best_plan:
            schedule.place(task, proc, start)
        return best_makespan, schedule


def optimal_makespan(
    graph: TaskGraph,
    upper_bound: Optional[float] = None,
    max_states: int = 5_000_000,
) -> float:
    """Convenience wrapper returning just the optimal makespan."""
    return BranchAndBound(max_states=max_states).solve(graph, upper_bound)[0]

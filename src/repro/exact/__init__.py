"""Exact (optimal) scheduling for small instances.

Used by the test suite to measure heuristic optimality gaps, and by the
ablation story: HDLTS's 73 on the paper's Fig. 1 graph can be compared
against the true optimum.
"""

from repro.exact.branch_and_bound import BranchAndBound, optimal_makespan

__all__ = ["BranchAndBound", "optimal_makespan"]

"""Gaussian-elimination workflow (extension workload).

Not part of the paper's evaluation, but the standard third structured
workload of this literature (HEFT, PEFT and SDBATS all use it), so it
rounds out the real-world suite and gives the examples a long-critical-
path, low-parallelism counterpoint to FFT's bushy shape.

For matrix size ``m`` the elimination DAG has one pivot task ``P_k`` and
``m - k`` update tasks ``U_{k,j}`` per step ``k = 1 .. m-1``:

    P_k -> U_{k,j}           (the pivot row feeds every update)
    U_{k,k+1} -> P_{k+1}     (the next pivot waits for its column)
    U_{k,j} -> U_{k+1,j}     (j > k+1: updates chain down the column)

Total tasks: ``(m - 1) + m (m - 1) / 2``  (e.g. m=5 -> 14 tasks).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workflows.topology import Topology

__all__ = [
    "gaussian_elimination_topology",
    "gaussian_elimination_workflow",
    "gaussian_task_count",
]


def gaussian_task_count(m: int) -> int:
    """Tasks in the elimination DAG of an ``m x m`` matrix."""
    if m < 2:
        raise ValueError("matrix size must be >= 2")
    return (m - 1) + m * (m - 1) // 2


def gaussian_elimination_topology(m: int) -> Topology:
    """Build the Gaussian-elimination DAG for matrix size ``m``."""
    if m < 2:
        raise ValueError("matrix size must be >= 2")
    names: List[str] = []
    edges: List[Tuple[int, int]] = []
    pivot: Dict[int, int] = {}
    update: Dict[Tuple[int, int], int] = {}
    next_id = 0
    for k in range(1, m):
        pivot[k] = next_id
        names.append(f"P{k}")
        next_id += 1
        for j in range(k + 1, m + 1):
            update[(k, j)] = next_id
            names.append(f"U{k},{j}")
            next_id += 1

    for k in range(1, m):
        for j in range(k + 1, m + 1):
            edges.append((pivot[k], update[(k, j)]))
        if k + 1 < m:
            edges.append((update[(k, k + 1)], pivot[k + 1]))
            for j in range(k + 2, m + 1):
                edges.append((update[(k, j)], update[(k + 1, j)]))

    assert next_id == gaussian_task_count(m)
    return Topology(
        n_tasks=next_id, edges=edges, names=names, label=f"gaussian[{m}]"
    )


def gaussian_elimination_workflow(
    m: int,
    n_procs: int,
    rng=None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
):
    """Convenience: build the topology and realize costs in one call."""
    from repro.workflows.topology import realize_topology

    return realize_topology(
        gaussian_elimination_topology(m),
        n_procs,
        rng=rng,
        ccr=ccr,
        beta=beta,
        w_dag=w_dag,
    )

"""Real-world application workflows used in the paper's evaluation.

* :func:`paper_example_graph` -- the 10-task / 3-CPU example of Fig. 1
  (the classic Topcuoglu et al. graph), used by Table I;
* :func:`fft_workflow` -- recursive + butterfly FFT task graphs (Fig. 5);
* :func:`montage_workflow` -- Pegasus Montage mosaicking DAGs (Fig. 9),
  sizable to exactly 20/50/100 nodes;
* :func:`molecular_dynamics_workflow` -- the fixed 41-task modified
  molecular-dynamics code (Fig. 12);
* :func:`gaussian_elimination_workflow` -- a structured extension
  workload common in this literature.

Each builder returns a topology; per-CPU costs are drawn with the same
cost model as the synthetic generator (Eqs. 13-14) so CCR / beta / CPU
sweeps apply uniformly to every workload.
"""

from repro.workflows.paper_example import paper_example_graph
from repro.workflows.fft import fft_workflow, fft_task_count
from repro.workflows.montage import montage_workflow, montage_shape
from repro.workflows.molecular import molecular_dynamics_workflow
from repro.workflows.gaussian import gaussian_elimination_workflow
from repro.workflows.epigenomics import epigenomics_workflow
from repro.workflows.cybershake import cybershake_workflow
from repro.workflows.topology import Topology, realize_topology

__all__ = [
    "paper_example_graph",
    "fft_workflow",
    "fft_task_count",
    "montage_workflow",
    "montage_shape",
    "molecular_dynamics_workflow",
    "gaussian_elimination_workflow",
    "epigenomics_workflow",
    "cybershake_workflow",
    "Topology",
    "realize_topology",
]

"""The modified Molecular Dynamics code workflow (Fig. 12).

The paper evaluates a *fixed* 41-task graph taken from Topcuoglu et
al. [8] (originally the modified molecular-dynamics code of Kim &
Browne).  The figure itself is an image we cannot read, so -- per the
substitution policy in DESIGN.md -- we build a fixed 41-task DAG with the
documented character of that graph: a single entry fanning out to a wide
force-computation phase, several mid-width update phases narrowing toward
a single collect/exit chain, plus a few level-skipping dependencies.

The experiments only vary CCR / beta / CPU count on this fixed topology
(Figs. 13-14), so shape-level results depend on depth/width character
rather than on the exact edge list.

The structure is deterministic: level widths ``[1, 7, 6, 6, 6, 4, 4, 3,
2, 1, 1]`` (41 tasks, 11 levels -- matching the published graph's size),
cyclic two-parent wiring between consecutive levels, a connectivity
fix-up guaranteeing every non-exit task has a successor, and three
skip-level edges.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workflows.topology import Topology

__all__ = ["molecular_dynamics_topology", "molecular_dynamics_workflow"]

_LEVEL_WIDTHS = [1, 7, 6, 6, 6, 4, 4, 3, 2, 1, 1]  # 41 tasks
_SKIP_EDGES = [((1, 0), (3, 2)), ((2, 3), (4, 0)), ((5, 1), (7, 2))]


def molecular_dynamics_topology() -> Topology:
    """Build the fixed 41-task molecular-dynamics graph."""
    levels: List[List[int]] = []
    names: List[str] = []
    next_id = 0
    for depth, width in enumerate(_LEVEL_WIDTHS):
        row = []
        for i in range(width):
            row.append(next_id)
            names.append(f"MD{depth}.{i}")
            next_id += 1
        levels.append(row)

    edges: List[Tuple[int, int]] = []
    edge_set = set()

    def add(src: int, dst: int) -> None:
        if (src, dst) not in edge_set:
            edge_set.add((src, dst))
            edges.append((src, dst))

    # consecutive levels: each child takes two cyclically-offset parents
    for depth in range(len(levels) - 1):
        parents, children = levels[depth], levels[depth + 1]
        np_, nc = len(parents), len(children)
        for j in range(nc):
            add(parents[j % np_], children[j])
            add(parents[(j + depth + 2) % np_], children[j])
        # fix-up: every parent must feed the next level somewhere
        fed = {src for src, dst in edges if dst in set(children)}
        for i, parent in enumerate(parents):
            if parent not in fed:
                add(parent, children[i % nc])

    for (src_level, src_pos), (dst_level, dst_pos) in _SKIP_EDGES:
        add(levels[src_level][src_pos], levels[dst_level][dst_pos])

    return Topology(
        n_tasks=next_id, edges=edges, names=names, label="molecular-dynamics"
    )


def molecular_dynamics_workflow(
    n_procs: int,
    rng=None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
):
    """Convenience: build the topology and realize costs in one call."""
    from repro.workflows.topology import realize_topology

    return realize_topology(
        molecular_dynamics_topology(),
        n_procs,
        rng=rng,
        ccr=ccr,
        beta=beta,
        w_dag=w_dag,
    )

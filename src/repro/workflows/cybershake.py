"""CyberShake workflow (Pegasus) -- extension workload.

SCEC's probabilistic seismic-hazard pipeline, the canonical *wide and
shallow* Pegasus shape:

    ExtractSGT x sites
        -> SeismogramSynthesis x (sites * variations)  (fan-out per site)
    every SeismogramSynthesis -> ZipSeis (join)
    every SeismogramSynthesis -> PeakValCalc (1:1) -> ZipPSA (join)

Total tasks: ``sites * (1 + 2 * variations) + 2``.  Massive independent
fan-out with two global joins -- the opposite extreme to Epigenomics'
chains, completing the structural spectrum of the extension workloads.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workflows.topology import Topology

__all__ = ["cybershake_topology", "cybershake_workflow", "cybershake_task_count"]


def cybershake_task_count(sites: int, variations: int) -> int:
    """Total tasks: ``sites * (1 + 2 * variations) + 2``."""
    if sites < 1 or variations < 1:
        raise ValueError("sites and variations must be >= 1")
    return sites * (1 + 2 * variations) + 2


def cybershake_topology(sites: int = 4, variations: int = 3) -> Topology:
    """Build the CyberShake structure."""
    if sites < 1 or variations < 1:
        raise ValueError("sites and variations must be >= 1")
    names: List[str] = []
    edges: List[Tuple[int, int]] = []
    next_id = 0

    extract = []
    for s in range(sites):
        extract.append(next_id)
        names.append(f"ExtractSGT.{s}")
        next_id += 1

    synthesis = []
    for s in range(sites):
        for v in range(variations):
            synthesis.append(next_id)
            names.append(f"SeismogramSynthesis.{s}.{v}")
            edges.append((extract[s], next_id))
            next_id += 1

    peaks = []
    for i, synth in enumerate(synthesis):
        peaks.append(next_id)
        names.append(f"PeakValCalc.{i}")
        edges.append((synth, next_id))
        next_id += 1

    zipseis = next_id
    names.append("ZipSeis")
    next_id += 1
    for synth in synthesis:
        edges.append((synth, zipseis))

    zippsa = next_id
    names.append("ZipPSA")
    next_id += 1
    for peak in peaks:
        edges.append((peak, zippsa))

    assert next_id == cybershake_task_count(sites, variations)
    return Topology(
        n_tasks=next_id,
        edges=edges,
        names=names,
        label=f"cybershake[{sites}x{variations}]",
    )


def cybershake_workflow(
    sites: int,
    variations: int,
    n_procs: int,
    rng=None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
):
    """Convenience: build the topology and realize costs in one call."""
    from repro.workflows.topology import realize_topology

    return realize_topology(
        cybershake_topology(sites, variations),
        n_procs,
        rng=rng,
        ccr=ccr,
        beta=beta,
        w_dag=w_dag,
    )

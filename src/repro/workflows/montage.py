"""Montage astronomical-mosaic workflows (Fig. 9).

The paper evaluates Montage [25] instances of exactly 20, 50 and 100
nodes.  We build the canonical Pegasus Montage shape:

    mProjectPP (a parallel) --> mDiffFit (d parallel, one per overlapping
    image pair) --> mConcatFit --> mBgModel --> mBackground (a parallel,
    each also fed by its mProjectPP) --> mImgtbl --> mAdd --> mShrink
    --> mJPEG

Total tasks = ``2 a + d + 6``.  :func:`montage_shape` solves for
``(a, d)`` hitting an exact requested node count while keeping the
canonical ``d ~ 1.5 a`` overlap ratio (the published 20-node instance has
a=4, d=6, which we special-case to match Fig. 9 exactly).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workflows.topology import Topology

__all__ = ["montage_shape", "montage_topology", "montage_workflow"]

_FIXED_TAIL = 6  # mConcatFit, mBgModel, mImgtbl, mAdd, mShrink, mJPEG


def montage_shape(n_tasks: int) -> Tuple[int, int]:
    """Solve ``2a + d + 6 == n_tasks`` for the canonical Montage shape.

    Returns ``(a, d)`` = (#mProjectPP, #mDiffFit).  The published
    20-node workflow (a=4, d=6) is returned verbatim.
    """
    if n_tasks == 20:
        return 4, 6
    budget = n_tasks - _FIXED_TAIL
    if budget < 4:  # need at least a=1, d=2? keep a sane minimum
        raise ValueError(f"montage needs at least {_FIXED_TAIL + 4} tasks")
    # d ~ 1.5 a  =>  2a + 1.5a = budget  =>  a = budget / 3.5
    a = max(2, round(budget / 3.5))
    d = budget - 2 * a
    while d < a - 1:  # need enough pairs to cover every image
        a -= 1
        d = budget - 2 * a
    return a, d


def _overlap_pairs(a: int, d: int) -> List[Tuple[int, int]]:
    """``d`` distinct pairs of overlapping images drawn from ``a`` images.

    A ring of adjacent pairs first (every image overlaps its neighbour),
    then increasing-stride chords -- mirroring how sky tiles overlap.
    """
    pairs: List[Tuple[int, int]] = []
    seen = set()
    stride = 1
    while len(pairs) < d:
        if stride >= a:
            raise ValueError(
                f"cannot form {d} distinct overlap pairs from {a} images"
            )
        for i in range(a):
            j = (i + stride) % a
            key = (min(i, j), max(i, j))
            if key in seen:
                continue
            seen.add(key)
            pairs.append(key)
            if len(pairs) == d:
                break
        stride += 1
    return pairs


def montage_topology(n_tasks: int = 20) -> Topology:
    """Build a Montage structure with exactly ``n_tasks`` tasks."""
    a, d = montage_shape(n_tasks)
    names: List[str] = []
    edges: List[Tuple[int, int]] = []

    project = list(range(a))
    names += [f"mProjectPP.{i}" for i in range(a)]
    diff = list(range(a, a + d))
    names += [f"mDiffFit.{i}" for i in range(d)]
    concat = a + d
    names.append("mConcatFit")
    bgmodel = concat + 1
    names.append("mBgModel")
    background = list(range(bgmodel + 1, bgmodel + 1 + a))
    names += [f"mBackground.{i}" for i in range(a)]
    imgtbl = background[-1] + 1
    names.append("mImgtbl")
    madd = imgtbl + 1
    names.append("mAdd")
    shrink = madd + 1
    names.append("mShrink")
    jpeg = shrink + 1
    names.append("mJPEG")

    for k, (i, j) in enumerate(_overlap_pairs(a, d)):
        edges.append((project[i], diff[k]))
        edges.append((project[j], diff[k]))
    for k in range(d):
        edges.append((diff[k], concat))
    edges.append((concat, bgmodel))
    for i in range(a):
        edges.append((bgmodel, background[i]))
        edges.append((project[i], background[i]))
    for i in range(a):
        edges.append((background[i], imgtbl))
    edges.append((imgtbl, madd))
    edges.append((madd, shrink))
    edges.append((shrink, jpeg))

    total = jpeg + 1
    assert total == n_tasks, f"built {total} tasks, wanted {n_tasks}"
    return Topology(
        n_tasks=total, edges=edges, names=names, label=f"montage[{n_tasks}]"
    )


def montage_workflow(
    n_tasks: int,
    n_procs: int,
    rng=None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
):
    """Convenience: build the topology and realize costs in one call."""
    from repro.workflows.topology import realize_topology

    return realize_topology(
        montage_topology(n_tasks), n_procs, rng=rng, ccr=ccr, beta=beta, w_dag=w_dag
    )

"""Epigenomics workflow (Pegasus) -- extension workload.

The USC Epigenome Center's genome-methylation pipeline, a standard
Pegasus benchmark shape: a splitter fans a read set out into ``lanes``
independent four-stage chains that re-converge into a short serial tail:

    fastQSplit -> [filterContams -> sol2sanger -> fastq2bfq -> map] x lanes
               -> mapMerge -> maqIndex -> pileup

Total tasks: ``4 * lanes + 4``.  Long parallel chains with a serial
tail make it the structural opposite of Montage's wide-join shape --
a useful probe for schedulers that favour chains (clustering, HDLTS).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workflows.topology import Topology

__all__ = ["epigenomics_topology", "epigenomics_workflow", "epigenomics_task_count"]

_STAGES = ("filterContams", "sol2sanger", "fastq2bfq", "map")


def epigenomics_task_count(lanes: int) -> int:
    """Total tasks: ``4 * lanes + 4``."""
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    return 4 * lanes + 4


def epigenomics_topology(lanes: int = 4) -> Topology:
    """Build the Epigenomics structure with ``lanes`` parallel chains."""
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    names: List[str] = ["fastQSplit"]
    edges: List[Tuple[int, int]] = []
    split = 0
    next_id = 1
    chain_ends = []
    for lane in range(lanes):
        prev = split
        for stage in _STAGES:
            names.append(f"{stage}.{lane}")
            edges.append((prev, next_id))
            prev = next_id
            next_id += 1
        chain_ends.append(prev)
    merge = next_id
    names.append("mapMerge")
    next_id += 1
    for end in chain_ends:
        edges.append((end, merge))
    index = next_id
    names.append("maqIndex")
    edges.append((merge, index))
    next_id += 1
    pileup = next_id
    names.append("pileup")
    edges.append((index, pileup))
    next_id += 1
    assert next_id == epigenomics_task_count(lanes)
    return Topology(
        n_tasks=next_id, edges=edges, names=names, label=f"epigenomics[{lanes}]"
    )


def epigenomics_workflow(
    lanes: int,
    n_procs: int,
    rng=None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
):
    """Convenience: build the topology and realize costs in one call."""
    from repro.workflows.topology import realize_topology

    return realize_topology(
        epigenomics_topology(lanes), n_procs, rng=rng, ccr=ccr, beta=beta, w_dag=w_dag
    )

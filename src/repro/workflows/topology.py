"""Topology + cost realization shared by every real-world workflow.

The paper's real-world experiments keep a *fixed structure* (FFT, Montage,
Molecular Dynamics) and vary the cost parameters: CCR, heterogeneity
``beta``, mean computation ``W_dag`` and the CPU count (Sections V-C.1-3).
A :class:`Topology` captures just the structure; :func:`realize_topology`
draws per-CPU computation costs with Eq. (13) and edge communication costs
with Eq. (14) -- the same cost model the synthetic generator uses, so the
sweep axes mean the same thing for every workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.task_graph import TaskGraph

__all__ = ["Topology", "realize_topology", "draw_costs"]


@dataclass
class Topology:
    """A bare DAG structure: task names and precedence edges."""

    n_tasks: int
    edges: List[Tuple[int, int]] = field(default_factory=list)
    names: Optional[List[str]] = None
    label: str = "topology"

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("topology needs at least one task")
        seen = set()
        for src, dst in self.edges:
            if not (0 <= src < self.n_tasks and 0 <= dst < self.n_tasks):
                raise ValueError(f"edge ({src}, {dst}) out of range")
            if src == dst:
                raise ValueError(f"self-loop on task {src}")
            if (src, dst) in seen:
                raise ValueError(f"duplicate edge ({src}, {dst})")
            seen.add((src, dst))
        if self.names is not None and len(self.names) != self.n_tasks:
            raise ValueError("names length must equal n_tasks")

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def draw_costs(
    n_tasks: int,
    n_procs: int,
    rng: np.random.Generator,
    w_dag: float = 50.0,
    beta: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw the computation-cost matrix of Eq. (13).

    Each task's average cost ``w_i`` is uniform on ``[0, 2 * w_dag]``;
    its per-CPU cost is uniform on ``[w_i (1 - beta/2), w_i (1 + beta/2)]``.
    Returns ``(mean_costs, W)`` where ``W`` has shape ``(n_tasks, n_procs)``.
    """
    if w_dag <= 0:
        raise ValueError("w_dag must be positive")
    if not 0 <= beta <= 2:
        raise ValueError("beta must lie in [0, 2] so costs stay non-negative")
    mean_costs = rng.uniform(0.0, 2.0 * w_dag, size=n_tasks)
    low = mean_costs * (1.0 - beta / 2.0)
    high = mean_costs * (1.0 + beta / 2.0)
    w = rng.uniform(low[:, None], high[:, None], size=(n_tasks, n_procs))
    return mean_costs, w


def realize_topology(
    topology: Topology,
    n_procs: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
    randomize_comm: bool = False,
) -> TaskGraph:
    """Assign costs to a topology.

    Communication costs follow Eq. (14): ``comm(i, j) = w_i * CCR`` with
    ``w_i`` the source task's average computation cost.  With
    ``randomize_comm=True`` the cost is drawn uniform on
    ``[0, 2 * CCR * w_i]`` instead (same mean, randomized -- an optional
    variant documented in DESIGN.md).
    """
    if rng is None:
        rng = np.random.default_rng()
    if ccr < 0:
        raise ValueError("ccr must be >= 0")
    mean_costs, w = draw_costs(topology.n_tasks, n_procs, rng, w_dag, beta)
    graph = TaskGraph(n_procs)
    for tid in range(topology.n_tasks):
        name = topology.names[tid] if topology.names else None
        graph.add_task(w[tid], name=name)
    for src, dst in topology.edges:
        if randomize_comm:
            cost = float(rng.uniform(0.0, 2.0 * ccr * mean_costs[src]))
        else:
            cost = float(ccr * mean_costs[src])
        graph.add_edge(src, dst, cost)
    return graph

"""Fast Fourier Transform application workflows (Fig. 5).

The FFT task graph for ``m`` input points (``m`` a power of two) has two
parts, exactly as the paper describes:

* a **recursive** part -- the divide phase, a complete binary tree with
  ``2 (m - 1) + 1`` tasks (the root is the workflow entry);
* a **butterfly** part -- ``log2(m)`` stages of ``m`` tasks each
  (``m * log2(m)`` tasks), with the classic exchange pattern: the task at
  position ``i`` of stage ``s`` consumes positions ``i`` and
  ``i XOR 2**s`` of the previous stage.

For m = 4 this yields the paper's 15 tasks; for m = 32, 223 tasks.
The last butterfly stage has ``m`` exit tasks -- schedulers normalize the
graph with a pseudo exit, as the paper's evaluation does.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workflows.topology import Topology

__all__ = ["fft_topology", "fft_workflow", "fft_task_count"]


def _check_points(m: int) -> int:
    if m < 2 or (m & (m - 1)) != 0:
        raise ValueError(f"input points must be a power of two >= 2, got {m}")
    return m.bit_length() - 1  # log2(m)


def fft_task_count(m: int) -> int:
    """Total tasks for ``m`` input points: ``2(m-1) + 1 + m log2(m)``."""
    stages = _check_points(m)
    return 2 * (m - 1) + 1 + m * stages


def fft_topology(m: int) -> Topology:
    """Build the FFT task-graph structure for ``m`` input points."""
    stages = _check_points(m)
    edges: List[Tuple[int, int]] = []
    names: List[str] = []

    # recursive (divide) part: complete binary tree, root first.
    # level l (0-based) holds 2**l nodes; ids assigned level by level.
    tree_ids: List[List[int]] = []
    next_id = 0
    for level in range(stages + 1):
        row = []
        for i in range(2**level):
            row.append(next_id)
            names.append(f"R{level}.{i}")
            next_id += 1
        tree_ids.append(row)
    for level in range(stages):
        for i, parent in enumerate(tree_ids[level]):
            edges.append((parent, tree_ids[level + 1][2 * i]))
            edges.append((parent, tree_ids[level + 1][2 * i + 1]))

    # butterfly part: ``stages`` rows of ``m`` tasks.
    prev_row = tree_ids[stages]  # the m tree leaves feed stage 0
    for stage in range(stages):
        row = []
        for i in range(m):
            row.append(next_id)
            names.append(f"B{stage}.{i}")
            next_id += 1
        for i in range(m):
            edges.append((prev_row[i], row[i]))
            edges.append((prev_row[i ^ (1 << stage)], row[i]))
        prev_row = row

    return Topology(
        n_tasks=next_id, edges=edges, names=names, label=f"fft[{m}]"
    )


def fft_workflow(
    m: int,
    n_procs: int,
    rng=None,
    ccr: float = 1.0,
    beta: float = 1.0,
    w_dag: float = 50.0,
):
    """Convenience: build the topology and realize costs in one call."""
    from repro.workflows.topology import realize_topology

    return realize_topology(
        fft_topology(m), n_procs, rng=rng, ccr=ccr, beta=beta, w_dag=w_dag
    )

"""The paper's Fig. 1 example: 10 tasks, 3 CPUs.

This is the canonical example graph of Topcuoglu, Hariri & Wu (the HEFT
paper, TPDS 2002), which the HDLTS paper reuses for its Table I worked
example.  Costs and edge weights below are the published values; the test
suite reproduces the entire Table I trace (makespan 73) and the in-text
HEFT makespan (80) from this graph.
"""

from __future__ import annotations

from repro.model.task_graph import TaskGraph

__all__ = ["paper_example_graph"]

#: (task name, execution cost on P1, P2, P3)
_COSTS = [
    ("T1", 14, 16, 9),
    ("T2", 13, 19, 18),
    ("T3", 11, 13, 19),
    ("T4", 13, 8, 17),
    ("T5", 12, 13, 10),
    ("T6", 13, 16, 9),
    ("T7", 7, 15, 11),
    ("T8", 5, 11, 14),
    ("T9", 18, 12, 20),
    ("T10", 21, 7, 16),
]

#: (src, dst, communication cost) -- 1-based task numbers as in Fig. 1
_EDGES = [
    (1, 2, 18),
    (1, 3, 12),
    (1, 4, 9),
    (1, 5, 11),
    (1, 6, 14),
    (2, 8, 19),
    (2, 9, 16),
    (3, 7, 23),
    (4, 8, 27),
    (4, 9, 23),
    (5, 9, 13),
    (6, 8, 15),
    (7, 10, 17),
    (8, 10, 11),
    (9, 10, 13),
]


def paper_example_graph() -> TaskGraph:
    """Build the Fig. 1 graph (10 tasks, 3 heterogeneous CPUs)."""
    graph = TaskGraph(3)
    for name, *costs in _COSTS:
        graph.add_task(costs, name=name)
    for src, dst, cost in _EDGES:
        graph.add_edge(src - 1, dst - 1, cost)
    return graph

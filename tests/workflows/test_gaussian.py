"""Structural tests for the Gaussian-elimination extension workload."""

import numpy as np
import pytest

from repro.model.levels import graph_height
from repro.model.validation import validate_task_graph
from repro.workflows.gaussian import (
    gaussian_elimination_topology,
    gaussian_elimination_workflow,
    gaussian_task_count,
)
from repro.workflows.topology import realize_topology


@pytest.mark.parametrize("m,expected", [(2, 2), (3, 5), (5, 14), (8, 35)])
def test_task_count_formula(m, expected):
    assert gaussian_task_count(m) == expected
    assert gaussian_elimination_topology(m).n_tasks == expected


def test_small_matrix_rejected():
    with pytest.raises(ValueError):
        gaussian_task_count(1)


def test_structure_m3():
    topo = gaussian_elimination_topology(3)
    graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
    by_name = {graph.name(t): t for t in graph.tasks()}
    # P1 feeds U1,2 and U1,3
    assert graph.has_edge(by_name["P1"], by_name["U1,2"])
    assert graph.has_edge(by_name["P1"], by_name["U1,3"])
    # U1,2 releases the next pivot; U1,3 chains into U2,3
    assert graph.has_edge(by_name["U1,2"], by_name["P2"])
    assert graph.has_edge(by_name["U1,3"], by_name["U2,3"])
    assert graph.has_edge(by_name["P2"], by_name["U2,3"])


def test_long_critical_path():
    """Elimination is inherently serial: depth grows ~2 levels per step."""
    graph = realize_topology(
        gaussian_elimination_topology(6), 2, rng=np.random.default_rng(0)
    )
    assert graph_height(graph) == 2 * (6 - 1)


def test_single_entry_exit():
    graph = realize_topology(
        gaussian_elimination_topology(5), 2, rng=np.random.default_rng(0)
    )
    validate_task_graph(
        graph, require_single_entry=True, require_single_exit=True
    )
    assert graph.name(graph.entry_task) == "P1"
    assert graph.name(graph.exit_task) == f"U{4},{5}"


def test_end_to_end_scheduling():
    from repro.core import HDLTS
    from repro.schedule.validation import validate_schedule

    graph = gaussian_elimination_workflow(6, 3, rng=np.random.default_rng(2))
    result = HDLTS().run(graph)
    validate_schedule(graph, result.schedule)

"""Unit tests for topology realization (Eqs. 13-14 on fixed structures)."""

import numpy as np
import pytest

from repro.workflows.topology import Topology, draw_costs, realize_topology


class TestTopology:
    def test_valid_topology(self):
        topo = Topology(n_tasks=3, edges=[(0, 1), (0, 2)])
        assert topo.n_edges == 2

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology(n_tasks=2, edges=[(0, 5)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(n_tasks=2, edges=[(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(n_tasks=2, edges=[(0, 1), (0, 1)])

    def test_name_arity_checked(self):
        with pytest.raises(ValueError, match="names"):
            Topology(n_tasks=2, edges=[], names=["only-one"])

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            Topology(n_tasks=0)


class TestDrawCosts:
    def test_shape_and_nonnegativity(self, rng):
        means, w = draw_costs(50, 4, rng, w_dag=50, beta=1.0)
        assert means.shape == (50,)
        assert w.shape == (50, 4)
        assert np.all(w >= 0)

    def test_beta_bounds_enforced(self, rng):
        means, w = draw_costs(200, 8, rng, w_dag=50, beta=2.0)
        # beta=2: support is [0, 2 * w_i] -- never negative
        assert np.all(w >= 0)
        with pytest.raises(ValueError):
            draw_costs(10, 2, rng, beta=2.5)

    def test_w_dag_positive_required(self, rng):
        with pytest.raises(ValueError):
            draw_costs(10, 2, rng, w_dag=0)


class TestRealize:
    @pytest.fixture
    def topo(self):
        return Topology(n_tasks=4, edges=[(0, 1), (0, 2), (1, 3), (2, 3)])

    def test_structure_preserved(self, topo, rng):
        graph = realize_topology(topo, 3, rng=rng)
        assert graph.n_tasks == 4
        assert graph.n_edges == 4
        assert set(graph.successors(0)) == {1, 2}

    def test_eq14_comm_deterministic_per_source(self, topo, rng):
        graph = realize_topology(topo, 3, rng=rng, ccr=2.0)
        assert graph.comm_cost(0, 1) == graph.comm_cost(0, 2)

    def test_randomized_comm_variant(self, topo):
        graph = realize_topology(
            Topology(n_tasks=3, edges=[(0, 1), (0, 2)]),
            2,
            rng=np.random.default_rng(0),
            ccr=2.0,
            randomize_comm=True,
        )
        assert graph.comm_cost(0, 1) != graph.comm_cost(0, 2)

    def test_negative_ccr_rejected(self, topo, rng):
        with pytest.raises(ValueError):
            realize_topology(topo, 2, rng=rng, ccr=-1.0)

    def test_names_carried_over(self, rng):
        topo = Topology(n_tasks=2, edges=[(0, 1)], names=["src", "dst"])
        graph = realize_topology(topo, 2, rng=rng)
        assert graph.name(0) == "src" and graph.name(1) == "dst"

    def test_default_rng_when_omitted(self, topo):
        graph = realize_topology(topo, 2)
        assert graph.n_tasks == 4

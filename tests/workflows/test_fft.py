"""Structural tests for the FFT workflow (Fig. 5)."""

import numpy as np
import pytest

from repro.model.levels import level_decomposition, task_levels
from repro.model.validation import validate_task_graph
from repro.workflows.fft import fft_task_count, fft_topology, fft_workflow
from repro.workflows.topology import realize_topology


class TestTaskCounts:
    @pytest.mark.parametrize(
        "m,expected",
        [(4, 15), (8, 39), (16, 95), (32, 223)],
    )
    def test_paper_task_counts(self, m, expected):
        """The paper: m=4 -> 15 tasks ... m=32 -> 223 tasks."""
        assert fft_task_count(m) == expected
        assert fft_topology(m).n_tasks == expected

    def test_formula_decomposition(self):
        m = 16
        recursive = 2 * (m - 1) + 1
        butterfly = m * 4  # log2(16) = 4 stages
        assert fft_task_count(m) == recursive + butterfly

    @pytest.mark.parametrize("m", [0, 1, 3, 6, 100])
    def test_non_power_of_two_rejected(self, m):
        with pytest.raises(ValueError, match="power of two"):
            fft_task_count(m)


class TestStructure:
    def test_single_entry_is_the_recursion_root(self):
        topo = fft_topology(4)
        graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
        assert len(graph.entry_tasks()) == 1
        assert graph.name(graph.entry_tasks()[0]) == "R0.0"

    def test_last_butterfly_stage_are_the_exits(self):
        topo = fft_topology(4)
        graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
        exits = graph.exit_tasks()
        assert len(exits) == 4  # m exit tasks before normalization
        assert all(graph.name(t).startswith("B1.") for t in exits)

    def test_tree_nodes_have_two_children(self):
        topo = fft_topology(8)
        graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
        # the root R0.0 divides into exactly two subproblems
        root = graph.entry_tasks()[0]
        assert graph.out_degree(root) == 2

    def test_butterfly_tasks_have_two_parents(self):
        topo = fft_topology(8)
        graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
        for task in graph.tasks():
            if graph.name(task).startswith("B"):
                assert graph.in_degree(task) == 2

    def test_butterfly_exchange_pattern(self):
        """Stage s partner of position i is i XOR 2^s."""
        topo = fft_topology(4)
        graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
        by_name = {graph.name(t): t for t in graph.tasks()}
        # B1.0 reads B0.0 and B0.2 (partner 0 XOR 2 = 2)
        parents = {graph.name(p) for p in graph.predecessors(by_name["B1.0"])}
        assert parents == {"B0.0", "B0.2"}
        # B0.1 reads leaves R2.1 and R2.0 (partner 1 XOR 1 = 0)
        parents = {graph.name(p) for p in graph.predecessors(by_name["B0.1"])}
        assert parents == {"R2.0", "R2.1"}

    def test_depth_is_tree_plus_butterfly(self):
        topo = fft_topology(16)
        graph = realize_topology(topo, 2, rng=np.random.default_rng(0))
        levels = task_levels(graph)
        # 4 tree levels below the root + 4 butterfly stages = depth 8
        assert max(levels) == 8

    def test_validates(self):
        for m in (2, 4, 8, 32):
            graph = realize_topology(
                fft_topology(m), 3, rng=np.random.default_rng(0)
            )
            validate_task_graph(graph, require_single_entry=True)


class TestWorkflowConvenience:
    def test_fft_workflow_end_to_end(self):
        from repro.core import HDLTS
        from repro.schedule.validation import validate_schedule

        graph = fft_workflow(8, 3, rng=np.random.default_rng(5), ccr=2.0)
        normalized = graph.normalized()
        result = HDLTS().run(normalized)
        validate_schedule(normalized, result.schedule)
        assert result.schedule.is_complete()

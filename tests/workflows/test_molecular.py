"""Structural tests for the 41-task Molecular Dynamics workflow (Fig. 12)."""

import numpy as np
import pytest

from repro.model.levels import graph_height, graph_width, task_levels
from repro.model.validation import validate_task_graph
from repro.workflows.molecular import (
    _LEVEL_WIDTHS,
    molecular_dynamics_topology,
    molecular_dynamics_workflow,
)
from repro.workflows.topology import realize_topology


@pytest.fixture(scope="module")
def graph():
    return realize_topology(
        molecular_dynamics_topology(), 3, rng=np.random.default_rng(0)
    )


def test_41_tasks(graph):
    """The published MD graph has 41 tasks."""
    assert graph.n_tasks == 41
    assert sum(_LEVEL_WIDTHS) == 41


def test_single_entry_single_exit(graph):
    assert len(graph.entry_tasks()) == 1
    assert len(graph.exit_tasks()) == 1


def test_eleven_levels(graph):
    assert graph_height(graph) == len(_LEVEL_WIDTHS)


def test_wide_force_phase(graph):
    """The second level (force computations) is the widest: 7 tasks."""
    assert graph_width(graph) == 7


def test_every_task_reachable_and_coreachable(graph):
    validate_task_graph(graph, require_single_entry=True, require_single_exit=True)
    # co-reachability: every task leads to the exit
    reaches_exit = set(graph.exit_tasks())
    for task in reversed(graph.topological_order()):
        if any(s in reaches_exit for s in graph.successors(task)):
            reaches_exit.add(task)
    assert len(reaches_exit) == graph.n_tasks


def test_fixed_structure_is_deterministic():
    a = molecular_dynamics_topology()
    b = molecular_dynamics_topology()
    assert a.edges == b.edges
    assert a.n_tasks == b.n_tasks


def test_skip_level_edges_present(graph):
    """The MD graph is not purely layered: some edges skip levels."""
    levels = task_levels(graph)
    skips = [
        (e.src, e.dst)
        for e in graph.edges()
        if levels[e.dst] - levels[e.src] > 1
    ]
    assert skips


def test_end_to_end_scheduling():
    from repro.baselines import paper_schedulers
    from repro.schedule.validation import validate_schedule

    graph = molecular_dynamics_workflow(4, rng=np.random.default_rng(1), ccr=3.0)
    for scheduler in paper_schedulers():
        result = scheduler.run(graph)
        validate_schedule(graph, result.schedule)
        assert result.schedule.is_complete()

"""Structural tests for the Montage workflow (Fig. 9)."""

import numpy as np
import pytest

from repro.model.validation import validate_task_graph
from repro.workflows.montage import montage_shape, montage_topology, montage_workflow
from repro.workflows.topology import realize_topology


class TestShape:
    def test_published_20_node_shape(self):
        """Fig. 9's canonical 20-node instance: 4 projects, 6 diffs."""
        assert montage_shape(20) == (4, 6)

    @pytest.mark.parametrize("n", [20, 50, 100, 37, 64])
    def test_exact_node_counts(self, n):
        a, d = montage_shape(n)
        assert 2 * a + d + 6 == n
        assert montage_topology(n).n_tasks == n

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            montage_shape(8)


class TestStructure:
    @pytest.fixture
    def graph20(self):
        return realize_topology(
            montage_topology(20), 3, rng=np.random.default_rng(0)
        )

    def test_entries_are_the_projections(self, graph20):
        entries = graph20.entry_tasks()
        assert len(entries) == 4
        assert all(graph20.name(t).startswith("mProjectPP") for t in entries)

    def test_single_exit_is_jpeg(self, graph20):
        assert graph20.name(graph20.exit_task) == "mJPEG"

    def test_each_difffit_has_two_project_parents(self, graph20):
        for task in graph20.tasks():
            if graph20.name(task).startswith("mDiffFit"):
                parents = graph20.predecessors(task)
                assert len(parents) == 2
                assert all(
                    graph20.name(p).startswith("mProjectPP") for p in parents
                )

    def test_concat_collects_every_difffit(self, graph20):
        concat = next(
            t for t in graph20.tasks() if graph20.name(t) == "mConcatFit"
        )
        assert graph20.in_degree(concat) == 6

    def test_background_reads_model_and_own_projection(self, graph20):
        for task in graph20.tasks():
            if graph20.name(task).startswith("mBackground"):
                names = {graph20.name(p) for p in graph20.predecessors(task)}
                assert "mBgModel" in names
                assert any(n.startswith("mProjectPP") for n in names)

    def test_tail_chain(self, graph20):
        by_name = {graph20.name(t): t for t in graph20.tasks()}
        assert graph20.has_edge(by_name["mImgtbl"], by_name["mAdd"])
        assert graph20.has_edge(by_name["mAdd"], by_name["mShrink"])
        assert graph20.has_edge(by_name["mShrink"], by_name["mJPEG"])

    def test_overlap_pairs_are_distinct(self):
        """No mDiffFit may compare the same image pair twice."""
        graph = realize_topology(
            montage_topology(100), 2, rng=np.random.default_rng(0)
        )
        pairs = set()
        for task in graph.tasks():
            if graph.name(task).startswith("mDiffFit"):
                pair = tuple(sorted(graph.predecessors(task)))
                assert pair not in pairs
                pairs.add(pair)

    @pytest.mark.parametrize("n", [20, 50, 100])
    def test_validates(self, n):
        graph = realize_topology(
            montage_topology(n), 4, rng=np.random.default_rng(0)
        )
        validate_task_graph(graph)
        # the evaluation normalizes to a single entry/exit
        norm = graph.normalized()
        validate_task_graph(
            norm, require_single_entry=True, require_single_exit=True
        )


def test_end_to_end_scheduling():
    from repro.baselines import paper_schedulers
    from repro.schedule.validation import validate_schedule

    graph = montage_workflow(
        50, 5, rng=np.random.default_rng(3), ccr=3.0
    ).normalized()
    for scheduler in paper_schedulers():
        result = scheduler.run(graph)
        validate_schedule(graph, result.schedule)

"""Tests pinning the Fig. 1 graph to its published definition."""

import pytest

from repro.model.validation import validate_task_graph
from repro.workflows.paper_example import paper_example_graph


@pytest.fixture(scope="module")
def graph():
    return paper_example_graph()


def test_dimensions(graph):
    assert graph.n_tasks == 10
    assert graph.n_procs == 3
    assert graph.n_edges == 15


def test_published_cost_rows(graph):
    assert list(graph.cost_row(0)) == [14, 16, 9]
    assert list(graph.cost_row(5)) == [13, 16, 9]
    assert list(graph.cost_row(9)) == [21, 7, 16]


def test_published_edge_costs(graph):
    assert graph.comm_cost(0, 1) == 18
    assert graph.comm_cost(3, 7) == 27  # T4 -> T8
    assert graph.comm_cost(8, 9) == 13  # T9 -> T10


def test_shape(graph):
    validate_task_graph(
        graph, require_single_entry=True, require_single_exit=True
    )
    assert graph.entry_task == 0
    assert graph.exit_task == 9


def test_fresh_instance_each_call():
    a, b = paper_example_graph(), paper_example_graph()
    assert a is not b
    a.add_task([1, 1, 1])
    assert b.n_tasks == 10


def test_names_are_one_based(graph):
    assert graph.name(0) == "T1"
    assert graph.name(9) == "T10"

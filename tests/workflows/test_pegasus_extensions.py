"""Structural tests for the Epigenomics and CyberShake extensions."""

import numpy as np
import pytest

from repro.model.levels import graph_height, graph_width
from repro.model.validation import validate_task_graph
from repro.workflows.cybershake import (
    cybershake_task_count,
    cybershake_topology,
    cybershake_workflow,
)
from repro.workflows.epigenomics import (
    epigenomics_task_count,
    epigenomics_topology,
    epigenomics_workflow,
)
from repro.workflows.topology import realize_topology


class TestEpigenomics:
    @pytest.mark.parametrize("lanes,expected", [(1, 8), (4, 20), (10, 44)])
    def test_task_count(self, lanes, expected):
        assert epigenomics_task_count(lanes) == expected
        assert epigenomics_topology(lanes).n_tasks == expected

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            epigenomics_topology(0)

    def test_single_entry_and_exit(self):
        graph = realize_topology(
            epigenomics_topology(4), 3, rng=np.random.default_rng(0)
        )
        validate_task_graph(
            graph, require_single_entry=True, require_single_exit=True
        )
        assert graph.name(graph.entry_task) == "fastQSplit"
        assert graph.name(graph.exit_task) == "pileup"

    def test_chain_shape(self):
        """4 lanes: width 4, depth = split + 4 stages + 3 tail = 8."""
        graph = realize_topology(
            epigenomics_topology(4), 3, rng=np.random.default_rng(0)
        )
        assert graph_width(graph) == 4
        assert graph_height(graph) == 8

    def test_each_lane_is_a_chain(self):
        graph = realize_topology(
            epigenomics_topology(3), 2, rng=np.random.default_rng(0)
        )
        for task in graph.tasks():
            name = graph.name(task)
            if name.startswith(("filterContams", "sol2sanger", "fastq2bfq")):
                assert graph.out_degree(task) == 1
                assert graph.in_degree(task) == 1

    def test_schedulable(self):
        from repro.core import HDLTS
        from repro.schedule.validation import validate_schedule

        graph = epigenomics_workflow(6, 4, rng=np.random.default_rng(1), ccr=2.0)
        validate_schedule(graph, HDLTS().run(graph).schedule)


class TestCyberShake:
    @pytest.mark.parametrize(
        "sites,variations,expected", [(1, 1, 5), (4, 3, 30), (5, 10, 107)]
    )
    def test_task_count(self, sites, variations, expected):
        assert cybershake_task_count(sites, variations) == expected
        assert cybershake_topology(sites, variations).n_tasks == expected

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            cybershake_topology(0, 3)
        with pytest.raises(ValueError):
            cybershake_topology(3, 0)

    def test_multi_entry_multi_exit_normalizes(self):
        graph = realize_topology(
            cybershake_topology(4, 3), 3, rng=np.random.default_rng(0)
        )
        assert len(graph.entry_tasks()) == 4  # the ExtractSGT tasks
        assert len(graph.exit_tasks()) == 2  # the two zips
        norm = graph.normalized()
        validate_task_graph(
            norm, require_single_entry=True, require_single_exit=True
        )

    def test_fanout_per_site(self):
        graph = realize_topology(
            cybershake_topology(3, 5), 2, rng=np.random.default_rng(0)
        )
        for task in graph.tasks():
            if graph.name(task).startswith("ExtractSGT"):
                assert graph.out_degree(task) == 5

    def test_joins_collect_everything(self):
        graph = realize_topology(
            cybershake_topology(4, 3), 2, rng=np.random.default_rng(0)
        )
        by_name = {graph.name(t): t for t in graph.tasks()}
        assert graph.in_degree(by_name["ZipSeis"]) == 12
        assert graph.in_degree(by_name["ZipPSA"]) == 12

    def test_schedulable(self):
        from repro.baselines import HEFT
        from repro.schedule.validation import validate_schedule

        graph = cybershake_workflow(
            4, 3, 4, rng=np.random.default_rng(1), ccr=3.0
        ).normalized()
        validate_schedule(graph, HEFT().run(graph).schedule)

"""Unit tests for the Scheduler base class and SchedulingResult."""

import pytest

from repro.core import HDLTS, Scheduler, SchedulingResult
from repro.model.task_graph import TaskGraph
from repro.schedule.schedule import Schedule


class _OneCpu(Scheduler):
    """Minimal scheduler used to exercise the base-class contract."""

    name = "one-cpu"

    def build_schedule(self, graph):
        schedule = Schedule(graph)
        for task in graph.topological_order():
            ready = schedule.ready_time(task, 0)
            start = schedule.timelines[0].earliest_start(
                ready, graph.cost(task, 0)
            )
            schedule.place(task, 0, start)
        return schedule


def test_run_wraps_result(fig1):
    result = _OneCpu().run(fig1)
    assert isinstance(result, SchedulingResult)
    assert result.scheduler == "one-cpu"
    assert result.wall_time >= 0
    assert result.trace is None
    assert result.n_duplicates == 0
    assert result.extras == {}


def test_call_is_run(fig1):
    assert _OneCpu()(fig1).makespan == _OneCpu().run(fig1).makespan


def test_prepare_normalizes_multi_entry():
    graph = TaskGraph(2)
    a, b = graph.add_task([1, 1]), graph.add_task([1, 1])
    c = graph.add_task([1, 1])
    graph.add_edge(a, c, 1.0)
    graph.add_edge(b, c, 1.0)
    prepared = _OneCpu().prepare(graph)
    assert len(prepared.entry_tasks()) == 1
    assert prepared.n_tasks == 4


def test_prepare_leaves_normal_graph_alone(fig1):
    assert _OneCpu().prepare(fig1) is fig1


def test_prepare_respects_exit_requirement():
    class NeedsExit(_OneCpu):
        requires_single_exit = True

    graph = TaskGraph(1)
    a = graph.add_task([1])
    graph.add_edge(a, graph.add_task([1]), 1.0)
    graph.add_edge(a, graph.add_task([1]), 1.0)
    assert _OneCpu().prepare(graph) is graph  # only entry required
    prepared = NeedsExit().prepare(graph)
    assert len(prepared.exit_tasks()) == 1


def test_makespan_property(fig1):
    result = HDLTS().run(fig1)
    assert result.makespan == result.schedule.makespan


def test_abstract_scheduler_cannot_instantiate():
    with pytest.raises(TypeError):
        Scheduler()

"""Unit tests for the batched multi-DAG kernel's building blocks.

The full-schedule bit-identity contract lives in
``tests/test_batch_differential.py``; this module pins the pieces it
is built from: shape grouping, eligibility gates, the packed batch's
rank kernels, and the SoA timeline mirror.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    BATCHABLE,
    CompiledBatch,
    _BatchTimelines,
    batchable_schedulers,
    hdlts_dup_batchable,
    instance_batchable,
    max_lanes,
    run_batch,
    same_shape,
    shape_key,
)
from repro.generator.parameters import GeneratorConfig
from repro.generator.random_dag import generate_random_graph
from repro.model.compiled import compile_graph
from repro.model.task_graph import TaskGraph
from repro.runtime.context import BATCH_CHOICES, current_context
from repro.schedule.timeline import ProcessorTimeline
from repro.workflows import paper_example_graph


def _fixed_random_graph(cost_seed: int, structure_seed: int = 7, v: int = 20):
    config = GeneratorConfig(v=v, ccr=1.0, single_entry=True)
    return generate_random_graph(
        config,
        np.random.default_rng(cost_seed),
        np.random.default_rng(structure_seed),
    )


# ----------------------------------------------------------------------
# registry coverage and eligibility gates
# ----------------------------------------------------------------------
def test_batchable_scheduler_set():
    names = batchable_schedulers()
    assert set(names) == BATCHABLE
    for required in ("HEFT", "PEFT", "SDBATS", "HDLTS", "HDLTS-nodup"):
        assert required in BATCHABLE
    # scalar-only schedulers must never be claimed by the kernel
    for excluded in ("PETS", "CPOP", "HDLTS-insertion"):
        assert excluded not in BATCHABLE


def test_run_batch_rejects_unknown_scheduler():
    compiled = compile_graph(paper_example_graph())
    batch = CompiledBatch([compiled])
    with pytest.raises(KeyError):
        run_batch(batch, "PETS")


def test_shape_key_groups_cost_draws_not_structures():
    a = compile_graph(_fixed_random_graph(1))
    b = compile_graph(_fixed_random_graph(2))
    c = compile_graph(_fixed_random_graph(1, structure_seed=8))
    d = compile_graph(_fixed_random_graph(1, v=24))
    assert shape_key(a) == shape_key(b)  # same structure, new costs
    assert shape_key(a) != shape_key(c)  # different wiring
    assert shape_key(a) != shape_key(d)  # different task count


def test_same_shape_agrees_with_shape_key():
    """The harness groups with ``same_shape`` -- it must partition
    instances exactly like the serializing ``shape_key`` does."""
    instances = [
        compile_graph(_fixed_random_graph(1)),
        compile_graph(_fixed_random_graph(2)),
        compile_graph(_fixed_random_graph(1, structure_seed=8)),
        compile_graph(_fixed_random_graph(1, v=24)),
    ]
    for a in instances:
        assert same_shape(a, a)  # identity short-circuit
        for b in instances:
            assert same_shape(a, b) == (shape_key(a) == shape_key(b))


def test_max_lanes_bounds():
    assert max_lanes(100, 4) == 1024  # capped at 1024 lanes
    assert max_lanes(100, 100) == 200  # 2e6 / (n * p)
    assert max_lanes(2000, 1000) == 1  # never below one lane
    assert max_lanes(0, 0) == 1024  # degenerate shapes stay sane


def test_instance_batchable_requires_single_entry():
    graph = TaskGraph(2)
    first = graph.add_task([3.0, 4.0])
    second = graph.add_task([2.0, 5.0])
    sink = graph.add_task([1.0, 1.0])
    graph.add_edge(first, sink, 1.0)
    graph.add_edge(second, sink, 2.0)
    compiled = compile_graph(graph)
    assert compiled.entry_ids.size == 2
    assert not instance_batchable(compiled, ["HEFT"])
    assert not instance_batchable(compiled, ["HDLTS"])


def _entry_cost_graph(entry_costs, comm):
    graph = TaskGraph(2)
    entry = graph.add_task(entry_costs)
    child = graph.add_task([3.0, 4.0])
    graph.add_edge(entry, child, comm)
    return compile_graph(graph)


def test_hdlts_dup_gate():
    # positive entry costs: the batched window test is exact
    assert hdlts_dup_batchable(_entry_cost_graph([2.0, 3.0], 1.0))
    # normalized pseudo entry (all-zero costs, zero comm): also exact
    assert hdlts_dup_batchable(_entry_cost_graph([0.0, 0.0], 0.0))
    # zero-cost entry with real communication: must take the scalar path
    assert not hdlts_dup_batchable(_entry_cost_graph([0.0, 0.0], 1.0))
    # mixed zero/positive entry costs: must take the scalar path
    assert not hdlts_dup_batchable(_entry_cost_graph([0.0, 5.0], 1.0))


def test_dup_gate_only_applies_to_duplicating_hdlts():
    compiled = _entry_cost_graph([0.0, 0.0], 1.0)  # fails the dup gate
    assert not instance_batchable(compiled, ["HDLTS"])
    assert not instance_batchable(compiled, ["HEFT", "HDLTS"])
    # statics and the no-duplication variant never need the gate
    assert instance_batchable(compiled, ["HEFT", "PEFT", "SDBATS"])
    assert instance_batchable(compiled, ["HDLTS-nodup"])


def test_compiled_batch_rejects_bad_inputs():
    base = compile_graph(_fixed_random_graph(1))
    other_shape = compile_graph(_fixed_random_graph(1, v=24))
    with pytest.raises(ValueError):
        CompiledBatch([])
    with pytest.raises(ValueError):
        CompiledBatch([base, other_shape])


def test_run_context_batch_validation():
    context = current_context()
    for choice in BATCH_CHOICES:
        assert context.with_(batch=choice).batch == choice
    with pytest.raises(ValueError, match="batch"):
        context.with_(batch="bogus")


# ----------------------------------------------------------------------
# batched rank kernels vs the per-instance compiled kernels
# ----------------------------------------------------------------------
def test_batch_rank_kernels_match_per_instance():
    compiled = [compile_graph(_fixed_random_graph(seed)) for seed in range(4)]
    batch = CompiledBatch(compiled)
    for lane, g in enumerate(compiled):
        assert np.array_equal(batch.mean_costs()[lane], g.mean_costs())
        assert np.array_equal(batch.std_costs()[lane], g.std_costs())
        assert np.array_equal(
            batch.mean_upward_rank()[lane], g.upward_rank(g.mean_costs())
        )
        assert np.array_equal(
            batch.std_upward_rank()[lane], g.upward_rank(g.std_costs())
        )
        assert np.array_equal(batch.oct_table()[lane], g.oct_table())
        assert np.array_equal(batch.oct_rank()[lane], g.oct_rank())


# ----------------------------------------------------------------------
# SoA timelines vs one ProcessorTimeline per (lane, CPU)
# ----------------------------------------------------------------------
def test_batch_timelines_match_scalar_timeline():
    """Random build-up: every query answers exactly like the scalar."""
    n_lanes, n_procs = 3, 2
    batched = _BatchTimelines(n_lanes, n_procs, capacity=4)
    scalar = [
        [ProcessorTimeline(q) for q in range(n_procs)] for _ in range(n_lanes)
    ]
    rng = np.random.default_rng(0)

    def assert_queries_match(ready, durations, insertion):
        got = batched.earliest_start(ready, durations, insertion)
        for b in range(n_lanes):
            for q in range(n_procs):
                want = scalar[b][q].earliest_start(
                    float(ready[b, q]),
                    float(durations[b, q]),
                    insertion=insertion,
                )
                assert got[b, q] == want, (b, q, insertion)

    for step in range(40):
        ready = rng.uniform(0.0, 30.0, size=(n_lanes, n_procs))
        durations = rng.uniform(0.5, 8.0, size=(n_lanes, n_procs))
        assert_queries_match(ready, durations, insertion=True)
        assert_queries_match(ready, durations, insertion=False)
        # eps-scale durations exercise the per-row scalar fallback
        tiny = np.full((n_lanes, n_procs), 1e-13)
        assert_queries_match(ready, tiny, insertion=True)
        # reserve the answered slot on one rotating (lane, CPU) pair
        b, q = step % n_lanes, (step // n_lanes) % n_procs
        est = batched.earliest_start(ready, durations, True)
        start, duration = float(est[b, q]), float(durations[b, q])
        batched.insert(
            np.array([b]),
            np.array([q]),
            np.array([start]),
            np.array([start + duration]),
        )
        scalar[b][q].reserve(step, start, duration)
        assert batched.counts[b * n_procs + q] == len(scalar[b][q])
        assert batched.max_end[b, q] == scalar[b][q].avail
